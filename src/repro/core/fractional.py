"""Algorithm 2 of the paper: distributed LP_MDS approximation with Δ known.

Every node knows the maximum degree Δ of the graph.  The algorithm runs two
nested loops of k iterations each; in every inner-loop iteration each node
performs two message exchanges (colours, then x-values), for a total of
``2k²`` synchronous rounds.  Theorem 4 guarantees that the produced x-vector
is a feasible solution of LP_MDS whose objective is at most
``k·(Δ+1)^{2/k}`` times the fractional optimum.

The implementation follows the pseudocode line by line; the per-line
correspondence is annotated in :meth:`Algorithm2Program.run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

import networkx as nx

from repro.core.vectorized import (
    BACKENDS,
    SHARDED,
    SIMULATED,
    VECTORIZED,
    CapabilityError,
    algorithm2_exchanges,
    resolve_bulk_input,
    run_algorithm2_bulk,
    run_algorithm2_bulk_faulted,
    run_algorithm2_bulk_multi_k,
    validate_backend,
)
from repro.simulator.columnar import ColumnarTrace
from repro.graphs.utils import max_degree, validate_simple_graph
from repro.simulator.bulk import BulkGraph
from repro.simulator.fault_schedule import FaultSchedule, FaultSpec, FaultSummary
from repro.simulator.message import Message
from repro.simulator.metrics import ExecutionMetrics
from repro.simulator.network import Network
from repro.simulator.node import NodeContext
from repro.simulator.runtime import SynchronousRunner
from repro.simulator.script import GeneratorNodeProgram
from repro.simulator.trace import ExecutionTrace

WHITE = "white"
GRAY = "gray"


@dataclass(frozen=True)
class FractionalResult:
    """Output of a distributed fractional dominating set execution.

    Attributes
    ----------
    x:
        Per-node fractional values (the LP_MDS solution).
    objective:
        Σ_i x_i, the fractional objective.
    rounds:
        Number of synchronous rounds executed.
    metrics:
        Full message/round metrics of the execution.
    trace:
        Execution trace (only populated when tracing was requested).
    k:
        The locality parameter the algorithm was run with.
    max_degree:
        The maximum degree Δ of the input graph.
    """

    x: dict[Hashable, float]
    objective: float
    rounds: int
    metrics: ExecutionMetrics
    trace: ExecutionTrace | ColumnarTrace
    k: int
    max_degree: int
    #: What the fault schedule did to this run (``None`` for fault-free runs).
    faults: FaultSummary | None = None


class Algorithm2Program(GeneratorNodeProgram):
    """Per-node program implementing Algorithm 2 (Δ known).

    Parameters
    ----------
    k:
        The locality parameter; the algorithm uses 2k² rounds.
    delta:
        The global maximum degree Δ, assumed known by every node (this is
        exactly the extra knowledge Algorithm 2 requires compared to
        Algorithm 3).
    """

    def __init__(self, k: int, delta: int) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be at least 1")
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self.k = k
        self.delta = delta
        # Local algorithm state, exposed for tests and invariant monitors.
        self.x = 0.0
        self.color = WHITE
        self.dynamic_degree = 0

    # ------------------------------------------------------------------ #

    def run(self, ctx: NodeContext):
        k = self.k
        base = self.delta + 1.0

        # Line 1: x_i := 0; δ̃(v_i) := δ_i + 1.
        self.x = 0.0
        self.dynamic_degree = ctx.degree + 1
        self.color = WHITE
        coverage = 0.0  # running value of Σ_{j ∈ N_i} x_j
        round_counter = 0

        # Line 2: outer loop over ℓ = k-1 .. 0.
        for ell in range(k - 1, -1, -1):
            self.trace_event(
                round_counter,
                ctx.node_id,
                "outer-loop-start",
                ell=ell,
                dynamic_degree=self.dynamic_degree,
                x=self.x,
                color=self.color,
            )
            # Line 4: inner loop over m = k-1 .. 0.
            for m in range(k - 1, -1, -1):
                # Lines 6-8: active nodes raise their x-value.
                active = self.dynamic_degree >= base ** (ell / k)
                if active:
                    self.x = max(self.x, 1.0 / base ** (m / k))
                self.trace_event(
                    round_counter,
                    ctx.node_id,
                    "inner-loop",
                    ell=ell,
                    m=m,
                    active=active,
                    x=self.x,
                    color=self.color,
                    dynamic_degree=self.dynamic_degree,
                )

                # Lines 9-12 of the printed pseudocode exchange colours
                # before x-values.  That ordering leaves δ̃ one iteration
                # stale relative to the colours, which contradicts the
                # proofs of Lemmas 2 and 4 (and the journal version's own
                # Algorithm 3, which refreshes δ̃ *after* the colour
                # update).  We therefore execute the two exchanges in the
                # proof-consistent order -- x-values first, colours second
                # -- keeping the round count at exactly two per iteration.

                # Exchange x-values; colour gray once the closed
                # neighbourhood is covered (paper lines 11-12).
                inbox = yield ctx.send_all(self.x, tag="x-value")
                round_counter += 1
                neighbor_x = self.inbox_by_sender(inbox)
                coverage = self.x + sum(neighbor_x.values())
                if coverage >= 1.0:
                    if self.color == WHITE:
                        self.trace_event(
                            round_counter, ctx.node_id, "colored-gray", ell=ell, m=m
                        )
                    self.color = GRAY

                # Exchange colours; recompute the dynamic degree δ̃
                # (paper lines 9-10).
                inbox = yield ctx.send_all(self.color == WHITE, tag="color")
                round_counter += 1
                colors = self.inbox_by_sender(inbox)
                white_neighbors = sum(1 for is_white in colors.values() if is_white)
                self.dynamic_degree = white_neighbors + (1 if self.color == WHITE else 0)

        self._result = self.x
        return self.x


def _package_fractional(bulk, values, metrics, k, true_delta, trace=None, faults=None):
    """Build a :class:`FractionalResult` from bulk-engine output arrays.

    The x dict is filled in ``bulk.nodes`` order via ``tolist()`` (Python
    floats, bit-identical to per-value ``float()`` casts), so the
    insertion-ordered ``sum`` over its values matches the per-node
    packaging loop this replaces.
    """
    x = dict(zip(bulk.nodes, values.tolist()))
    return FractionalResult(
        x=x,
        objective=float(sum(x.values())),
        rounds=metrics.round_count,
        metrics=metrics,
        trace=trace if trace is not None else ExecutionTrace(),
        k=k,
        max_degree=true_delta,
        faults=faults,
    )


def _resolve_fault_schedule(
    faults: "FaultSpec | None",
    schedule: "FaultSchedule | None",
    csr: BulkGraph,
    exchanges: int,
    salt: int = 0,
) -> "FaultSchedule | None":
    """Materialize one phase's fault schedule (or pass a prebuilt one through).

    The pipeline materializes its phases' schedules itself (to chain the
    crash state between them) and hands them down via the private
    ``_schedule`` parameters; standalone callers pass a :class:`FaultSpec`
    and get the default ``salt=0`` stream.
    """
    if schedule is not None:
        return schedule
    if faults is None:
        return None
    if not isinstance(faults, FaultSpec):
        raise TypeError("faults must be a FaultSpec")
    return faults.materialize(csr, rounds=exchanges, salt=salt)


def _sharded_driver(bulk, shards, executor):
    """Reuse a pipeline-provided :class:`ShardedDriver` or open a new one.

    Returns ``(driver, owns)`` -- ``owns`` tells the caller whether it is
    responsible for closing the driver.
    """
    if executor is not None:
        return executor, False
    from repro.simulator.sharded import ShardedDriver

    return ShardedDriver(bulk, shards), True


def _vectorized_fractional_result(
    graph, k, collect_trace, run_bulk, true_delta, bulk=None,
    algorithm="approximate_fractional_mds",
):
    """Shared vectorized-backend dispatch for Algorithms 2 and 3.

    ``run_bulk`` is the bulk runner bound to its algorithm parameters; it
    receives the :class:`BulkGraph` and an optional
    :class:`~repro.simulator.columnar.ColumnarTrace` and returns
    ``(values, metrics)``.  ``bulk`` lets the pipeline reuse one CSR build
    across both phases; ``algorithm`` is kept for signature stability.
    When ``collect_trace`` is set the engine fills a columnar trace (the
    per-node programs' events in structure-of-arrays form) that lands on
    ``FractionalResult.trace``.
    """
    if bulk is None:
        bulk = BulkGraph.from_graph(graph)
    trace = ColumnarTrace() if collect_trace else None
    values, metrics = run_bulk(bulk, trace)
    return _package_fractional(bulk, values, metrics, k, true_delta, trace=trace)


def _program_factory(k: int, delta: int):
    """Build the per-node program factory for Algorithm 2."""

    def factory(node_id: int, network: Network) -> Algorithm2Program:
        return Algorithm2Program(k=k, delta=delta)

    return factory


def approximate_fractional_mds(
    graph: nx.Graph,
    k: int,
    seed: int | None = None,
    collect_trace: bool = False,
    delta: int | None = None,
    backend: str = SIMULATED,
    shards: int | None = None,
    faults: FaultSpec | None = None,
    _bulk: BulkGraph | None = None,
    _executor=None,
    _schedule: FaultSchedule | None = None,
) -> FractionalResult:
    """Run Algorithm 2 on a graph and return its fractional solution.

    Parameters
    ----------
    graph:
        The network graph (undirected, simple).
    k:
        Locality parameter; the algorithm uses 2k² rounds and guarantees a
        k(Δ+1)^{2/k} approximation of LP_MDS (Theorem 4).
    seed:
        Seed for per-node randomness.  Algorithm 2 is deterministic, so the
        seed only matters for reproducibility bookkeeping.
    collect_trace:
        Record a full execution trace (needed by the invariant monitors and
        the Figure-1 experiment).  The simulated backend records an
        event-based :class:`~repro.simulator.trace.ExecutionTrace`; the
        vectorized backend records the same information as a
        :class:`~repro.simulator.columnar.ColumnarTrace` (losslessly
        convertible to events) at O(rounds · n) array cost.
    delta:
        Override for the Δ value distributed to the nodes.  Defaults to the
        true maximum degree of ``graph``; passing a larger value emulates
        nodes knowing only an upper bound on Δ.
    backend:
        ``"simulated"`` executes per-node message-passing programs
        (message-level fidelity, traces, fault models); ``"vectorized"``
        computes the identical x-vector with whole-graph array operations
        (orders of magnitude faster on large graphs); ``"sharded"`` runs
        the same vectorized kernel as multiprocess bulk-synchronous
        supersteps over hash-partitioned CSR slabs -- bitwise identical
        again, and the only backend that scales to n ≥ 10⁶.
    shards:
        Worker-process count for the sharded backend (``None`` lets the
        engine pick one per usable CPU).  Ignored by the other backends.
    faults:
        Optional :class:`~repro.simulator.fault_schedule.FaultSpec`
        injecting message loss and crash-stop failures.  All three
        backends consume the *same* materialized schedule and produce
        bitwise-identical x-vectors; the applied pattern is reported on
        ``FractionalResult.faults``.  Tracing under faults is only
        supported on the simulated backend.

    ``graph`` may also be a CSR :class:`~repro.simulator.bulk.BulkGraph`
    (e.g. from :mod:`repro.graphs.bulk`), in which case a bulk backend
    (vectorized or sharded) is required -- no networkx graph is ever
    materialised.

    Returns
    -------
    FractionalResult
    """
    validate_backend(backend, supported=BACKENDS)
    _bulk = resolve_bulk_input(graph, backend, _bulk)
    if _bulk is not graph:
        validate_simple_graph(graph)
    if k < 1:
        raise ValueError("k must be at least 1")
    true_delta = max_degree(graph)
    if delta is None:
        delta = true_delta
    elif delta < true_delta:
        raise ValueError(
            f"delta={delta} is smaller than the true maximum degree {true_delta}"
        )

    if faults is not None or _schedule is not None:
        if collect_trace and backend != SIMULATED:
            raise CapabilityError(
                "approximate_fractional_mds",
                "collect_trace under fault injection",
                backend,
                (SIMULATED,),
            )
        csr = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
        exchanges = algorithm2_exchanges(k)
        schedule = _resolve_fault_schedule(faults, _schedule, csr, exchanges)
        summary = schedule.summary(exchanges)

        if backend == SHARDED:
            driver, owns = _sharded_driver(csr, shards, _executor)
            try:
                values, metrics = driver.run_algorithm2_faulted(k, delta, schedule)
            finally:
                if owns:
                    driver.close()
            return _package_fractional(
                csr, values, metrics, k, true_delta, faults=summary
            )

        if backend == VECTORIZED:
            values, metrics = run_algorithm2_bulk_faulted(csr, k, delta, schedule)
            return _package_fractional(
                csr, values, metrics, k, true_delta, faults=summary
            )

        network = Network(graph, _program_factory(k, delta), seed=seed)
        runner = SynchronousRunner(
            network,
            fault_model=schedule.fault_model(csr.nodes),
            max_rounds=2 * k * k + 10,
            collect_trace=collect_trace,
        )
        execution = runner.run()
        if not execution.terminated:
            raise RuntimeError(
                "Algorithm 2 did not terminate within its round budget"
            )
        # Crashed programs never reach result(); their frozen in-place
        # state carries the x-value they died with.
        x = {node: float(network.program(node).x) for node in csr.nodes}
        return FractionalResult(
            x=x,
            objective=float(sum(x.values())),
            rounds=execution.rounds,
            metrics=execution.metrics,
            trace=execution.trace,
            k=k,
            max_degree=true_delta,
            faults=summary,
        )

    if backend == SHARDED:
        if collect_trace:
            raise CapabilityError(
                "approximate_fractional_mds",
                "collect_trace",
                SHARDED,
                (SIMULATED, VECTORIZED),
            )
        bulk = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
        driver, owns = _sharded_driver(bulk, shards, _executor)
        try:
            values, metrics = driver.run_algorithm2_multi_k((k,), delta)[k]
        finally:
            if owns:
                driver.close()
        return _package_fractional(bulk, values, metrics, k, true_delta)

    if backend == VECTORIZED:
        return _vectorized_fractional_result(
            graph,
            k,
            collect_trace,
            lambda bulk, trace: run_algorithm2_bulk(bulk, k=k, delta=delta, trace=trace),
            true_delta,
            bulk=_bulk,
        )

    network = Network(graph, _program_factory(k, delta), seed=seed)
    runner = SynchronousRunner(
        network,
        max_rounds=2 * k * k + 10,
        collect_trace=collect_trace,
    )
    execution = runner.run()
    if not execution.terminated:
        raise RuntimeError("Algorithm 2 did not terminate within its round budget")

    x = {node: float(value) for node, value in execution.results.items()}
    return FractionalResult(
        x=x,
        objective=float(sum(x.values())),
        rounds=execution.rounds,
        metrics=execution.metrics,
        trace=execution.trace,
        k=k,
        max_degree=true_delta,
    )


def approximate_fractional_mds_multi_k(
    graph: nx.Graph,
    k_values: "Sequence[int]",
    seed: int | None = None,
    delta: int | None = None,
    backend: str = SIMULATED,
    shards: int | None = None,
    _bulk: BulkGraph | None = None,
    _executor=None,
) -> dict[int, FractionalResult]:
    """Run Algorithm 2 for a whole k sweep in one call.

    On the vectorized backend this dispatches to the snapshot engine
    (:func:`repro.core.vectorized.run_algorithm2_bulk_multi_k`): one engine
    invocation produces the per-k x-vectors -- each bitwise identical to an
    independent ``approximate_fractional_mds(graph, k, ...)`` run -- while
    paying validation, the CSR build and the shared transcendental tables
    once for the sweep instead of once per k.  On the simulated backend
    (kept so sweeps have a single code path) the call simply loops the
    per-k entry point.

    Returns ``{k: FractionalResult}`` for every requested k.
    """
    validate_backend(backend, supported=BACKENDS)
    if backend not in (VECTORIZED, SHARDED):
        return {
            k: approximate_fractional_mds(
                graph, k=k, seed=seed, delta=delta, backend=backend
            )
            for k in k_values
        }

    _bulk = resolve_bulk_input(graph, backend, _bulk)
    if _bulk is not graph:
        validate_simple_graph(graph)
    true_delta = max_degree(graph)
    if delta is None:
        delta = true_delta
    elif delta < true_delta:
        raise ValueError(
            f"delta={delta} is smaller than the true maximum degree {true_delta}"
        )
    bulk = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
    if backend == SHARDED:
        for k in k_values:
            if k < 1:
                raise ValueError("k must be at least 1")
        driver, owns = _sharded_driver(bulk, shards, _executor)
        try:
            snapshots = driver.run_algorithm2_multi_k(tuple(k_values), delta)
        finally:
            if owns:
                driver.close()
    else:
        snapshots = run_algorithm2_bulk_multi_k(bulk, tuple(k_values), delta=delta)
    return {
        k: _package_fractional(bulk, values, metrics, k, true_delta)
        for k, (values, metrics) in snapshots.items()
    }
