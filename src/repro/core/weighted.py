"""Weighted variant of Algorithm 2 (remark after Theorem 4).

The paper sketches how Algorithm 2 generalises to the *weighted* fractional
dominating set problem, where node v_i carries a cost c_i ∈ [1, c_max] and
the objective is Σ c_i x_i:

* define the cost-scaled dynamic degree ``γ̃(v_i) := (c_max / c_i) · δ̃(v_i)``,
* call a node *active* when ``γ̃(v_i) ≥ [c_max (Δ+1)]^{ℓ/k}`` instead of
  ``δ̃(v_i) ≥ (Δ+1)^{ℓ/k}``.

With those changes the approximation ratio becomes
``k (Δ+1)^{1/k} [c_max (Δ+1)]^{1/k}``.  The message pattern (and hence the
2k² round count) is identical to the unweighted Algorithm 2.

The weighted rounding step reuses Algorithm 1 unchanged -- randomized
rounding is oblivious to the objective weights; only the analysis changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping

import networkx as nx
import numpy as np

from repro.core.fractional import GRAY, WHITE, _sharded_driver
from repro.core.rounding import RoundingResult, RoundingRule, round_fractional_solution
from repro.core.vectorized import (
    BACKENDS,
    SHARDED,
    SIMULATED,
    VECTORIZED,
    CapabilityError,
    resolve_bulk_input,
    run_weighted_algorithm2_bulk,
    validate_backend,
)
from repro.domset.validation import is_dominating_set
from repro.domset.weighted import validate_weights, weighted_cost
from repro.graphs.utils import max_degree, validate_simple_graph
from repro.simulator.bulk import BulkGraph
from repro.simulator.metrics import ExecutionMetrics
from repro.simulator.network import Network
from repro.simulator.node import NodeContext
from repro.simulator.runtime import SynchronousRunner
from repro.simulator.script import GeneratorNodeProgram
from repro.simulator.columnar import ColumnarTrace
from repro.simulator.trace import ExecutionTrace


@dataclass(frozen=True)
class WeightedFractionalResult:
    """Output of the weighted fractional dominating set algorithm.

    Attributes
    ----------
    x:
        Per-node fractional values.
    objective:
        The weighted objective Σ c_i x_i.
    unweighted_objective:
        Σ x_i (useful for comparisons with the unweighted run).
    rounds:
        Rounds used by the execution.
    metrics:
        Message/round metrics.
    k, max_degree, c_max:
        Parameters the theoretical bound is stated in.
    """

    x: dict[Hashable, float]
    objective: float
    unweighted_objective: float
    rounds: int
    metrics: ExecutionMetrics
    k: int
    max_degree: int
    c_max: float
    #: Execution trace of the fractional phase (empty unless the run
    #: collected one; event-based on the simulated backend, columnar on
    #: the vectorized backend).
    trace: ExecutionTrace | ColumnarTrace = field(default_factory=ExecutionTrace)


class WeightedAlgorithm2Program(GeneratorNodeProgram):
    """Per-node program for the weighted variant of Algorithm 2.

    Parameters
    ----------
    k:
        Locality parameter.
    delta:
        Global maximum degree Δ (known to all nodes, as in Algorithm 2).
    cost:
        This node's cost c_i ∈ [1, c_max].
    c_max:
        The global maximum cost (known to all nodes; the weighted remark
        treats it as a global constant analogous to Δ).
    """

    def __init__(self, k: int, delta: int, cost: float, c_max: float) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be at least 1")
        if cost < 1.0 or cost > c_max:
            raise ValueError("cost must lie in [1, c_max]")
        self.k = k
        self.delta = delta
        self.cost = float(cost)
        self.c_max = float(c_max)
        self.x = 0.0
        self.color = WHITE
        self.dynamic_degree = 0

    def run(self, ctx: NodeContext):
        k = self.k
        base = self.delta + 1.0
        weighted_base = self.c_max * base

        self.x = 0.0
        self.dynamic_degree = ctx.degree + 1
        self.color = WHITE
        round_counter = 0

        for ell in range(k - 1, -1, -1):
            self.trace_event(
                round_counter,
                ctx.node_id,
                "outer-loop-start",
                ell=ell,
                dynamic_degree=self.dynamic_degree,
                x=self.x,
                color=self.color,
            )
            for m in range(k - 1, -1, -1):
                # Weighted activity rule from the remark: a node is active
                # when its cost-scaled dynamic degree is large.
                scaled_degree = (self.c_max / self.cost) * self.dynamic_degree
                active = scaled_degree >= weighted_base ** (ell / k)
                if active:
                    self.x = max(self.x, 1.0 / base ** (m / k))
                self.trace_event(
                    round_counter,
                    ctx.node_id,
                    "inner-loop",
                    ell=ell,
                    m=m,
                    active=active,
                    x=self.x,
                    color=self.color,
                    dynamic_degree=self.dynamic_degree,
                )

                # Same proof-consistent exchange order as the unweighted
                # Algorithm 2 implementation: x-values first, colours second.
                inbox = yield ctx.send_all(self.x, tag="x-value")
                round_counter += 1
                neighbor_x = self.inbox_by_sender(inbox)
                coverage = self.x + sum(neighbor_x.values())
                if coverage >= 1.0:
                    if self.color == WHITE:
                        self.trace_event(
                            round_counter, ctx.node_id, "colored-gray", ell=ell, m=m
                        )
                    self.color = GRAY

                inbox = yield ctx.send_all(self.color == WHITE, tag="color")
                round_counter += 1
                colors = self.inbox_by_sender(inbox)
                white_neighbors = sum(1 for flag in colors.values() if flag)
                self.dynamic_degree = white_neighbors + (
                    1 if self.color == WHITE else 0
                )

        self._result = self.x
        return self.x


def approximate_weighted_fractional_mds(
    graph: nx.Graph,
    weights: Mapping[Hashable, float],
    k: int,
    seed: int | None = None,
    collect_trace: bool = False,
    backend: str = SIMULATED,
    shards: int | None = None,
    _bulk: BulkGraph | None = None,
    _executor=None,
) -> WeightedFractionalResult:
    """Run the weighted variant of Algorithm 2.

    Parameters
    ----------
    graph:
        The network graph.  May also be a CSR
        :class:`~repro.simulator.bulk.BulkGraph` (vectorized backend only).
    weights:
        Node costs c_i with 1 ≤ c_i ≤ c_max.
    k:
        Locality parameter; the remark's bound is
        k(Δ+1)^{1/k}[c_max(Δ+1)]^{1/k}.
    seed:
        Seed for reproducibility bookkeeping (the algorithm is deterministic).
    collect_trace:
        Record a full execution trace (invariant monitors).  The simulated
        backend records an event-based
        :class:`~repro.simulator.trace.ExecutionTrace`; the vectorized
        backend records the same information as a columnar
        :class:`~repro.simulator.columnar.ColumnarTrace`.
    backend:
        ``"simulated"`` drives per-node message passing; ``"vectorized"``
        computes the identical x-vector (bitwise, like the unweighted
        ports) with whole-graph array operations; ``"sharded"`` runs the
        vectorized kernel as multiprocess supersteps, again bitwise equal.
    shards:
        Worker count for the sharded backend (``None`` = one per CPU).

    Returns
    -------
    WeightedFractionalResult
    """
    validate_backend(backend, supported=BACKENDS)
    _bulk = resolve_bulk_input(graph, backend, _bulk)
    if _bulk is not graph:
        validate_simple_graph(graph)
    if k < 1:
        raise ValueError("k must be at least 1")
    node_ids = _bulk.nodes if _bulk is graph else tuple(graph.nodes())
    c_max = float(max(weights[node] for node in node_ids))
    validate_weights(graph, weights, c_max=c_max)
    delta = max_degree(graph)

    if backend == SHARDED:
        if collect_trace:
            raise CapabilityError(
                "weighted-kuhn-wattenhofer",
                "collect_trace",
                SHARDED,
                (SIMULATED, VECTORIZED),
            )
        bulk = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
        costs = np.array(
            [float(weights[node]) for node in bulk.nodes], dtype=np.float64
        )
        driver, owns = _sharded_driver(bulk, shards, _executor)
        try:
            values, metrics = driver.run_weighted_algorithm2(
                k=k, delta=delta, costs=costs, c_max=c_max
            )
        finally:
            if owns:
                driver.close()
        x = dict(zip(bulk.nodes, values.tolist()))
        return WeightedFractionalResult(
            x=x,
            objective=float(sum(weights[node] * x[node] for node in x)),
            unweighted_objective=float(sum(x.values())),
            rounds=metrics.round_count,
            metrics=metrics,
            k=k,
            max_degree=delta,
            c_max=c_max,
        )

    if backend == VECTORIZED:
        bulk = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
        costs = np.array(
            [float(weights[node]) for node in bulk.nodes], dtype=np.float64
        )
        trace = ColumnarTrace() if collect_trace else None
        values, metrics = run_weighted_algorithm2_bulk(
            bulk, k=k, delta=delta, costs=costs, c_max=c_max, trace=trace
        )
        x = {node: float(value) for node, value in zip(bulk.nodes, values)}
        return WeightedFractionalResult(
            x=x,
            # The same sorted-order Python float sums the simulated path
            # performs, so both objectives are bitwise identical.
            objective=float(sum(weights[node] * x[node] for node in x)),
            unweighted_objective=float(sum(x.values())),
            rounds=metrics.round_count,
            metrics=metrics,
            k=k,
            max_degree=delta,
            c_max=c_max,
            trace=trace if trace is not None else ExecutionTrace(),
        )

    def factory(node_id: int, network: Network) -> WeightedAlgorithm2Program:
        return WeightedAlgorithm2Program(
            k=k, delta=delta, cost=float(weights[node_id]), c_max=c_max
        )

    network = Network(graph, factory, seed=seed)
    runner = SynchronousRunner(
        network, max_rounds=2 * k * k + 10, collect_trace=collect_trace
    )
    execution = runner.run()
    if not execution.terminated:
        raise RuntimeError(
            "weighted Algorithm 2 did not terminate within its round budget"
        )

    x = {node: float(value) for node, value in execution.results.items()}
    weighted_objective = float(sum(weights[node] * x[node] for node in x))
    return WeightedFractionalResult(
        x=x,
        objective=weighted_objective,
        unweighted_objective=float(sum(x.values())),
        rounds=execution.rounds,
        metrics=execution.metrics,
        k=k,
        max_degree=delta,
        c_max=c_max,
        trace=execution.trace,
    )


@dataclass(frozen=True)
class WeightedPipelineResult:
    """Output of the weighted end-to-end pipeline.

    Attributes
    ----------
    dominating_set:
        The final (validated) dominating set.
    cost:
        Its total weighted cost Σ_{v ∈ DS} c_v.
    fractional:
        The weighted fractional phase result.
    rounding:
        The randomized rounding phase result.
    total_rounds:
        Rounds used by both phases combined.
    """

    dominating_set: frozenset
    cost: float
    fractional: WeightedFractionalResult
    rounding: RoundingResult
    total_rounds: int

    @property
    def size(self) -> int:
        """|DS| of the final dominating set."""
        return len(self.dominating_set)


def weighted_kuhn_wattenhofer_dominating_set(
    graph: nx.Graph,
    weights: Mapping[Hashable, float],
    k: int,
    seed: int | None = None,
    rounding_rule: RoundingRule = RoundingRule.LOG,
    collect_trace: bool = False,
    backend: str = SIMULATED,
    shards: int | None = None,
    _bulk: BulkGraph | None = None,
) -> WeightedPipelineResult:
    """End-to-end weighted pipeline: weighted Algorithm 2 + Algorithm 1.

    The rounding step is identical to the unweighted case (the randomized
    rounding analysis of Theorem 3 is oblivious to the objective weights);
    only the fractional phase uses the cost-scaled activity rule from the
    remark after Theorem 4.

    Parameters
    ----------
    graph:
        The network graph (networkx, or a CSR
        :class:`~repro.simulator.bulk.BulkGraph` with the vectorized
        backend).
    weights:
        Node costs c_i with 1 ≤ c_i ≤ c_max.
    k:
        Locality parameter.
    seed:
        Seed for the rounding coin flips.
    rounding_rule:
        Probability multiplier for Algorithm 1.
    collect_trace:
        Record an execution trace of the fractional phase (event-based on
        the simulated backend, columnar on the vectorized backend).
    backend:
        Execution engine for both phases; for a given seed all backends
        select the same dominating set.
    shards:
        Worker count for the sharded backend (``None`` = one per CPU).

    Returns
    -------
    WeightedPipelineResult
    """
    validate_backend(backend, supported=BACKENDS)
    _bulk = resolve_bulk_input(graph, backend, _bulk)
    if _bulk is None and backend in (VECTORIZED, SHARDED):
        # One CSR build serves both phases.
        _bulk = BulkGraph.from_graph(graph)
    # As in the unweighted pipeline, one shard pool serves both phases.
    executor = None
    try:
        if backend == SHARDED:
            from repro.simulator.sharded import ShardedDriver

            executor = ShardedDriver(_bulk, shards)
        fractional = approximate_weighted_fractional_mds(
            graph,
            weights,
            k=k,
            seed=seed,
            collect_trace=collect_trace,
            backend=backend,
            _bulk=_bulk,
            _executor=executor,
        )
        rounding = round_fractional_solution(
            graph,
            fractional.x,
            seed=seed,
            rule=rounding_rule,
            require_feasible=True,
            backend=backend,
            _bulk=_bulk,
            _executor=executor,
        )
    finally:
        if executor is not None:
            executor.close()
    if not is_dominating_set(graph, rounding.dominating_set):
        raise RuntimeError(
            "weighted pipeline produced a non-dominating set; "
            "this indicates a bug in Algorithm 1's fallback step"
        )
    return WeightedPipelineResult(
        dominating_set=rounding.dominating_set,
        cost=weighted_cost(weights, rounding.dominating_set),
        fractional=fractional,
        rounding=rounding,
        total_rounds=fractional.rounds + rounding.rounds,
    )
