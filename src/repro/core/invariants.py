"""Runtime verification of the paper's loop invariants (Lemmas 2-7).

The approximation proofs of Theorems 4 and 5 rest on per-iteration
invariants:

* **Lemma 2 / Lemma 5** -- at the beginning of outer-loop iteration ℓ, every
  node's dynamic degree satisfies δ̃(v_i) ≤ (Δ+1)^{(ℓ+1)/k}.
* **Lemma 3 / Lemma 6** -- at the beginning of each inner-loop iteration,
  the number of active nodes in any closed neighbourhood satisfies
  a(v_i) ≤ (Δ+1)^{(m+1)/k}.
* **Lemma 4** -- (Algorithm 2) at the end of each outer-loop iteration,
  the redistributed dual weights satisfy z_i ≤ (Δ+1)^{-(ℓ-1)/k}.
* **Lemma 7** -- (Algorithm 3) at the end of each outer-loop iteration,
  z_i ≤ (1 + (Δ+1)^{1/k}) / γ⁽¹⁾(v_i)^{ℓ/(ℓ+1)}.

The distributed algorithms do not need to compute the z-values -- they are
an artifact of the analysis -- so the checkers here reconstruct them
centrally from an execution trace: whenever a node raises its x-value, the
increase is split equally among the z-values of the *white* nodes in its
closed neighbourhood (exactly the bookkeeping used in the proofs).

These checkers serve two purposes: they are exercised by property-based
tests on random graphs (experiment E6), and they double as debugging aids
when modifying the algorithms.

Two implementations of every check
----------------------------------

Each lemma has an *event-based* checker (dictionaries over
:class:`~repro.simulator.trace.ExecutionTrace` events -- readable,
reference semantics) and a *columnar* twin (closed-form array reductions
over a :class:`~repro.simulator.columnar.ColumnarTrace` -- O(rounds · n)
and usable at n ≥ 20 000 on traces the vectorized backends record).  The
public ``check_*`` entry points dispatch on the trace type, so
``check_algorithm2_invariants(graph, result.trace, k)`` works for either
backend's trace.

The columnar checkers are engineered to return **bitwise-identical
verdicts** to the event-based ones on the same trace: scalar bounds are
evaluated with Python ``float.__pow__`` (per distinct operand, via the
vectorized backend's power cache), active counts are exact integers either
way, and the Lemma 4/7 z-value reconstruction accumulates each node's
shares in the event checker's exact floating-point order through
:meth:`~repro.simulator.bulk.BulkGraph.closed_chain_sum` (ascending-sender
chains with the running z as the leading term).  Equal ``checked`` counts,
equal violation sets -- not merely equal up to tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx
import numpy as np

from repro.core.fractional import WHITE
from repro.core.vectorized import _unique_powers_cached
from repro.graphs.utils import closed_neighborhood, max_degree
from repro.simulator.bulk import BulkGraph
from repro.simulator.columnar import ColumnarTrace
from repro.simulator.trace import ExecutionTrace

#: Numerical slack applied to every invariant comparison.  The invariants
#: are exact in rational arithmetic; floating-point exponentiation introduces
#: errors on the order of 1e-12 which must not produce spurious violations.
TOLERANCE = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One violated invariant instance."""

    lemma: str
    node_id: Hashable
    ell: int
    m: int | None
    observed: float
    bound: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        location = f"ell={self.ell}" + (f", m={self.m}" if self.m is not None else "")
        return (
            f"{self.lemma} violated at node {self.node_id} ({location}): "
            f"observed {self.observed:.6g} > bound {self.bound:.6g}"
        )


@dataclass
class InvariantReport:
    """Aggregated verdict of an invariant-checking pass."""

    checked: int = 0
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every checked invariant held."""
        return not self.violations

    def merge(self, other: "InvariantReport") -> "InvariantReport":
        """Combine two reports (used to aggregate per-lemma results)."""
        return InvariantReport(
            checked=self.checked + other.checked,
            violations=[*self.violations, *other.violations],
        )


# --------------------------------------------------------------------------- #
# Trace helpers                                                                 #
# --------------------------------------------------------------------------- #


def _inner_loop_events(trace: ExecutionTrace) -> dict[tuple[int, int], dict[Hashable, dict]]:
    """Group ``inner-loop`` events by (ell, m) then node id."""
    grouped: dict[tuple[int, int], dict[Hashable, dict]] = {}
    for event in trace.events(kind="inner-loop"):
        key = (event.data["ell"], event.data["m"])
        grouped.setdefault(key, {})[event.node_id] = dict(event.data)
    return grouped


def _outer_start_events(trace: ExecutionTrace) -> dict[int, dict[Hashable, dict]]:
    """Group ``outer-loop-start`` events by ell then node id."""
    grouped: dict[int, dict[Hashable, dict]] = {}
    for event in trace.events(kind="outer-loop-start"):
        grouped.setdefault(event.data["ell"], {})[event.node_id] = dict(event.data)
    return grouped


def _iteration_order(k: int) -> list[tuple[int, int]]:
    """(ell, m) pairs in execution order (both loops count down)."""
    return [(ell, m) for ell in range(k - 1, -1, -1) for m in range(k - 1, -1, -1)]


def _reconstruct_z_values(
    graph: nx.Graph,
    trace: ExecutionTrace,
    k: int,
) -> dict[int, dict[Hashable, float]]:
    """Reconstruct the analysis-only z-values per outer-loop iteration.

    Returns a mapping ``ell -> {node: z_value at the end of iteration ell}``.
    The z-values are reset to zero at the start of every outer-loop
    iteration, exactly as in the proofs of Lemmas 4 and 7.
    """
    inner = _inner_loop_events(trace)
    previous_x: dict[Hashable, float] = {node: 0.0 for node in graph.nodes()}
    z_per_ell: dict[int, dict[Hashable, float]] = {}

    for ell in range(k - 1, -1, -1):
        z_values = {node: 0.0 for node in graph.nodes()}
        for m in range(k - 1, -1, -1):
            events = inner.get((ell, m), {})
            # Determine which nodes are white *before* this iteration's
            # x-increases: the colour recorded in the event is the node's
            # colour at the start of the iteration.
            white_nodes = {
                node
                for node, data in events.items()
                if data.get("color") == WHITE
            }
            for node, data in events.items():
                new_x = float(data["x"])
                increase = new_x - previous_x.get(node, 0.0)
                if increase > TOLERANCE:
                    recipients = [
                        neighbor
                        for neighbor in closed_neighborhood(graph, node)
                        if neighbor in white_nodes
                    ]
                    if recipients:
                        share = increase / len(recipients)
                        for neighbor in recipients:
                            z_values[neighbor] += share
                previous_x[node] = new_x
        z_per_ell[ell] = z_values
    return z_per_ell


# --------------------------------------------------------------------------- #
# Lemma 2 / Lemma 5: dynamic-degree invariant at outer-loop start              #
# --------------------------------------------------------------------------- #


def check_dynamic_degree_invariant(
    graph: nx.Graph,
    trace: ExecutionTrace | ColumnarTrace,
    k: int,
    lemma: str = "Lemma 2",
) -> InvariantReport:
    """Check δ̃(v_i) ≤ (Δ+1)^{(ℓ+1)/k} at the start of every outer iteration."""
    if isinstance(trace, ColumnarTrace):
        return check_dynamic_degree_invariant_columnar(graph, trace, k, lemma=lemma)
    delta = max_degree(graph)
    base = delta + 1.0
    report = InvariantReport()
    for ell, events in _outer_start_events(trace).items():
        bound = base ** ((ell + 1) / k)
        for node, data in events.items():
            report.checked += 1
            observed = float(data["dynamic_degree"])
            if observed > bound + TOLERANCE:
                report.violations.append(
                    InvariantViolation(
                        lemma=lemma,
                        node_id=node,
                        ell=ell,
                        m=None,
                        observed=observed,
                        bound=bound,
                    )
                )
    return report


# --------------------------------------------------------------------------- #
# Lemma 3 / Lemma 6: active-count invariant inside the inner loop              #
# --------------------------------------------------------------------------- #


def check_active_count_invariant(
    graph: nx.Graph,
    trace: ExecutionTrace | ColumnarTrace,
    k: int,
    lemma: str = "Lemma 3",
) -> InvariantReport:
    """Check a(v_i) ≤ (Δ+1)^{(m+1)/k} at the start of every inner iteration.

    For Algorithm 2 traces the active count a(v_i) is reconstructed from the
    per-node ``active`` flags (the algorithm itself never computes it); for
    Algorithm 3 traces the recorded ``a_value`` is used directly when
    present, so the check also validates the value the algorithm actually
    exchanged.
    """
    if isinstance(trace, ColumnarTrace):
        return check_active_count_invariant_columnar(graph, trace, k, lemma=lemma)
    delta = max_degree(graph)
    base = delta + 1.0
    report = InvariantReport()
    for (ell, m), events in _inner_loop_events(trace).items():
        bound = base ** ((m + 1) / k)
        active_nodes = {
            node for node, data in events.items() if data.get("active")
        }
        for node, data in events.items():
            report.checked += 1
            if "a_value" in data:
                observed = float(data["a_value"])
            elif data.get("color") != WHITE:
                observed = 0.0
            else:
                observed = float(
                    sum(
                        1
                        for neighbor in closed_neighborhood(graph, node)
                        if neighbor in active_nodes
                    )
                )
            if observed > bound + TOLERANCE:
                report.violations.append(
                    InvariantViolation(
                        lemma=lemma,
                        node_id=node,
                        ell=ell,
                        m=m,
                        observed=observed,
                        bound=bound,
                    )
                )
    return report


# --------------------------------------------------------------------------- #
# Lemma 4: z-value invariant for Algorithm 2                                   #
# --------------------------------------------------------------------------- #


def check_z_invariant_known_delta(
    graph: nx.Graph, trace: ExecutionTrace | ColumnarTrace, k: int
) -> InvariantReport:
    """Check z_i ≤ (Δ+1)^{-(ℓ-1)/k} at the end of every outer iteration."""
    if isinstance(trace, ColumnarTrace):
        return check_z_invariant_known_delta_columnar(graph, trace, k)
    delta = max_degree(graph)
    base = delta + 1.0
    report = InvariantReport()
    for ell, z_values in _reconstruct_z_values(graph, trace, k).items():
        bound = base ** (-(ell - 1) / k)
        for node, observed in z_values.items():
            report.checked += 1
            if observed > bound + TOLERANCE:
                report.violations.append(
                    InvariantViolation(
                        lemma="Lemma 4",
                        node_id=node,
                        ell=ell,
                        m=None,
                        observed=observed,
                        bound=bound,
                    )
                )
    return report


# --------------------------------------------------------------------------- #
# Lemma 7: z-value invariant for Algorithm 3                                   #
# --------------------------------------------------------------------------- #


def check_z_invariant_unknown_delta(
    graph: nx.Graph, trace: ExecutionTrace | ColumnarTrace, k: int
) -> InvariantReport:
    """Check z_i ≤ (1 + (Δ+1)^{1/k}) / γ⁽¹⁾(v_i)^{ℓ/(ℓ+1)} per outer iteration.

    γ⁽¹⁾(v_i) is the maximum dynamic degree over the closed neighbourhood of
    v_i at the *beginning* of the outer-loop iteration, reconstructed from
    the ``outer-loop-start`` trace events.
    """
    if isinstance(trace, ColumnarTrace):
        return check_z_invariant_unknown_delta_columnar(graph, trace, k)
    delta = max_degree(graph)
    base = delta + 1.0
    report = InvariantReport()
    outer_starts = _outer_start_events(trace)
    z_per_ell = _reconstruct_z_values(graph, trace, k)
    for ell, z_values in z_per_ell.items():
        start_events = outer_starts.get(ell, {})
        if not start_events:
            continue
        dynamic_at_start = {
            node: float(data["dynamic_degree"]) for node, data in start_events.items()
        }
        for node, observed in z_values.items():
            report.checked += 1
            gamma_one = max(
                dynamic_at_start.get(neighbor, 0.0)
                for neighbor in closed_neighborhood(graph, node)
            )
            gamma_one = max(gamma_one, 1.0)
            bound = (1.0 + base ** (1.0 / k)) / gamma_one ** (ell / (ell + 1))
            if observed > bound + TOLERANCE:
                report.violations.append(
                    InvariantViolation(
                        lemma="Lemma 7",
                        node_id=node,
                        ell=ell,
                        m=None,
                        observed=observed,
                        bound=bound,
                    )
                )
    return report


# --------------------------------------------------------------------------- #
# Columnar twins: the same lemmas as array reductions over a ColumnarTrace     #
# --------------------------------------------------------------------------- #


class _ColumnarView:
    """Shared machinery for the columnar checkers.

    Wraps the CSR view of the graph (building one when handed a networkx
    graph) and maps the trace's ``node_id`` column to array positions.
    """

    def __init__(self, graph: nx.Graph | BulkGraph) -> None:
        self.bulk = (
            graph if isinstance(graph, BulkGraph) else BulkGraph.from_graph(graph)
        )
        self.node_array = np.asarray(self.bulk.nodes)

    @property
    def n(self) -> int:
        return self.bulk.n

    def positions(self, ids: np.ndarray) -> np.ndarray:
        """Array positions of trace node ids (BulkGraph stores nodes sorted)."""
        positions = np.searchsorted(self.node_array, ids)
        clipped = np.minimum(positions, self.node_array.size - 1)
        if not np.array_equal(self.node_array[clipped], ids):
            raise ValueError("trace references node ids not present in the graph")
        return clipped


def _first_appearance(values: np.ndarray) -> list[int]:
    """Distinct values ordered by first appearance (the event dicts' order)."""
    unique, first = np.unique(values, return_index=True)
    return [int(value) for value in unique[np.argsort(first, kind="stable")]]


def _first_appearance_pairs(
    ells: np.ndarray, ms: np.ndarray
) -> list[tuple[int, int]]:
    """Distinct (ell, m) pairs ordered by first appearance."""
    if ells.size == 0:
        return []
    pairs = np.stack([ells, ms], axis=1)
    unique, first = np.unique(pairs, axis=0, return_index=True)
    order = np.argsort(first, kind="stable")
    return [(int(ell), int(m)) for ell, m in unique[order]]


def _last_occurrence_indices(ids: np.ndarray) -> np.ndarray:
    """Indices keeping each id's last occurrence, in first-appearance order.

    Mirrors the event checkers' ``grouped[key][node] = data`` bookkeeping:
    dict insertion order is the node's first appearance, the stored payload
    its last.  Well-formed traces record each node once per group, which the
    fast path detects without a Python loop.
    """
    if np.unique(ids).size == ids.size:
        return np.arange(ids.size, dtype=np.int64)
    first: dict[int, int] = {}
    last: dict[int, int] = {}
    for position, value in enumerate(ids.tolist()):
        if value not in first:
            first[value] = position
        last[value] = position
    return np.fromiter(
        (last[value] for value in first), dtype=np.int64, count=len(first)
    )


def check_dynamic_degree_invariant_columnar(
    graph: nx.Graph | BulkGraph,
    trace: ColumnarTrace,
    k: int,
    lemma: str = "Lemma 2",
) -> InvariantReport:
    """Columnar twin of :func:`check_dynamic_degree_invariant`."""
    base = max_degree(graph) + 1.0
    report = InvariantReport()
    ells = trace.column("outer-loop-start", "ell")
    if ells.size == 0:
        return report
    nodes = trace.nodes_of("outer-loop-start")
    degrees = trace.column("outer-loop-start", "dynamic_degree")
    for ell in _first_appearance(ells):
        bound = base ** ((ell + 1) / k)
        selection = np.flatnonzero(ells == ell)
        selection = selection[_last_occurrence_indices(nodes[selection])]
        observed = degrees[selection].astype(np.float64)
        report.checked += int(selection.size)
        for position in np.flatnonzero(observed > bound + TOLERANCE):
            report.violations.append(
                InvariantViolation(
                    lemma=lemma,
                    node_id=int(nodes[selection[position]]),
                    ell=ell,
                    m=None,
                    observed=float(observed[position]),
                    bound=bound,
                )
            )
    return report


def check_active_count_invariant_columnar(
    graph: nx.Graph | BulkGraph,
    trace: ColumnarTrace,
    k: int,
    lemma: str = "Lemma 3",
) -> InvariantReport:
    """Columnar twin of :func:`check_active_count_invariant`.

    Active counts are reconstructed with one CSR ``neighbor_count`` per
    (ell, m) group -- exact integer arithmetic either way -- unless the
    trace carries the algorithm's own ``a_value`` column (Algorithm 3),
    which is then validated directly like the event checker does.
    """
    base = max_degree(graph) + 1.0
    report = InvariantReport()
    ells = trace.column("inner-loop", "ell")
    if ells.size == 0:
        return report
    view = _ColumnarView(graph)
    ms = trace.column("inner-loop", "m")
    nodes = trace.nodes_of("inner-loop")
    active = trace.column("inner-loop", "active")
    colors = trace.column("inner-loop", "color")
    has_a_value = "a_value" in trace.keys("inner-loop")
    a_values = trace.column("inner-loop", "a_value") if has_a_value else None
    for ell, m in _first_appearance_pairs(ells, ms):
        bound = base ** ((m + 1) / k)
        selection = np.flatnonzero((ells == ell) & (ms == m))
        selection = selection[_last_occurrence_indices(nodes[selection])]
        positions = view.positions(nodes[selection])
        if has_a_value:
            observed = a_values[selection].astype(np.float64)
        else:
            active_mask = np.zeros(view.n, dtype=bool)
            active_mask[positions] = active[selection]
            counts = view.bulk.neighbor_count(active_mask) + active_mask
            observed = np.where(
                colors[selection] == WHITE,
                counts[positions].astype(np.float64),
                0.0,
            )
        report.checked += int(selection.size)
        for position in np.flatnonzero(observed > bound + TOLERANCE):
            report.violations.append(
                InvariantViolation(
                    lemma=lemma,
                    node_id=int(nodes[selection[position]]),
                    ell=ell,
                    m=m,
                    observed=float(observed[position]),
                    bound=bound,
                )
            )
    return report


def _reconstruct_z_values_columnar(
    view: _ColumnarView, trace: ColumnarTrace, k: int
) -> dict[int, np.ndarray]:
    """Columnar twin of :func:`_reconstruct_z_values` (positional arrays).

    Produces z-vectors bitwise equal to the event reconstruction: each
    recipient's shares accumulate in ascending-sender order with the
    running z as the leading term (``BulkGraph.closed_chain_sum``), shares
    are the same ``increase / len(recipients)`` divisions, and untouched
    entries are carried through unchanged by masking rather than adding.
    """
    ells = trace.column("inner-loop", "ell")
    ms = trace.column("inner-loop", "m")
    nodes = trace.nodes_of("inner-loop")
    xs = trace.column("inner-loop", "x")
    colors = trace.column("inner-loop", "color")
    previous_x = np.zeros(view.n, dtype=np.float64)
    z_per_ell: dict[int, np.ndarray] = {}
    for ell in range(k - 1, -1, -1):
        z = np.zeros(view.n, dtype=np.float64)
        for m in range(k - 1, -1, -1):
            selection = np.flatnonzero((ells == ell) & (ms == m))
            if selection.size == 0:
                continue
            selection = selection[_last_occurrence_indices(nodes[selection])]
            positions = view.positions(nodes[selection])
            new_x = previous_x.copy()
            new_x[positions] = xs[selection]
            # The colour recorded in the event is the node's colour at the
            # start of the iteration -- before this iteration's increases.
            white = np.zeros(view.n, dtype=bool)
            white[positions] = colors[selection] == WHITE
            increase = new_x - previous_x
            recipient_counts = view.bulk.neighbor_count(white) + white
            shares = np.where(
                (increase > TOLERANCE) & (recipient_counts > 0),
                increase / np.maximum(recipient_counts, 1),
                0.0,
            )
            z = np.where(white, view.bulk.closed_chain_sum(z, shares), z)
            previous_x = new_x
        z_per_ell[ell] = z
    return z_per_ell


def check_z_invariant_known_delta_columnar(
    graph: nx.Graph | BulkGraph, trace: ColumnarTrace, k: int
) -> InvariantReport:
    """Columnar twin of :func:`check_z_invariant_known_delta`."""
    base = max_degree(graph) + 1.0
    view = _ColumnarView(graph)
    report = InvariantReport()
    for ell, z in _reconstruct_z_values_columnar(view, trace, k).items():
        bound = base ** (-(ell - 1) / k)
        report.checked += int(z.size)
        for position in np.flatnonzero(z > bound + TOLERANCE):
            report.violations.append(
                InvariantViolation(
                    lemma="Lemma 4",
                    node_id=view.bulk.nodes[int(position)],
                    ell=ell,
                    m=None,
                    observed=float(z[position]),
                    bound=bound,
                )
            )
    return report


def check_z_invariant_unknown_delta_columnar(
    graph: nx.Graph | BulkGraph, trace: ColumnarTrace, k: int
) -> InvariantReport:
    """Columnar twin of :func:`check_z_invariant_unknown_delta`.

    Per-node γ⁽¹⁾ bounds are evaluated with ``float.__pow__`` per distinct
    operand (the vectorized backend's power cache), so they match the event
    checker's Python-float bounds bit for bit.
    """
    base = max_degree(graph) + 1.0
    view = _ColumnarView(graph)
    report = InvariantReport()
    ells = trace.column("outer-loop-start", "ell")
    nodes = trace.nodes_of("outer-loop-start")
    degrees = trace.column("outer-loop-start", "dynamic_degree")
    numerator = 1.0 + base ** (1.0 / k)
    power_cache: dict[tuple[float, float], float] = {}
    for ell, z in _reconstruct_z_values_columnar(view, trace, k).items():
        selection = np.flatnonzero(ells == ell)
        if selection.size == 0:
            continue
        selection = selection[_last_occurrence_indices(nodes[selection])]
        positions = view.positions(nodes[selection])
        dynamic_at_start = np.zeros(view.n, dtype=np.float64)
        dynamic_at_start[positions] = degrees[selection].astype(np.float64)
        gamma_one = np.maximum(view.bulk.closed_max(dynamic_at_start), 1.0)
        bounds = numerator / _unique_powers_cached(
            gamma_one, ell / (ell + 1), power_cache
        )
        report.checked += int(z.size)
        for position in np.flatnonzero(z > bounds + TOLERANCE):
            report.violations.append(
                InvariantViolation(
                    lemma="Lemma 7",
                    node_id=view.bulk.nodes[int(position)],
                    ell=ell,
                    m=None,
                    observed=float(z[position]),
                    bound=float(bounds[position]),
                )
            )
    return report


# --------------------------------------------------------------------------- #
# Aggregate checkers                                                            #
# --------------------------------------------------------------------------- #


def check_algorithm2_invariants(
    graph: nx.Graph, trace: ExecutionTrace | ColumnarTrace, k: int
) -> InvariantReport:
    """Check Lemmas 2, 3 and 4 against an Algorithm 2 execution trace."""
    report = check_dynamic_degree_invariant(graph, trace, k, lemma="Lemma 2")
    report = report.merge(
        check_active_count_invariant(graph, trace, k, lemma="Lemma 3")
    )
    report = report.merge(check_z_invariant_known_delta(graph, trace, k))
    return report


def check_algorithm3_invariants(
    graph: nx.Graph, trace: ExecutionTrace | ColumnarTrace, k: int
) -> InvariantReport:
    """Check Lemmas 5, 6 and 7 against an Algorithm 3 execution trace."""
    report = check_dynamic_degree_invariant(graph, trace, k, lemma="Lemma 5")
    report = report.merge(
        check_active_count_invariant(graph, trace, k, lemma="Lemma 6")
    )
    report = report.merge(check_z_invariant_unknown_delta(graph, trace, k))
    return report
