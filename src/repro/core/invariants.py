"""Runtime verification of the paper's loop invariants (Lemmas 2-7).

The approximation proofs of Theorems 4 and 5 rest on per-iteration
invariants:

* **Lemma 2 / Lemma 5** -- at the beginning of outer-loop iteration ℓ, every
  node's dynamic degree satisfies δ̃(v_i) ≤ (Δ+1)^{(ℓ+1)/k}.
* **Lemma 3 / Lemma 6** -- at the beginning of each inner-loop iteration,
  the number of active nodes in any closed neighbourhood satisfies
  a(v_i) ≤ (Δ+1)^{(m+1)/k}.
* **Lemma 4** -- (Algorithm 2) at the end of each outer-loop iteration,
  the redistributed dual weights satisfy z_i ≤ (Δ+1)^{-(ℓ-1)/k}.
* **Lemma 7** -- (Algorithm 3) at the end of each outer-loop iteration,
  z_i ≤ (1 + (Δ+1)^{1/k}) / γ⁽¹⁾(v_i)^{ℓ/(ℓ+1)}.

The distributed algorithms do not need to compute the z-values -- they are
an artifact of the analysis -- so the checkers here reconstruct them
centrally from an execution trace: whenever a node raises its x-value, the
increase is split equally among the z-values of the *white* nodes in its
closed neighbourhood (exactly the bookkeeping used in the proofs).

These checkers serve two purposes: they are exercised by property-based
tests on random graphs (experiment E6), and they double as debugging aids
when modifying the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

import networkx as nx

from repro.core.fractional import WHITE
from repro.graphs.utils import closed_neighborhood, max_degree
from repro.simulator.trace import ExecutionTrace

#: Numerical slack applied to every invariant comparison.  The invariants
#: are exact in rational arithmetic; floating-point exponentiation introduces
#: errors on the order of 1e-12 which must not produce spurious violations.
TOLERANCE = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One violated invariant instance."""

    lemma: str
    node_id: Hashable
    ell: int
    m: int | None
    observed: float
    bound: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        location = f"ell={self.ell}" + (f", m={self.m}" if self.m is not None else "")
        return (
            f"{self.lemma} violated at node {self.node_id} ({location}): "
            f"observed {self.observed:.6g} > bound {self.bound:.6g}"
        )


@dataclass
class InvariantReport:
    """Aggregated verdict of an invariant-checking pass."""

    checked: int = 0
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every checked invariant held."""
        return not self.violations

    def merge(self, other: "InvariantReport") -> "InvariantReport":
        """Combine two reports (used to aggregate per-lemma results)."""
        return InvariantReport(
            checked=self.checked + other.checked,
            violations=[*self.violations, *other.violations],
        )


# --------------------------------------------------------------------------- #
# Trace helpers                                                                 #
# --------------------------------------------------------------------------- #


def _inner_loop_events(trace: ExecutionTrace) -> dict[tuple[int, int], dict[Hashable, dict]]:
    """Group ``inner-loop`` events by (ell, m) then node id."""
    grouped: dict[tuple[int, int], dict[Hashable, dict]] = {}
    for event in trace.events(kind="inner-loop"):
        key = (event.data["ell"], event.data["m"])
        grouped.setdefault(key, {})[event.node_id] = dict(event.data)
    return grouped


def _outer_start_events(trace: ExecutionTrace) -> dict[int, dict[Hashable, dict]]:
    """Group ``outer-loop-start`` events by ell then node id."""
    grouped: dict[int, dict[Hashable, dict]] = {}
    for event in trace.events(kind="outer-loop-start"):
        grouped.setdefault(event.data["ell"], {})[event.node_id] = dict(event.data)
    return grouped


def _iteration_order(k: int) -> list[tuple[int, int]]:
    """(ell, m) pairs in execution order (both loops count down)."""
    return [(ell, m) for ell in range(k - 1, -1, -1) for m in range(k - 1, -1, -1)]


def _reconstruct_z_values(
    graph: nx.Graph,
    trace: ExecutionTrace,
    k: int,
) -> dict[int, dict[Hashable, float]]:
    """Reconstruct the analysis-only z-values per outer-loop iteration.

    Returns a mapping ``ell -> {node: z_value at the end of iteration ell}``.
    The z-values are reset to zero at the start of every outer-loop
    iteration, exactly as in the proofs of Lemmas 4 and 7.
    """
    inner = _inner_loop_events(trace)
    previous_x: dict[Hashable, float] = {node: 0.0 for node in graph.nodes()}
    z_per_ell: dict[int, dict[Hashable, float]] = {}

    for ell in range(k - 1, -1, -1):
        z_values = {node: 0.0 for node in graph.nodes()}
        for m in range(k - 1, -1, -1):
            events = inner.get((ell, m), {})
            # Determine which nodes are white *before* this iteration's
            # x-increases: the colour recorded in the event is the node's
            # colour at the start of the iteration.
            white_nodes = {
                node
                for node, data in events.items()
                if data.get("color") == WHITE
            }
            for node, data in events.items():
                new_x = float(data["x"])
                increase = new_x - previous_x.get(node, 0.0)
                if increase > TOLERANCE:
                    recipients = [
                        neighbor
                        for neighbor in closed_neighborhood(graph, node)
                        if neighbor in white_nodes
                    ]
                    if recipients:
                        share = increase / len(recipients)
                        for neighbor in recipients:
                            z_values[neighbor] += share
                previous_x[node] = new_x
        z_per_ell[ell] = z_values
    return z_per_ell


# --------------------------------------------------------------------------- #
# Lemma 2 / Lemma 5: dynamic-degree invariant at outer-loop start              #
# --------------------------------------------------------------------------- #


def check_dynamic_degree_invariant(
    graph: nx.Graph, trace: ExecutionTrace, k: int, lemma: str = "Lemma 2"
) -> InvariantReport:
    """Check δ̃(v_i) ≤ (Δ+1)^{(ℓ+1)/k} at the start of every outer iteration."""
    delta = max_degree(graph)
    base = delta + 1.0
    report = InvariantReport()
    for ell, events in _outer_start_events(trace).items():
        bound = base ** ((ell + 1) / k)
        for node, data in events.items():
            report.checked += 1
            observed = float(data["dynamic_degree"])
            if observed > bound + TOLERANCE:
                report.violations.append(
                    InvariantViolation(
                        lemma=lemma,
                        node_id=node,
                        ell=ell,
                        m=None,
                        observed=observed,
                        bound=bound,
                    )
                )
    return report


# --------------------------------------------------------------------------- #
# Lemma 3 / Lemma 6: active-count invariant inside the inner loop              #
# --------------------------------------------------------------------------- #


def check_active_count_invariant(
    graph: nx.Graph, trace: ExecutionTrace, k: int, lemma: str = "Lemma 3"
) -> InvariantReport:
    """Check a(v_i) ≤ (Δ+1)^{(m+1)/k} at the start of every inner iteration.

    For Algorithm 2 traces the active count a(v_i) is reconstructed from the
    per-node ``active`` flags (the algorithm itself never computes it); for
    Algorithm 3 traces the recorded ``a_value`` is used directly when
    present, so the check also validates the value the algorithm actually
    exchanged.
    """
    delta = max_degree(graph)
    base = delta + 1.0
    report = InvariantReport()
    for (ell, m), events in _inner_loop_events(trace).items():
        bound = base ** ((m + 1) / k)
        active_nodes = {
            node for node, data in events.items() if data.get("active")
        }
        for node, data in events.items():
            report.checked += 1
            if "a_value" in data:
                observed = float(data["a_value"])
            elif data.get("color") != WHITE:
                observed = 0.0
            else:
                observed = float(
                    sum(
                        1
                        for neighbor in closed_neighborhood(graph, node)
                        if neighbor in active_nodes
                    )
                )
            if observed > bound + TOLERANCE:
                report.violations.append(
                    InvariantViolation(
                        lemma=lemma,
                        node_id=node,
                        ell=ell,
                        m=m,
                        observed=observed,
                        bound=bound,
                    )
                )
    return report


# --------------------------------------------------------------------------- #
# Lemma 4: z-value invariant for Algorithm 2                                   #
# --------------------------------------------------------------------------- #


def check_z_invariant_known_delta(
    graph: nx.Graph, trace: ExecutionTrace, k: int
) -> InvariantReport:
    """Check z_i ≤ (Δ+1)^{-(ℓ-1)/k} at the end of every outer iteration."""
    delta = max_degree(graph)
    base = delta + 1.0
    report = InvariantReport()
    for ell, z_values in _reconstruct_z_values(graph, trace, k).items():
        bound = base ** (-(ell - 1) / k)
        for node, observed in z_values.items():
            report.checked += 1
            if observed > bound + TOLERANCE:
                report.violations.append(
                    InvariantViolation(
                        lemma="Lemma 4",
                        node_id=node,
                        ell=ell,
                        m=None,
                        observed=observed,
                        bound=bound,
                    )
                )
    return report


# --------------------------------------------------------------------------- #
# Lemma 7: z-value invariant for Algorithm 3                                   #
# --------------------------------------------------------------------------- #


def check_z_invariant_unknown_delta(
    graph: nx.Graph, trace: ExecutionTrace, k: int
) -> InvariantReport:
    """Check z_i ≤ (1 + (Δ+1)^{1/k}) / γ⁽¹⁾(v_i)^{ℓ/(ℓ+1)} per outer iteration.

    γ⁽¹⁾(v_i) is the maximum dynamic degree over the closed neighbourhood of
    v_i at the *beginning* of the outer-loop iteration, reconstructed from
    the ``outer-loop-start`` trace events.
    """
    delta = max_degree(graph)
    base = delta + 1.0
    report = InvariantReport()
    outer_starts = _outer_start_events(trace)
    z_per_ell = _reconstruct_z_values(graph, trace, k)
    for ell, z_values in z_per_ell.items():
        start_events = outer_starts.get(ell, {})
        if not start_events:
            continue
        dynamic_at_start = {
            node: float(data["dynamic_degree"]) for node, data in start_events.items()
        }
        for node, observed in z_values.items():
            report.checked += 1
            gamma_one = max(
                dynamic_at_start.get(neighbor, 0.0)
                for neighbor in closed_neighborhood(graph, node)
            )
            gamma_one = max(gamma_one, 1.0)
            bound = (1.0 + base ** (1.0 / k)) / gamma_one ** (ell / (ell + 1))
            if observed > bound + TOLERANCE:
                report.violations.append(
                    InvariantViolation(
                        lemma="Lemma 7",
                        node_id=node,
                        ell=ell,
                        m=None,
                        observed=observed,
                        bound=bound,
                    )
                )
    return report


# --------------------------------------------------------------------------- #
# Aggregate checkers                                                            #
# --------------------------------------------------------------------------- #


def check_algorithm2_invariants(
    graph: nx.Graph, trace: ExecutionTrace, k: int
) -> InvariantReport:
    """Check Lemmas 2, 3 and 4 against an Algorithm 2 execution trace."""
    report = check_dynamic_degree_invariant(graph, trace, k, lemma="Lemma 2")
    report = report.merge(
        check_active_count_invariant(graph, trace, k, lemma="Lemma 3")
    )
    report = report.merge(check_z_invariant_known_delta(graph, trace, k))
    return report


def check_algorithm3_invariants(
    graph: nx.Graph, trace: ExecutionTrace, k: int
) -> InvariantReport:
    """Check Lemmas 5, 6 and 7 against an Algorithm 3 execution trace."""
    report = check_dynamic_degree_invariant(graph, trace, k, lemma="Lemma 5")
    report = report.merge(
        check_active_count_invariant(graph, trace, k, lemma="Lemma 6")
    )
    report = report.merge(check_z_invariant_unknown_delta(graph, trace, k))
    return report
