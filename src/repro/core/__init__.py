"""The paper's primary contribution: distributed MDS approximation.

Public API:

* :func:`~repro.core.kuhn_wattenhofer.kuhn_wattenhofer_dominating_set` --
  the end-to-end pipeline (Theorem 6): distributed LP approximation followed
  by randomized rounding.
* :func:`~repro.core.fractional.approximate_fractional_mds` -- Algorithm 2
  (Δ known), a k(Δ+1)^{2/k}-approximation of LP_MDS in 2k² rounds.
* :func:`~repro.core.fractional_unknown.approximate_fractional_mds_unknown_delta`
  -- Algorithm 3 (Δ unknown), a k((Δ+1)^{1/k}+(Δ+1)^{2/k})-approximation in
  4k² + O(k) rounds.
* :func:`~repro.core.rounding.round_fractional_solution` -- Algorithm 1,
  constant-round randomized rounding of any feasible fractional solution.
* :func:`~repro.core.weighted.approximate_weighted_fractional_mds` -- the
  weighted variant sketched in the remark after Theorem 4.
* :mod:`~repro.core.invariants` -- runtime checks of Lemmas 2-7.

Every entry point above -- including the weighted variant -- accepts
``backend="simulated"`` (per-node message passing) or
``backend="vectorized"`` (the bulk-synchronous array engine in
:mod:`~repro.core.vectorized`); both compute identical results.  The
vectorized backend also accepts CSR
:class:`~repro.simulator.bulk.BulkGraph` inputs directly (see
:mod:`repro.graphs.bulk`), and
:func:`~repro.core.rounding.round_fractional_solution_batched` rounds one
fractional solution under many seeds while paying the seed-independent
work once.
"""

from repro.core.fractional import (
    Algorithm2Program,
    FractionalResult,
    approximate_fractional_mds,
    approximate_fractional_mds_multi_k,
)
from repro.core.fractional_unknown import (
    Algorithm3Program,
    approximate_fractional_mds_unknown_delta,
    approximate_fractional_mds_unknown_delta_multi_k,
)
from repro.core.invariants import (
    InvariantReport,
    InvariantViolation,
    check_algorithm2_invariants,
    check_algorithm3_invariants,
)
from repro.core.kuhn_wattenhofer import (
    FractionalVariant,
    PipelineResult,
    kuhn_wattenhofer_dominating_set,
    log_delta_parameter,
)
from repro.core.vectorized import (
    BACKENDS,
    SIMULATED,
    VECTORIZED,
    CapabilityError,
    validate_backend,
)
from repro.core.rounding import (
    Algorithm1Program,
    RoundingResult,
    RoundingRule,
    expected_join_probabilities,
    round_fractional_solution,
    round_fractional_solution_batched,
)
from repro.core.weighted import (
    WeightedFractionalResult,
    WeightedPipelineResult,
    approximate_weighted_fractional_mds,
    weighted_kuhn_wattenhofer_dominating_set,
)

__all__ = [
    "Algorithm1Program",
    "Algorithm2Program",
    "Algorithm3Program",
    "BACKENDS",
    "CapabilityError",
    "FractionalResult",
    "FractionalVariant",
    "InvariantReport",
    "InvariantViolation",
    "PipelineResult",
    "RoundingResult",
    "RoundingRule",
    "SIMULATED",
    "VECTORIZED",
    "WeightedFractionalResult",
    "WeightedPipelineResult",
    "approximate_fractional_mds",
    "approximate_fractional_mds_multi_k",
    "approximate_fractional_mds_unknown_delta",
    "approximate_fractional_mds_unknown_delta_multi_k",
    "approximate_weighted_fractional_mds",
    "check_algorithm2_invariants",
    "check_algorithm3_invariants",
    "expected_join_probabilities",
    "kuhn_wattenhofer_dominating_set",
    "log_delta_parameter",
    "round_fractional_solution",
    "round_fractional_solution_batched",
    "validate_backend",
    "weighted_kuhn_wattenhofer_dominating_set",
]
