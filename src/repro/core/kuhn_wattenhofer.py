"""The end-to-end Kuhn–Wattenhofer dominating set pipeline (Theorem 6).

The paper's headline result composes the two building blocks:

1. run a distributed fractional approximation of LP_MDS
   (Algorithm 3 when Δ is unknown; Algorithm 2 when it is known), then
2. round the fractional solution with Algorithm 1.

Theorem 6: the expected size of the resulting dominating set is
``O(k · Δ^{2/k} · log Δ) · |DS_OPT|`` and the whole computation takes
``O(k²)`` rounds with per-node message complexity ``O(k² Δ)`` and message
size ``O(log Δ)``.

Setting ``k = Θ(log Δ)`` (final remark of the paper) yields an
``O(log² Δ)`` approximation in ``O(log² Δ)`` rounds;
:func:`log_delta_parameter` computes that choice of k.

This module is the main public entry point of the library:
:func:`kuhn_wattenhofer_dominating_set` runs the full pipeline and returns a
validated dominating set together with every statistic the benchmarks need.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Hashable, Mapping

import networkx as nx

from repro.core.fractional import FractionalResult, approximate_fractional_mds
from repro.core.fractional_unknown import approximate_fractional_mds_unknown_delta
from repro.core.rounding import (
    RoundingResult,
    RoundingRule,
    round_fractional_solution,
    solution_feasibility,
)
from repro.core.vectorized import (
    BACKENDS,
    ROUNDING_EXCHANGES,
    SHARDED,
    SIMULATED,
    VECTORIZED,
    CapabilityError,
    algorithm2_exchanges,
    algorithm3_exchanges,
    resolve_bulk_input,
    validate_backend,
)
from repro.simulator.bulk import BulkGraph
from repro.simulator.fault_schedule import FaultSpec
from repro.domset.repair import RepairReport, repair_dominating_set
from repro.domset.validation import is_dominating_set
from repro.graphs.utils import max_degree, validate_simple_graph


class FractionalVariant(str, enum.Enum):
    """Which distributed LP approximation feeds the rounding step."""

    #: Algorithm 2 -- assumes every node knows the global maximum degree Δ.
    KNOWN_DELTA = "known_delta"
    #: Algorithm 3 -- uses only 2-hop-local information (the default).
    UNKNOWN_DELTA = "unknown_delta"


@dataclass(frozen=True)
class PipelineResult:
    """Everything produced by one end-to-end pipeline execution.

    Attributes
    ----------
    dominating_set:
        The final (validated) dominating set.
    fractional:
        The result of the LP approximation phase.
    rounding:
        The result of the randomized rounding phase.
    total_rounds:
        Rounds used by both phases combined.
    total_messages:
        Messages sent by both phases combined.
    max_message_bits:
        Largest message payload observed across both phases.
    k:
        Locality parameter used.
    max_degree:
        Maximum degree Δ of the input graph.
    """

    dominating_set: frozenset
    fractional: FractionalResult
    rounding: RoundingResult
    total_rounds: int
    total_messages: int
    max_message_bits: int
    k: int
    max_degree: int
    #: Repair outcome when a fault-degraded run was patched back to
    #: feasibility (``None`` for fault-free runs or ``repair=False``).
    #: Per-phase fault summaries live on ``fractional.faults`` and
    #: ``rounding.faults``.
    repair: RepairReport | None = None

    @property
    def size(self) -> int:
        """|DS| of the final dominating set."""
        return len(self.dominating_set)


def log_delta_parameter(delta: int) -> int:
    """The k = Θ(log Δ) choice from the paper's final remark.

    We use ``k = max(1, ⌈ln(Δ + 1)⌉)``, which makes ``(Δ+1)^{1/k} ≤ e`` and
    therefore turns the Theorem-5 ratio into ``O(log Δ)`` and the Theorem-6
    ratio into ``O(log² Δ)``.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    return max(1, math.ceil(math.log(delta + 1.0)))


def kuhn_wattenhofer_dominating_set(
    graph: nx.Graph,
    k: int | None = None,
    seed: int | None = None,
    variant: FractionalVariant = FractionalVariant.UNKNOWN_DELTA,
    rounding_rule: RoundingRule = RoundingRule.LOG,
    collect_trace: bool = False,
    backend: str = SIMULATED,
    shards: int | None = None,
    faults: FaultSpec | None = None,
    repair: bool = True,
    _bulk: BulkGraph | None = None,
) -> PipelineResult:
    """Compute a dominating set with the full Kuhn–Wattenhofer pipeline.

    Parameters
    ----------
    graph:
        The network graph (undirected, simple, non-empty).  May also be a
        CSR :class:`~repro.simulator.bulk.BulkGraph` (e.g. from
        :mod:`repro.graphs.bulk`), in which case ``backend="vectorized"``
        or ``"sharded"`` is required and no networkx graph is ever
        materialised.
    k:
        Locality parameter.  ``None`` selects the paper's
        ``k = Θ(log Δ)`` default (:func:`log_delta_parameter`).
    seed:
        Seed for the randomized rounding coin flips (and for per-node
        generators in general).
    variant:
        Which fractional algorithm to use (Algorithm 2 or Algorithm 3).
    rounding_rule:
        Probability multiplier for Algorithm 1.
    collect_trace:
        Record an execution trace of the fractional phase (needed for
        invariant checking; adds memory overhead).  The simulated backend
        records event objects, the vectorized backend columnar arrays --
        see :mod:`repro.simulator.columnar`.
    backend:
        ``"simulated"`` drives both phases through the message-passing
        simulator; ``"vectorized"`` uses the bulk-synchronous array engine
        for both (same x-vectors and, for a given seed, the same coin
        flips -- so the same dominating set -- at a fraction of the cost);
        ``"sharded"`` partitions the CSR across worker processes and runs
        both phases as bulk-synchronous supersteps, producing bitwise the
        same result as ``"vectorized"`` for any shard count.
    shards:
        Worker process count for the sharded backend (``None`` picks one
        per available CPU).  Only valid with ``backend="sharded"``.
    faults:
        Optional :class:`~repro.simulator.fault_schedule.FaultSpec`
        injecting message loss and crash-stop failures into *both* phases.
        Each phase draws its own salted fault pattern from the spec, and
        nodes crashed during the fractional phase enter the rounding phase
        dead.  Every backend consumes the same materialized schedules, so
        the (possibly degraded) outcome is bitwise identical across them.
        Under faults the usual feasibility ``RuntimeError`` checks are
        suspended -- degradation is the object of study, not a bug.
    repair:
        Whether to run the self-healing patch
        (:func:`~repro.domset.repair.repair_dominating_set`) when the
        faulted rounding output fails to dominate.  Only consulted when
        ``faults`` is given; the outcome lands on ``PipelineResult.repair``
        and ``dominating_set`` is the repaired (always dominating) set.
        With ``repair=False`` the raw degraded set is returned unvalidated.

    Returns
    -------
    PipelineResult

    Raises
    ------
    RuntimeError
        If the fractional phase produced an infeasible LP solution or the
        final set fails validation -- both indicate an implementation bug
        and are checked on every call precisely because the paper's
        correctness argument relies on them.  (Suspended under ``faults``.)
    """
    validate_backend(backend, supported=BACKENDS)
    if backend == SHARDED and collect_trace:
        raise CapabilityError(
            "kuhn-wattenhofer", "collect_trace", SHARDED, (SIMULATED, VECTORIZED)
        )
    if faults is not None and not isinstance(faults, FaultSpec):
        raise TypeError("faults must be a FaultSpec")
    _bulk = resolve_bulk_input(graph, backend, _bulk)
    if _bulk is not graph:
        validate_simple_graph(graph)
    delta = max_degree(graph)
    if k is None:
        k = log_delta_parameter(delta)
    if k < 1:
        raise ValueError("k must be at least 1")

    # One CSR build serves both vectorized phases (callers running many
    # pipelines on one graph can pass theirs in).
    if _bulk is not None:
        bulk = _bulk
    else:
        bulk = (
            BulkGraph.from_graph(graph) if backend in (VECTORIZED, SHARDED) else None
        )

    # Each phase draws its own salted fault pattern; nodes crashed during
    # the fractional phase enter the rounding phase already dead.  Both
    # schedules are materialized once up front from the same CSR so every
    # backend (including each shard worker) sees identical masks.
    frac_schedule = rounding_schedule = None
    schedule_csr = None
    if faults is not None:
        schedule_csr = bulk if bulk is not None else BulkGraph.from_graph(graph)
        frac_exchanges = (
            algorithm2_exchanges(k)
            if variant is FractionalVariant.KNOWN_DELTA
            else algorithm3_exchanges(k)
        )
        frac_schedule = faults.materialize(schedule_csr, rounds=frac_exchanges, salt=0)
        rounding_schedule = faults.materialize(
            schedule_csr,
            rounds=ROUNDING_EXCHANGES,
            salt=1,
            already_dead=frac_schedule.ever_crashed,
        )

    # One shard pool serves both phases: forking, sharing the CSR, and
    # partitioning happen once, then the fractional and rounding supersteps
    # run against the same resident workers.
    executor = None
    try:
        if backend == SHARDED:
            from repro.simulator.sharded import ShardedDriver

            executor = ShardedDriver(bulk, shards)

        if variant is FractionalVariant.KNOWN_DELTA:
            fractional = approximate_fractional_mds(
                graph,
                k=k,
                seed=seed,
                collect_trace=collect_trace,
                backend=backend,
                _bulk=bulk,
                _executor=executor,
                _schedule=frac_schedule,
            )
        else:
            fractional = approximate_fractional_mds_unknown_delta(
                graph,
                k=k,
                seed=seed,
                collect_trace=collect_trace,
                backend=backend,
                _bulk=bulk,
                _executor=executor,
                _schedule=frac_schedule,
            )

        if faults is None:
            feasible, _ = solution_feasibility(graph, fractional.x, _bulk=bulk)
            if not feasible:
                raise RuntimeError(
                    "fractional phase returned an infeasible LP solution; "
                    "this indicates a bug in the distributed algorithm"
                )

        rounding = round_fractional_solution(
            graph,
            fractional.x,
            seed=seed,
            rule=rounding_rule,
            require_feasible=False,  # checked above (or deliberately skipped)
            backend=backend,
            _bulk=bulk,
            _executor=executor,
            _schedule=rounding_schedule,
        )
    finally:
        if executor is not None:
            executor.close()

    dominating_set = rounding.dominating_set
    repair_report = None
    if faults is None:
        if not is_dominating_set(graph, dominating_set):
            raise RuntimeError(
                "rounding phase returned a non-dominating set; "
                "this indicates a bug in Algorithm 1's fallback step"
            )
    elif repair:
        repair_report = repair_dominating_set(schedule_csr, dominating_set)
        dominating_set = repair_report.repaired_set

    return PipelineResult(
        dominating_set=dominating_set,
        fractional=fractional,
        rounding=rounding,
        total_rounds=fractional.rounds + rounding.rounds,
        total_messages=fractional.metrics.total_messages
        + rounding.metrics.total_messages,
        max_message_bits=max(
            fractional.metrics.max_message_bits, rounding.metrics.max_message_bits
        ),
        k=k,
        max_degree=delta,
        repair=repair_report,
    )
