"""Algorithm 1 of the paper: distributed randomized rounding.

Given any feasible solution ``x^(α)`` of LP_MDS (an α-approximation of the
fractional optimum), Algorithm 1 converts it into an integral dominating set
in a *constant* number of rounds:

1. each node computes δ⁽²⁾ (two rounds of degree exchange),
2. it joins the dominating set with probability
   ``p_i = min(1, x_i · ln(δ⁽²⁾_i + 1))``,
3. it announces its decision to its neighbours (one round), and
4. any node that sees no dominator in its closed neighbourhood joins itself.

Theorem 3: the expected size of the resulting dominating set is at most
``(1 + α·ln(Δ+1)) · |DS_OPT|``.

The remark after Theorem 3 proposes the alternative multiplier
``ln(δ⁽²⁾+1) − ln ln(δ⁽²⁾+1)``, which trades a slightly larger constant for
a smaller leading term; both variants are implemented and selectable through
:class:`RoundingRule`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from itertools import compress
from typing import Hashable, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.core.fractional import _resolve_fault_schedule, _sharded_driver
from repro.core.vectorized import (
    BACKENDS,
    ROUNDING_EXCHANGES,
    SHARDED,
    SIMULATED,
    VECTORIZED,
    resolve_bulk_input,
    run_rounding_bulk,
    run_rounding_bulk_batched,
    run_rounding_bulk_faulted,
    validate_backend,
    x_array_from_mapping,
)
from repro.graphs.utils import validate_simple_graph
from repro.lp.feasibility import check_primal_feasible
from repro.simulator.bulk import BulkGraph
from repro.simulator.fault_schedule import FaultSchedule, FaultSpec, FaultSummary
from repro.lp.formulation import build_lp
from repro.simulator.metrics import ExecutionMetrics
from repro.simulator.network import Network
from repro.simulator.node import NodeContext
from repro.simulator.runtime import SynchronousRunner
from repro.simulator.script import GeneratorNodeProgram


class RoundingRule(str, enum.Enum):
    """Selects the probability multiplier used in line 2 of Algorithm 1."""

    #: The paper's main rule: p_i = min(1, x_i · ln(δ⁽²⁾_i + 1)).
    LOG = "log"
    #: The remark's rule: p_i = min(1, x_i · (ln(δ⁽²⁾+1) − ln ln(δ⁽²⁾+1))).
    LOG_MINUS_LOGLOG = "log_minus_loglog"


def rounding_multiplier(delta_two: int, rule: RoundingRule) -> float:
    """The multiplier applied to x_i when computing the join probability.

    For the ``LOG_MINUS_LOGLOG`` rule the correction term ``ln ln(δ⁽²⁾+1)``
    is only subtracted when it is positive (i.e. δ⁽²⁾ + 1 > e); otherwise the
    rule degenerates gracefully to the plain logarithm.
    """
    log_term = math.log(delta_two + 1.0) if delta_two + 1.0 > 1.0 else 0.0
    if rule is RoundingRule.LOG:
        return log_term
    correction = math.log(log_term) if log_term > 1.0 else 0.0
    return max(log_term - correction, 0.0)


@dataclass(frozen=True)
class RoundingResult:
    """Output of a distributed rounding execution.

    Attributes
    ----------
    dominating_set:
        The selected dominating set.
    joined_randomly:
        Nodes selected in the randomized step (line 3).
    joined_as_fallback:
        Nodes that joined because their closed neighbourhood contained no
        dominator after the random step (line 6).
    rounds:
        Number of synchronous rounds used.
    metrics:
        Message/round metrics of the execution.
    """

    dominating_set: frozenset
    joined_randomly: frozenset
    joined_as_fallback: frozenset
    rounds: int
    metrics: ExecutionMetrics
    #: What the fault schedule did to this run (``None`` for fault-free runs).
    faults: FaultSummary | None = None

    @property
    def size(self) -> int:
        """|DS| of the selected set."""
        return len(self.dominating_set)


class Algorithm1Program(GeneratorNodeProgram):
    """Per-node program implementing Algorithm 1 (randomized rounding).

    Parameters
    ----------
    x_value:
        The node's component of the fractional solution being rounded.
    rule:
        Probability multiplier rule (see :class:`RoundingRule`).
    """

    def __init__(self, x_value: float, rule: RoundingRule = RoundingRule.LOG) -> None:
        super().__init__()
        if x_value < 0:
            raise ValueError("fractional values must be non-negative")
        self.x_value = float(x_value)
        self.rule = rule
        self.joined_randomly = False
        self.joined_as_fallback = False

    def run(self, ctx: NodeContext):
        # Line 1 (and the remark below Algorithm 1): compute δ⁽²⁾ with two
        # rounds of degree propagation.
        inbox = yield ctx.send_all(ctx.degree, tag="degree")
        neighbor_degrees = self.inbox_by_sender(inbox)
        delta_one = max([ctx.degree, *neighbor_degrees.values()])

        inbox = yield ctx.send_all(delta_one, tag="delta-one")
        neighbor_delta_one = self.inbox_by_sender(inbox)
        delta_two = max([delta_one, *neighbor_delta_one.values()])

        # Lines 2-3: join with probability p_i = min(1, x_i · multiplier).
        probability = min(1.0, self.x_value * rounding_multiplier(delta_two, self.rule))
        in_set = ctx.rng.random() < probability
        self.joined_randomly = in_set

        # Line 4: announce the decision.
        inbox = yield ctx.send_all(in_set, tag="ds-membership")
        neighbor_membership = self.inbox_by_sender(inbox)

        # Lines 5-7: if nobody in the closed neighbourhood joined, join now.
        if not in_set and not any(neighbor_membership.values()):
            in_set = True
            self.joined_as_fallback = True

        self._result = in_set
        return in_set


def solution_feasibility(
    graph,
    x: Mapping[Hashable, float],
    tolerance: float = 1e-7,
    _bulk: BulkGraph | None = None,
) -> tuple[bool, float]:
    """``(feasible, max_violation)`` of ``x`` for LP_MDS (``N·x ≥ 1, x ≥ 0``).

    Whenever a CSR view is available (a BulkGraph input, or the prebuilt
    ``_bulk`` of a vectorized run) the constraint is checked directly on it
    in O(n + m); only the simulated path without a CSR in hand builds the
    dense LP.  Both checks return the same verdict.  Shared by the rounding
    precondition and the pipeline's post-fractional self-check.
    """
    if _bulk is not None:
        return _bulk.check_lp_feasible(
            x_array_from_mapping(_bulk, x), tolerance=tolerance
        )
    lp = build_lp(graph)
    return check_primal_feasible(
        lp, dict(x), tolerance=tolerance, return_violation=True
    )


def _check_rounding_input_feasible(
    graph, bulk: BulkGraph | None, x: Mapping[Hashable, float]
) -> None:
    """Verify the Theorem-3 precondition ``N·x ≥ 1`` for either input kind."""
    feasible, violation = solution_feasibility(graph, x, _bulk=bulk)
    if not feasible:
        raise ValueError(
            "input is not a feasible LP_MDS solution "
            f"(max constraint violation {violation:.3e}); "
            "pass require_feasible=False to round it anyway"
        )


def _bulk_rounding_result(
    bulk, in_set, randomly, fallback, metrics, faults=None
) -> RoundingResult:
    """Package the vectorized runner's arrays as a :class:`RoundingResult`.

    ``itertools.compress`` over the bool columns replaces the per-node
    generator loops -- same frozensets, a fraction of the packaging cost at
    n ≥ 10⁶ (this is serial time both the vectorized and sharded backends
    pay per trial).
    """
    return RoundingResult(
        dominating_set=frozenset(compress(bulk.nodes, in_set.tolist())),
        joined_randomly=frozenset(compress(bulk.nodes, randomly.tolist())),
        joined_as_fallback=frozenset(compress(bulk.nodes, fallback.tolist())),
        rounds=metrics.round_count,
        metrics=metrics,
        faults=faults,
    )


def _sharded_rounding(
    bulk: BulkGraph,
    x: Mapping[Hashable, float],
    seeds: Sequence[int | None],
    rule: RoundingRule,
    shards: int | None,
    executor,
) -> list[RoundingResult]:
    """Run Algorithm 1 trials on the sharded superstep engine."""
    values = x_array_from_mapping(bulk, x)
    if np.any(values < 0):
        # The same rejection the kernels perform, raised parent-side so the
        # error type matches the other backends.
        raise ValueError("fractional values must be non-negative")
    driver, owns = _sharded_driver(bulk, shards, executor)
    try:
        batch = driver.run_rounding_batched(values, seeds, rule.value)
    finally:
        if owns:
            driver.close()
    return [_bulk_rounding_result(bulk, *entry) for entry in batch]


def _program_factory(
    x: Mapping[Hashable, float], rule: RoundingRule
):
    """Per-node factory handing each node its own fractional value."""

    def factory(node_id: int, network: Network) -> Algorithm1Program:
        return Algorithm1Program(x_value=float(x.get(node_id, 0.0)), rule=rule)

    return factory


def round_fractional_solution(
    graph: nx.Graph,
    x: Mapping[Hashable, float],
    seed: int | None = None,
    rule: RoundingRule = RoundingRule.LOG,
    require_feasible: bool = True,
    backend: str = SIMULATED,
    shards: int | None = None,
    faults: FaultSpec | None = None,
    _bulk: BulkGraph | None = None,
    _executor=None,
    _schedule: FaultSchedule | None = None,
) -> RoundingResult:
    """Round a fractional dominating set solution into an integral one.

    Parameters
    ----------
    graph:
        The network graph.
    x:
        A feasible solution of LP_MDS (per-node fractional values).  The
        feasibility precondition of Theorem 3 is checked unless
        ``require_feasible`` is disabled (useful for fault-injection
        experiments that deliberately feed infeasible inputs).
    seed:
        Seed controlling the per-node coin flips.
    rule:
        Probability multiplier rule.
    require_feasible:
        Whether to verify ``N·x ≥ 1`` before rounding.
    backend:
        ``"simulated"`` for per-node message passing, ``"vectorized"`` for
        the bulk-synchronous array engine, ``"sharded"`` for the multi-
        process superstep engine.  All draw each node's coin from the same
        seeded stream, so for a given ``seed`` they select the same
        dominating set.
    shards:
        Worker count for the sharded backend (``None`` = one per CPU).
    faults:
        Optional :class:`~repro.simulator.fault_schedule.FaultSpec`
        injecting message loss and crash-stop failures.  Every backend
        consumes the same materialized schedule and selects the same
        nodes.  **Under faults the result may fail to dominate the
        graph**: a crashed node cannot run the fallback step -- use
        :func:`repro.domset.repair.repair_dominating_set` to patch the
        outcome.  Reported on ``RoundingResult.faults``.

    ``graph`` may also be a CSR :class:`~repro.simulator.bulk.BulkGraph`
    (vectorized backend only); the feasibility precondition is then checked
    directly on the CSR in O(n + m) instead of building the dense LP.

    Returns
    -------
    RoundingResult
        The dominating set and execution statistics.  The result is always a
        valid dominating set (line 6 of the algorithm guarantees it even for
        infeasible inputs, as long as every node runs the fallback step).
    """
    validate_backend(backend, supported=BACKENDS)
    _bulk = resolve_bulk_input(graph, backend, _bulk)
    if _bulk is not graph:
        validate_simple_graph(graph)
    if require_feasible:
        _check_rounding_input_feasible(graph, _bulk, x)

    if faults is not None or _schedule is not None:
        csr = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
        schedule = _resolve_fault_schedule(
            faults, _schedule, csr, ROUNDING_EXCHANGES
        )
        summary = schedule.summary(ROUNDING_EXCHANGES)

        if backend == SHARDED:
            values = x_array_from_mapping(csr, x)
            if np.any(values < 0):
                raise ValueError("fractional values must be non-negative")
            driver, owns = _sharded_driver(csr, shards, _executor)
            try:
                arrays = driver.run_rounding_faulted(
                    values, seed, rule.value, schedule
                )
            finally:
                if owns:
                    driver.close()
            return _bulk_rounding_result(csr, *arrays, faults=summary)

        if backend == VECTORIZED:
            in_set, randomly, fallback, metrics = run_rounding_bulk_faulted(
                csr,
                x_array_from_mapping(csr, x),
                seed=seed,
                multiplier_for=lambda delta_two: rounding_multiplier(delta_two, rule),
                schedule=schedule,
            )
            return _bulk_rounding_result(
                csr, in_set, randomly, fallback, metrics, faults=summary
            )

        network = Network(graph, _program_factory(x, rule), seed=seed)
        runner = SynchronousRunner(
            network,
            fault_model=schedule.fault_model(csr.nodes),
            max_rounds=16,
        )
        execution = runner.run()
        if not execution.terminated:
            raise RuntimeError(
                "Algorithm 1 did not terminate within its round budget"
            )
        # Crashed programs never produce a result; only survivors' final
        # memberships count, but the joined_randomly flag of a node that
        # died after its coin flip is still reported.
        dominating_set = frozenset(
            node for node, joined in execution.results.items() if joined
        )
        return RoundingResult(
            dominating_set=dominating_set,
            joined_randomly=frozenset(
                node
                for node in csr.nodes
                if getattr(network.program(node), "joined_randomly", False)
            ),
            joined_as_fallback=frozenset(
                node
                for node in csr.nodes
                if getattr(network.program(node), "joined_as_fallback", False)
            ),
            rounds=execution.rounds,
            metrics=execution.metrics,
            faults=summary,
        )

    if backend == SHARDED:
        bulk = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
        return _sharded_rounding(bulk, x, [seed], rule, shards, _executor)[0]

    if backend == VECTORIZED:
        bulk = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
        in_set, randomly, fallback, metrics = run_rounding_bulk(
            bulk,
            x_array_from_mapping(bulk, x),
            seed=seed,
            multiplier_for=lambda delta_two: rounding_multiplier(delta_two, rule),
        )
        return _bulk_rounding_result(bulk, in_set, randomly, fallback, metrics)

    network = Network(graph, _program_factory(x, rule), seed=seed)
    runner = SynchronousRunner(network, max_rounds=16)
    execution = runner.run()
    if not execution.terminated:
        raise RuntimeError("Algorithm 1 did not terminate within its round budget")

    dominating_set = frozenset(
        node for node, joined in execution.results.items() if joined
    )
    joined_randomly = frozenset(
        node
        for node in network.node_ids
        if getattr(network.program(node), "joined_randomly", False)
    )
    joined_as_fallback = frozenset(
        node
        for node in network.node_ids
        if getattr(network.program(node), "joined_as_fallback", False)
    )
    return RoundingResult(
        dominating_set=dominating_set,
        joined_randomly=joined_randomly,
        joined_as_fallback=joined_as_fallback,
        rounds=execution.rounds,
        metrics=execution.metrics,
    )


def round_fractional_solution_batched(
    graph: nx.Graph,
    x: Mapping[Hashable, float],
    seeds: Sequence[int | None],
    rule: RoundingRule = RoundingRule.LOG,
    require_feasible: bool = True,
    backend: str = SIMULATED,
    shards: int | None = None,
    _bulk: BulkGraph | None = None,
    _executor=None,
) -> list[RoundingResult]:
    """Round one fractional solution under many independent rounding seeds.

    Trial ``t`` reproduces ``round_fractional_solution(graph, x, seeds[t],
    ...)`` exactly -- the per-node coins come from the same per-seed
    streams -- but the seed-independent work (input feasibility, the CSR
    build, the δ⁽²⁾ exchanges, the join probabilities) is paid once instead
    of once per trial.  This is what lets ``sweep_pipeline`` stop re-running
    the deterministic fractional phase and its feasibility check for every
    rounding trial.

    On the simulated backend the batch simply loops the one-seed entry
    point (per-message fidelity has nothing seed-independent to share
    beyond the feasibility check).

    Returns
    -------
    list[RoundingResult]
        One result per seed, in seed order.
    """
    validate_backend(backend, supported=BACKENDS)
    _bulk = resolve_bulk_input(graph, backend, _bulk)
    if _bulk is not graph:
        validate_simple_graph(graph)
    if require_feasible:
        _check_rounding_input_feasible(graph, _bulk, x)

    if backend == SHARDED:
        bulk = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
        return _sharded_rounding(bulk, x, seeds, rule, shards, _executor)

    if backend == VECTORIZED:
        bulk = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
        batch = run_rounding_bulk_batched(
            bulk,
            x_array_from_mapping(bulk, x),
            seeds=seeds,
            multiplier_for=lambda delta_two: rounding_multiplier(delta_two, rule),
        )
        return [
            _bulk_rounding_result(bulk, in_set, randomly, fallback, metrics)
            for in_set, randomly, fallback, metrics in batch
        ]

    return [
        round_fractional_solution(
            graph, x, seed=seed, rule=rule, require_feasible=False, backend=backend
        )
        for seed in seeds
    ]


def expected_join_probabilities(
    graph: nx.Graph,
    x: Mapping[Hashable, float],
    rule: RoundingRule = RoundingRule.LOG,
) -> dict[Hashable, float]:
    """The per-node probabilities p_i used in line 2 of Algorithm 1.

    Computed centrally (no simulation); used by tests to compare the
    empirical join frequency against the analytical probability, and by the
    Theorem-3 benchmark to report the analytic expectation
    E[X] = Σ p_i alongside the measured |DS|.
    """
    from repro.graphs.utils import delta_two as delta_two_map

    two_hop = delta_two_map(graph)
    return {
        node: min(1.0, float(x.get(node, 0.0)) * rounding_multiplier(two_hop[node], rule))
        for node in graph.nodes()
    }
