"""Vectorized bulk-synchronous implementations of Algorithms 1-3.

These functions compute the *exact* same per-node values as the
message-passing programs in :mod:`repro.core.fractional`,
:mod:`repro.core.fractional_unknown` and :mod:`repro.core.rounding`, but
replace every per-message Python object with one whole-graph array
operation over a :class:`~repro.simulator.bulk.BulkGraph`.

Numerical equivalence is engineered, not approximate:

* neighbourhood sums accumulate in the simulator's ascending-sender order
  (see :meth:`BulkGraph.neighbor_sum`), so coverage values -- and therefore
  the white/gray colouring decisions they gate -- are bitwise identical;
* every transcendental (the activity thresholds ``γ^(ℓ/(ℓ+1))``, the
  x-boosts ``a^(−m/(m+1))``, the rounding multipliers ``ln(δ⁽²⁾+1)``) is
  evaluated once per *distinct* operand with Python's own float power /
  ``math.log``, exactly as the per-node programs do, and broadcast back;
* the randomized rounding draws its per-node coin from
  ``random.Random(f"{seed}:{node}")`` -- the same stream
  :class:`~repro.simulator.network.Network` hands each node -- so the
  selected dominating set matches the simulated backend flip for flip.

Round counts and (modeled) message counts are reported through the same
:class:`~repro.simulator.metrics.ExecutionMetrics` structure the simulator
produces, with an identical per-round layout.
"""

from __future__ import annotations

import random
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.simulator.bulk import (
    BOOL_PAYLOAD_BITS,
    BulkGraph,
    BulkMetricsBuilder,
    float_payload_bits,
    int_payload_bits,
)
from repro.simulator.columnar import ColumnarTrace
from repro.simulator.metrics import ExecutionMetrics

#: The execution backends exposed by the public entry points.
SIMULATED = "simulated"
VECTORIZED = "vectorized"
SHARDED = "sharded"
BACKENDS = (SIMULATED, VECTORIZED, SHARDED)


class CapabilityError(ValueError):
    """A requested capability is not available on the requested backend.

    This is the one error path shared by every entry point and by the
    :mod:`repro.api` dispatcher: the message always names the algorithm,
    the capability that was asked for, the backend it was asked on, and
    the backends that do support it, so callers never have to guess which
    combination to change.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    handlers (and tests) keep working.
    """

    def __init__(
        self,
        algorithm: str,
        capability: str,
        requested: str | None = None,
        supported: Sequence[str] = (),
    ) -> None:
        self.algorithm = algorithm
        self.capability = capability
        self.requested = requested
        self.supported = tuple(supported)
        if self.supported:
            remedy = "backend(s) supporting it: " + ", ".join(
                repr(name) for name in self.supported
            )
        else:
            remedy = "no backend supports it"
        where = f" on backend {requested!r}" if requested is not None else ""
        super().__init__(
            f"algorithm {algorithm!r} does not support {capability}{where}; "
            f"{remedy}"
        )

    def __reduce__(self):
        # Rebuild from the original arguments so the error survives
        # pickling -- process-pool workers (sweeps with jobs > 1) must be
        # able to ship it back instead of dying with BrokenProcessPool.
        return (
            type(self),
            (self.algorithm, self.capability, self.requested, self.supported),
        )


def validate_backend(
    backend: str, supported: Sequence[str] = (SIMULATED, VECTORIZED)
) -> str:
    """Check a ``backend=`` argument and return it normalised.

    ``supported`` lists the backends this entry point implements; it
    defaults to the simulated/vectorized pair so only the entry points
    that grew a sharded execution path opt into ``"sharded"`` (passing
    ``supported=BACKENDS``) -- everything else rejects it up front instead
    of silently falling through to a per-node path.
    """
    if backend in supported:
        return backend
    if backend in BACKENDS:
        raise ValueError(
            f"backend {backend!r} is not supported by this entry point; "
            f"expected one of {', '.join(supported)}"
        )
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {', '.join(supported)}"
    )


def resolve_bulk_input(graph, backend: str, bulk: BulkGraph | None = None):
    """Support :class:`BulkGraph` instances passed as the ``graph`` argument.

    The CSR-native generators produce :class:`BulkGraph` objects directly;
    the public entry points accept them wherever ``backend="vectorized"``
    (or its multiprocess sibling ``"sharded"``) is in effect -- there is no
    per-node program to run them through, so the simulated backend rejects
    them.  Returns the :class:`BulkGraph` to use for bulk execution -- the
    input itself when it already is one, otherwise the caller-provided
    prebuilt ``bulk`` (which may be ``None``, meaning "build from the
    networkx graph on demand").
    """
    if isinstance(graph, BulkGraph):
        if backend not in (VECTORIZED, SHARDED):
            raise ValueError(
                "BulkGraph inputs require backend='vectorized' or 'sharded'; "
                "the simulated backend needs a networkx graph to build "
                "per-node programs"
            )
        return graph
    return bulk


def _unique_powers_cached(
    values: np.ndarray,
    exponent: float,
    cache: dict[tuple[float, float], float],
) -> np.ndarray:
    """``values ** exponent`` evaluated with Python float semantics.

    Computes the power once per distinct operand using ``float.__pow__`` --
    the operation the per-node programs perform -- and scatters the
    results, so the vectorized backend cannot drift from the simulator by
    even one ULP on platforms where numpy's pow differs from libm's.  The
    caller-owned ``(operand, exponent)`` memo lets the multi-k snapshot
    engine reuse one cache across its whole k sweep; entries are exact
    ``float.__pow__`` results, so sharing cannot change a single bit.
    """
    unique, inverse = np.unique(values, return_inverse=True)
    table = np.empty(unique.size, dtype=np.float64)
    for position, operand in enumerate(unique):
        key = (float(operand), exponent)
        result = cache.get(key)
        if result is None:
            result = cache[key] = float(operand) ** exponent
        table[position] = result
    return table[inverse]


def _unique_map(values: np.ndarray, func: Callable[[int], float]) -> np.ndarray:
    """Apply an int -> float function once per distinct value and scatter."""
    unique, inverse = np.unique(values, return_inverse=True)
    table = np.array([func(int(value)) for value in unique], dtype=np.float64)
    return table[inverse]


class _TraceRecorder:
    """Columnar trace writer for the bulk fractional engines.

    Appends the same events the per-node programs emit -- identical kinds,
    payload keys, values and round indices -- but one
    :meth:`~repro.simulator.columnar.ColumnarTrace.record_group` call per
    event kind per (outer, inner) iteration instead of one Python object
    per node, i.e. O(rounds · n) array cost.  The round index recorded for
    each event equals ``BulkMetricsBuilder.exchange_count`` at the
    recording site, which is exactly the node programs' ``round_counter``
    at the corresponding ``trace_event`` call.  Only the within-round
    event order differs from the simulator (whole kinds at a time instead
    of node-major interleaving); every per-node value is bitwise equal.
    """

    def __init__(self, trace: ColumnarTrace, bulk: BulkGraph) -> None:
        self._trace = trace
        self._nodes = np.asarray(bulk.nodes, dtype=np.int64)

    @staticmethod
    def _colors(white: np.ndarray) -> np.ndarray:
        # The literals match fractional.WHITE / fractional.GRAY (importing
        # them here would be circular: fractional imports this module).
        return np.where(white, "white", "gray")

    def outer_start(
        self,
        rc: int,
        ell: int,
        dynamic_degree: np.ndarray,
        x: np.ndarray,
        white: np.ndarray,
        gamma_two: np.ndarray | None = None,
    ) -> None:
        data: dict = {"ell": ell, "dynamic_degree": dynamic_degree}
        if gamma_two is not None:
            data["gamma_two"] = gamma_two
        data["x"] = x
        data["color"] = self._colors(white)
        self._trace.record_group("outer-loop-start", rc, self._nodes, **data)

    def inner(
        self,
        rc: int,
        ell: int,
        m: int,
        active: np.ndarray,
        x: np.ndarray,
        white: np.ndarray,
        dynamic_degree: np.ndarray,
        a_value: np.ndarray | None = None,
        a_one: np.ndarray | None = None,
    ) -> None:
        data: dict = {"ell": ell, "m": m, "active": active}
        if a_value is not None:
            data["a_value"] = a_value
            data["a_one"] = a_one
        data["x"] = x
        data["color"] = self._colors(white)
        data["dynamic_degree"] = dynamic_degree
        self._trace.record_group("inner-loop", rc, self._nodes, **data)

    def colored_gray(self, rc: int, ell: int, m: int, newly_gray: np.ndarray) -> None:
        self._trace.record_group(
            "colored-gray", rc, self._nodes[newly_gray], ell=ell, m=m
        )


def _delta_two(bulk: BulkGraph, metrics: BulkMetricsBuilder) -> np.ndarray:
    """δ⁽²⁾ per node: two degree-max exchanges, recorded in program order."""
    metrics.record_exchange(int_payload_bits(bulk.degrees))
    delta_one = bulk.closed_max(bulk.degrees)
    metrics.record_exchange(int_payload_bits(delta_one))
    return bulk.closed_max(delta_one)


# ---------------------------------------------------------------------- #
# Algorithm 2 (Δ known)                                                   #
# ---------------------------------------------------------------------- #


def run_algorithm2_bulk(
    bulk: BulkGraph, k: int, delta: int, trace: ColumnarTrace | None = None
) -> tuple[np.ndarray, ExecutionMetrics]:
    """Vectorized Algorithm 2: the same 2k² exchanges as the node program.

    Returns the per-node x-vector (indexed like ``bulk.nodes``) and the
    modeled execution metrics.  When ``trace`` is given, per-iteration
    columnar snapshots are recorded into it (the same events the node
    program emits).  Delegates to the snapshot engine with a one-element
    sweep, so the single-k and multi-k paths cannot drift: there is
    exactly one copy of the loop body.
    """
    traces = None if trace is None else {k: trace}
    return run_algorithm2_bulk_multi_k(bulk, (k,), delta=delta, traces=traces)[k]


def run_weighted_algorithm2_bulk(
    bulk: BulkGraph,
    k: int,
    delta: int,
    costs: np.ndarray,
    c_max: float,
    trace: ColumnarTrace | None = None,
) -> tuple[np.ndarray, ExecutionMetrics]:
    """Vectorized weighted Algorithm 2 (remark after Theorem 4).

    Identical to :func:`run_algorithm2_bulk` except for the cost-scaled
    activity rule: node ``i`` is active when
    ``(c_max / c_i) · δ̃_i ≥ [c_max (Δ+1)]^{ℓ/k}``.  The exchange pattern
    (x-values, then colours; 2k² rounds) is unchanged, so the modeled
    metrics and the per-node values are bitwise identical to the
    message-passing :class:`~repro.core.weighted.WeightedAlgorithm2Program`.

    Parameters
    ----------
    bulk:
        The communication graph.
    k:
        Locality parameter.
    delta:
        Maximum degree Δ known to all nodes.
    costs:
        Per-node costs c_i ∈ [1, c_max], indexed like ``bulk.nodes``.
    c_max:
        The global maximum cost.
    trace:
        Optional :class:`~repro.simulator.columnar.ColumnarTrace` to fill
        with per-iteration snapshots.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if delta < 0:
        raise ValueError("delta must be non-negative")

    base = delta + 1.0
    weighted_base = float(c_max) * base
    # The per-node program computes (c_max / cost) once at line 1 of each
    # activity check; a single elementwise divide reproduces those floats.
    cost_scale = float(c_max) / np.asarray(costs, dtype=np.float64)
    x = np.zeros(bulk.n, dtype=np.float64)
    white = np.ones(bulk.n, dtype=bool)
    dynamic_degree = bulk.degrees + 1
    metrics = BulkMetricsBuilder(bulk.degrees)
    recorder = None if trace is None else _TraceRecorder(trace, bulk)

    for ell in range(k - 1, -1, -1):
        threshold = weighted_base ** (ell / k)
        if recorder is not None:
            recorder.outer_start(metrics.exchange_count, ell, dynamic_degree, x, white)
        for m in range(k - 1, -1, -1):
            # Weighted activity rule: cost-scaled dynamic degree.
            active = cost_scale * dynamic_degree >= threshold
            boost = 1.0 / base ** (m / k)
            x = np.where(active, np.maximum(x, boost), x)
            if recorder is not None:
                recorder.inner(
                    metrics.exchange_count, ell, m, active, x, white, dynamic_degree
                )

            # Exchange x-values; colour gray once covered.
            metrics.record_exchange(float_payload_bits(x))
            coverage = x + bulk.neighbor_sum(x)
            if recorder is not None:
                recorder.colored_gray(
                    metrics.exchange_count, ell, m, white & (coverage >= 1.0)
                )
            white &= coverage < 1.0

            # Exchange colours; recompute the dynamic degree.
            metrics.record_exchange(BOOL_PAYLOAD_BITS)
            dynamic_degree = bulk.neighbor_count(white) + white

    return x, metrics.build(bulk.nodes)


def run_algorithm2_bulk_multi_k(
    bulk: BulkGraph,
    k_values: Sequence[int],
    delta: int,
    traces: Mapping[int, ColumnarTrace] | None = None,
) -> dict[int, tuple[np.ndarray, ExecutionMetrics]]:
    """Snapshot engine: Algorithm 2 for every k in one engine invocation.

    Sweeps over the locality parameter (``bench_tradeoff_curve``,
    ``sweep_pipeline``) previously re-entered the fractional engine once
    per k, re-paying per-call setup and re-deriving every activity
    threshold.  This entry point executes the whole k sweep inside one
    invocation: the CSR state arrays are allocated once, and the
    transcendental tables (the thresholds ``(Δ+1)^{ℓ/k}`` and boosts
    ``(Δ+1)^{−m/k}``) are computed once per *distinct exponent quotient*
    and shared across all k -- for k ∈ {1..6} more than half the quotients
    recur.  Each per-k snapshot is **bitwise identical** to
    ``run_algorithm2_bulk(bulk, k, delta)``: identical x-vectors and
    identical modeled metrics, because every shared value is produced by
    the exact expression the single-k engine evaluates.

    ``traces`` optionally maps a k to a
    :class:`~repro.simulator.columnar.ColumnarTrace`; for those k the
    engine records per-iteration snapshots (the per-node programs' trace
    events, in columnar form) into the given trace.

    Returns ``{k: (x, metrics)}`` for every requested k.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    base = delta + 1.0
    powers: dict[float, float] = {}

    def base_power(quotient: float) -> float:
        value = powers.get(quotient)
        if value is None:
            value = powers[quotient] = base**quotient
        return value

    results: dict[int, tuple[np.ndarray, ExecutionMetrics]] = {}
    for k in k_values:
        if k < 1:
            raise ValueError("k must be at least 1")
        x = np.zeros(bulk.n, dtype=np.float64)
        white = np.ones(bulk.n, dtype=bool)
        dynamic_degree = bulk.degrees + 1
        metrics = BulkMetricsBuilder(bulk.degrees)
        recorder = None
        if traces is not None and k in traces:
            recorder = _TraceRecorder(traces[k], bulk)
        for ell in range(k - 1, -1, -1):
            threshold = base_power(ell / k)
            if recorder is not None:
                recorder.outer_start(
                    metrics.exchange_count, ell, dynamic_degree, x, white
                )
            for m in range(k - 1, -1, -1):
                # Lines 6-8: active nodes raise their x-value.
                active = dynamic_degree >= threshold
                boost = 1.0 / base_power(m / k)
                x = np.where(active, np.maximum(x, boost), x)
                if recorder is not None:
                    recorder.inner(
                        metrics.exchange_count, ell, m, active, x, white, dynamic_degree
                    )

                # Exchange x-values; colour gray once covered (lines 11-12).
                metrics.record_exchange(float_payload_bits(x))
                coverage = x + bulk.neighbor_sum(x)
                if recorder is not None:
                    recorder.colored_gray(
                        metrics.exchange_count, ell, m, white & (coverage >= 1.0)
                    )
                white &= coverage < 1.0

                # Exchange colours; recompute the dynamic degree (lines 9-10).
                metrics.record_exchange(BOOL_PAYLOAD_BITS)
                dynamic_degree = bulk.neighbor_count(white) + white
        results[k] = (x, metrics.build(bulk.nodes))
    return results


# ---------------------------------------------------------------------- #
# Algorithm 3 (Δ unknown)                                                 #
# ---------------------------------------------------------------------- #


def run_algorithm3_bulk(
    bulk: BulkGraph, k: int, trace: ColumnarTrace | None = None
) -> tuple[np.ndarray, ExecutionMetrics]:
    """Vectorized Algorithm 3: the same 4k² + 2k + 2 exchanges as the program.

    Delegates to the snapshot engine with a one-element sweep -- one copy
    of the loop body serves both the single-k and multi-k paths.  When
    ``trace`` is given, per-iteration columnar snapshots are recorded.
    """
    traces = None if trace is None else {k: trace}
    return run_algorithm3_bulk_multi_k(bulk, (k,), traces=traces)[k]


def run_algorithm3_bulk_multi_k(
    bulk: BulkGraph,
    k_values: Sequence[int],
    traces: Mapping[int, ColumnarTrace] | None = None,
) -> dict[int, tuple[np.ndarray, ExecutionMetrics]]:
    """Snapshot engine: Algorithm 3 for every k in one engine invocation.

    Beyond the shared setup of :func:`run_algorithm2_bulk_multi_k`, two
    pieces of Algorithm 3 are genuinely k-independent and computed once
    for the whole sweep: the δ⁽²⁾ prefix (the first two exchanges of every
    run) and the transcendental tables ``γ^{ℓ/(ℓ+1)}`` / ``a^{−m/(m+1)}``,
    whose (operand, exponent) pairs recur heavily across k.  Every per-k
    snapshot is bitwise identical to ``run_algorithm3_bulk(bulk, k)`` --
    x-vector and modeled metrics alike (each k's metrics still record the
    shared prefix exchanges in program order).

    Returns ``{k: (x, metrics)}`` for every requested k.
    """
    power_cache: dict[tuple[float, float], float] = {}
    # The δ⁽²⁾ prefix (line 2) does not depend on k: compute it once and
    # replay its two exchanges into every k's metrics.
    delta_one = bulk.closed_max(bulk.degrees)
    delta_two = bulk.closed_max(delta_one)
    initial_gamma_two = (delta_two + 1).astype(np.float64)

    results: dict[int, tuple[np.ndarray, ExecutionMetrics]] = {}
    for k in k_values:
        if k < 1:
            raise ValueError("k must be at least 1")
        x = np.zeros(bulk.n, dtype=np.float64)
        white = np.ones(bulk.n, dtype=bool)
        metrics = BulkMetricsBuilder(bulk.degrees)
        metrics.record_exchange(int_payload_bits(bulk.degrees))
        metrics.record_exchange(int_payload_bits(delta_one))
        gamma_two = initial_gamma_two
        dynamic_degree = bulk.degrees + 1
        recorder = None
        if traces is not None and k in traces:
            recorder = _TraceRecorder(traces[k], bulk)

        for ell in range(k - 1, -1, -1):
            if recorder is not None:
                recorder.outer_start(
                    metrics.exchange_count, ell, dynamic_degree, x, white,
                    gamma_two=gamma_two,
                )
            for m in range(k - 1, -1, -1):
                # Lines 7-9: activity threshold γ⁽²⁾^(ℓ/(ℓ+1)), one exchange.
                threshold = _unique_powers_cached(
                    gamma_two, ell / (ell + 1), power_cache
                )
                active = dynamic_degree >= threshold
                metrics.record_exchange(BOOL_PAYLOAD_BITS)

                # Lines 10-11: a(v) = active nodes in N(v); 0 for gray nodes.
                a_value = np.where(
                    white, bulk.neighbor_count(active) + active, 0
                ).astype(np.int64)

                # Lines 12-13: exchange a-values, closed-neighbourhood max.
                metrics.record_exchange(int_payload_bits(a_value))
                a_one = bulk.closed_max(a_value)

                # Lines 15-17: active nodes raise x to a⁽¹⁾^(−m/(m+1));
                # a⁽¹⁾ ≥ 1 whenever a node is active, so the power is
                # well defined.
                if active.any():
                    boost = _unique_powers_cached(
                        a_one[active].astype(np.float64), -m / (m + 1), power_cache
                    )
                    x[active] = np.maximum(x[active], boost)
                if recorder is not None:
                    recorder.inner(
                        metrics.exchange_count, ell, m, active, x, white,
                        dynamic_degree, a_value=a_value, a_one=a_one,
                    )

                # Line 18: exchange x-values; line 19: colour once covered.
                metrics.record_exchange(float_payload_bits(x))
                coverage = x + bulk.neighbor_sum(x)
                if recorder is not None:
                    recorder.colored_gray(
                        metrics.exchange_count, ell, m, white & (coverage >= 1.0)
                    )
                white &= coverage < 1.0

                # Lines 20-21: exchange colours, recompute dynamic degree.
                metrics.record_exchange(BOOL_PAYLOAD_BITS)
                dynamic_degree = bulk.neighbor_count(white) + white

            # Lines 24-27: two exchanges refreshing γ⁽²⁾, floored at 1.
            metrics.record_exchange(int_payload_bits(dynamic_degree))
            gamma_one = bulk.closed_max(dynamic_degree)
            metrics.record_exchange(int_payload_bits(gamma_one))
            gamma_two = np.maximum(
                bulk.closed_max(gamma_one).astype(np.float64), 1.0
            )
        results[k] = (x, metrics.build(bulk.nodes))
    return results


# ---------------------------------------------------------------------- #
# Algorithm 1 (randomized rounding)                                       #
# ---------------------------------------------------------------------- #


def run_rounding_bulk(
    bulk: BulkGraph,
    x: np.ndarray,
    seed: int | None,
    multiplier_for: Callable[[int], float],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, ExecutionMetrics]:
    """Vectorized Algorithm 1 with the simulator's per-node coin streams.

    Parameters
    ----------
    bulk:
        The communication graph.
    x:
        Per-node fractional values, indexed like ``bulk.nodes``.
    seed:
        Experiment seed; node ``v`` draws from ``Random(f"{seed}:{v}")``
        exactly as the simulated network does, so both backends flip the
        same coins.
    multiplier_for:
        ``δ⁽²⁾ -> multiplier`` for the join probability (the rounding-rule
        specific ``ln(δ⁽²⁾+1)`` term).

    Returns
    -------
    (in_set, joined_randomly, joined_as_fallback, metrics)
        Three boolean arrays indexed like ``bulk.nodes`` plus the metrics.
    """
    if np.any(np.asarray(x) < 0):
        # Same rejection Algorithm1Program performs per node.
        raise ValueError("fractional values must be non-negative")
    metrics = BulkMetricsBuilder(bulk.degrees)

    # Line 1: δ⁽²⁾ via two exchanges of degree maxima.
    delta_two = _delta_two(bulk, metrics)

    # Lines 2-3: join with probability min(1, x · multiplier(δ⁽²⁾)).
    probability = np.minimum(
        1.0, np.asarray(x, dtype=np.float64) * _unique_map(delta_two, multiplier_for)
    )
    joined_randomly = _coin_draws(bulk, seed) < probability

    # Line 4: announce the decision (one exchange).
    metrics.record_exchange(BOOL_PAYLOAD_BITS)

    # Lines 5-7: nodes with no dominator in their closed neighbourhood join.
    joined_as_fallback = ~joined_randomly & ~bulk.neighbor_any(joined_randomly)
    in_set = joined_randomly | joined_as_fallback
    return in_set, joined_randomly, joined_as_fallback, metrics.build(bulk.nodes)


def _coin_draws(bulk: BulkGraph, seed: int | None) -> np.ndarray:
    """Each node's rounding coin from its simulator-identical seeded stream."""
    return np.fromiter(
        (
            random.Random(f"{seed}:{node}" if seed is not None else None).random()
            for node in bulk.nodes
        ),
        dtype=np.float64,
        count=bulk.n,
    )


def run_rounding_bulk_batched(
    bulk: BulkGraph,
    x: np.ndarray,
    seeds: Sequence[int | None],
    multiplier_for: Callable[[int], float],
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, ExecutionMetrics]]:
    """Vectorized Algorithm 1 for many rounding seeds over one x-vector.

    The seed-independent work -- the two δ⁽²⁾ exchanges, the join
    probabilities, the per-exchange payload bits -- is computed once; each
    trial then only redraws its coin column.  Trial ``t`` reproduces
    ``run_rounding_bulk(bulk, x, seeds[t], multiplier_for)`` exactly: the
    per-node coins come from the identical ``Random(f"{seed}:{node}")``
    streams, so the selected sets (and the modeled metrics) match the
    one-seed runner -- and therefore the message-passing simulator --
    trial for trial.

    Returns one ``(in_set, joined_randomly, joined_as_fallback, metrics)``
    tuple per seed, in seed order.
    """
    x = np.asarray(x, dtype=np.float64)
    if np.any(x < 0):
        raise ValueError("fractional values must be non-negative")

    # Seed-independent phase: δ⁽²⁾, join probabilities, payload sizes.
    degree_bits = int_payload_bits(bulk.degrees)
    delta_one = bulk.closed_max(bulk.degrees)
    delta_one_bits = int_payload_bits(delta_one)
    delta_two = bulk.closed_max(delta_one)
    probability = np.minimum(1.0, x * _unique_map(delta_two, multiplier_for))

    results = []
    for seed in seeds:
        joined_randomly = _coin_draws(bulk, seed) < probability
        joined_as_fallback = ~joined_randomly & ~bulk.neighbor_any(joined_randomly)
        in_set = joined_randomly | joined_as_fallback
        metrics = BulkMetricsBuilder(bulk.degrees)
        metrics.record_exchange(degree_bits)
        metrics.record_exchange(delta_one_bits)
        metrics.record_exchange(BOOL_PAYLOAD_BITS)
        results.append(
            (in_set, joined_randomly, joined_as_fallback, metrics.build(bulk.nodes))
        )
    return results


# ---------------------------------------------------------------------- #
# Faulted kernels (masked reductions over a FaultSchedule)                 #
# ---------------------------------------------------------------------- #
#
# Each faulted kernel replays its algorithm's exact exchange sequence, but
# every neighbourhood reduction is restricted to the schedule's delivered
# edges and every state update is gated by the round's alive mask, so the
# arrays evolve exactly as the per-node programs' state does under the
# :class:`~repro.simulator.fault_schedule.ScheduledFaults` adapter: the
# same x-vectors, the same colours, bit for bit.  ``schedule`` may be a
# whole-graph :class:`~repro.simulator.fault_schedule.FaultSchedule` or a
# per-shard :class:`~repro.simulator.fault_schedule.SlabScheduleView`; the
# kernels only touch the shared mask interface, so the identical loop body
# serves the vectorized and sharded backends.
#
# The modeled metrics exclude crashed senders exchange by exchange but keep
# the fault-free round structure (a run whose every node dies early still
# reports the full exchange count); only the x-vectors, dominating sets and
# drop counts are exact replicas of the simulated execution.

#: Exchange (= delivery round) counts of the faulted kernels, used to size
#: the materialized schedules.
def algorithm2_exchanges(k: int) -> int:
    """Delivery rounds of Algorithm 2 with locality ``k`` (2k²)."""
    return 2 * k * k


def algorithm3_exchanges(k: int) -> int:
    """Delivery rounds of Algorithm 3 with locality ``k`` (4k² + 2k + 2)."""
    return 4 * k * k + 2 * k + 2


#: Delivery rounds of Algorithm 1 (degree, δ⁽¹⁾, membership).
ROUNDING_EXCHANGES = 3


def run_algorithm2_bulk_faulted(
    bulk: BulkGraph, k: int, delta: int, schedule
) -> tuple[np.ndarray, ExecutionMetrics]:
    """Algorithm 2 under a materialized fault schedule.

    Matches the per-node :class:`~repro.core.fractional.Algorithm2Program`
    run under ``schedule.fault_model(...)`` bit for bit: iteration
    ``(ℓ, m)``'s activity check runs in the round that received the
    previous colour exchange, so it is gated by that round's alive mask
    (the very first check runs in ``on_start`` and is ungated).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if delta < 0:
        raise ValueError("delta must be non-negative")
    base = delta + 1.0
    x = np.zeros(bulk.n, dtype=np.float64)
    white = np.ones(bulk.n, dtype=bool)
    dynamic_degree = bulk.degrees + 1
    metrics = BulkMetricsBuilder(bulk.degrees)
    exchange = 0
    gate: np.ndarray | None = None  # alive mask of the activity-check round

    for ell in range(k - 1, -1, -1):
        threshold = base ** (ell / k)
        for m in range(k - 1, -1, -1):
            active = dynamic_degree >= threshold
            if gate is not None:
                active &= gate
            boost = 1.0 / base ** (m / k)
            x = np.where(active, np.maximum(x, boost), x)

            # Exchange x-values; colour gray once covered.
            metrics.record_exchange(
                float_payload_bits(x), senders=schedule.senders(exchange)
            )
            coverage = x + bulk.neighbor_sum(
                x, edge_mask=schedule.delivered_edges(exchange)
            )
            white = np.where(
                schedule.alive(exchange), white & (coverage < 1.0), white
            )
            exchange += 1

            # Exchange colours; recompute the dynamic degree.
            metrics.record_exchange(
                BOOL_PAYLOAD_BITS, senders=schedule.senders(exchange)
            )
            gate = schedule.alive(exchange)
            dynamic_degree = np.where(
                gate,
                bulk.neighbor_count(
                    white, edge_mask=schedule.delivered_edges(exchange)
                )
                + white,
                dynamic_degree,
            )
            exchange += 1

    return x, metrics.build(bulk.nodes)


def run_algorithm3_bulk_faulted(
    bulk: BulkGraph, k: int, schedule
) -> tuple[np.ndarray, ExecutionMetrics]:
    """Algorithm 3 under a materialized fault schedule.

    Same statement-to-round mapping as
    :class:`~repro.core.fractional_unknown.Algorithm3Program`: the δ⁽²⁾
    prefix occupies exchanges 0-1, each inner iteration its four exchanges
    (activity flag, a-value, x-value, colour) and each outer iteration its
    two refresh exchanges, with every update gated by the alive mask of
    the round that performs it.  Like the hardened program, a node whose
    delivered a⁽¹⁾ stayed at 0 (every witness message lost) skips the
    x-raise instead of evaluating ``0^(−m/(m+1))``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    power_cache: dict[tuple[float, float], float] = {}
    x = np.zeros(bulk.n, dtype=np.float64)
    white = np.ones(bulk.n, dtype=bool)
    dynamic_degree = bulk.degrees + 1
    metrics = BulkMetricsBuilder(bulk.degrees)

    # δ⁽²⁾ prefix: exchanges 0 and 1.
    metrics.record_exchange(
        int_payload_bits(bulk.degrees), senders=schedule.senders(0)
    )
    delta_one = bulk.closed_max(
        bulk.degrees, edge_mask=schedule.delivered_edges(0)
    )
    metrics.record_exchange(
        int_payload_bits(delta_one), senders=schedule.senders(1)
    )
    delta_two = bulk.closed_max(delta_one, edge_mask=schedule.delivered_edges(1))
    gamma_two = (delta_two + 1).astype(np.float64)
    exchange = 2

    for ell in range(k - 1, -1, -1):
        for m in range(k - 1, -1, -1):
            # Activity threshold γ⁽²⁾^(ℓ/(ℓ+1)); flag exchange.  A dead
            # node's stale flag is never observed: the delivered mask of
            # this exchange already excludes it as a sender, and its own
            # downstream uses are gated.
            threshold = _unique_powers_cached(
                gamma_two, ell / (ell + 1), power_cache
            )
            active = dynamic_degree >= threshold
            metrics.record_exchange(
                BOOL_PAYLOAD_BITS, senders=schedule.senders(exchange)
            )
            a_value = np.where(
                white,
                bulk.neighbor_count(
                    active, edge_mask=schedule.delivered_edges(exchange)
                )
                + active,
                0,
            ).astype(np.int64)
            exchange += 1

            # a-value exchange; active nodes raise x to a⁽¹⁾^(−m/(m+1)).
            metrics.record_exchange(
                int_payload_bits(a_value), senders=schedule.senders(exchange)
            )
            a_one = bulk.closed_max(
                a_value, edge_mask=schedule.delivered_edges(exchange)
            )
            raising = active & schedule.alive(exchange) & (a_one >= 1)
            if raising.any():
                boost = _unique_powers_cached(
                    a_one[raising].astype(np.float64), -m / (m + 1), power_cache
                )
                x[raising] = np.maximum(x[raising], boost)
            exchange += 1

            # x-value exchange; colour gray once covered.
            metrics.record_exchange(
                float_payload_bits(x), senders=schedule.senders(exchange)
            )
            coverage = x + bulk.neighbor_sum(
                x, edge_mask=schedule.delivered_edges(exchange)
            )
            white = np.where(
                schedule.alive(exchange), white & (coverage < 1.0), white
            )
            exchange += 1

            # Colour exchange; recompute the dynamic degree.
            metrics.record_exchange(
                BOOL_PAYLOAD_BITS, senders=schedule.senders(exchange)
            )
            dynamic_degree = np.where(
                schedule.alive(exchange),
                bulk.neighbor_count(
                    white, edge_mask=schedule.delivered_edges(exchange)
                )
                + white,
                dynamic_degree,
            )
            exchange += 1

        # Two exchanges refreshing γ⁽²⁾, floored at 1.
        metrics.record_exchange(
            int_payload_bits(dynamic_degree), senders=schedule.senders(exchange)
        )
        gamma_one = bulk.closed_max(
            dynamic_degree, edge_mask=schedule.delivered_edges(exchange)
        )
        exchange += 1
        metrics.record_exchange(
            int_payload_bits(gamma_one), senders=schedule.senders(exchange)
        )
        gamma_two = np.maximum(
            bulk.closed_max(
                gamma_one, edge_mask=schedule.delivered_edges(exchange)
            ).astype(np.float64),
            1.0,
        )
        exchange += 1

    return x, metrics.build(bulk.nodes)


def run_rounding_bulk_faulted(
    bulk: BulkGraph,
    x: np.ndarray,
    seed: int | None,
    multiplier_for: Callable[[int], float],
    schedule,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, ExecutionMetrics]:
    """Algorithm 1 under a materialized fault schedule.

    The coin is flipped in the round that received δ⁽¹⁾ (so only nodes
    alive at round 1 can join randomly), and the final membership -- like
    the program's ``result()`` -- is only produced by nodes alive at
    round 2: a node that joined randomly but crashed before announcing is
    reported in ``joined_randomly`` yet not in the dominating set, exactly
    as the simulated execution reports it.
    """
    if np.any(np.asarray(x) < 0):
        raise ValueError("fractional values must be non-negative")
    metrics = BulkMetricsBuilder(bulk.degrees)

    metrics.record_exchange(
        int_payload_bits(bulk.degrees), senders=schedule.senders(0)
    )
    delta_one = bulk.closed_max(
        bulk.degrees, edge_mask=schedule.delivered_edges(0)
    )
    metrics.record_exchange(
        int_payload_bits(delta_one), senders=schedule.senders(1)
    )
    delta_two = bulk.closed_max(delta_one, edge_mask=schedule.delivered_edges(1))

    probability = np.minimum(
        1.0, np.asarray(x, dtype=np.float64) * _unique_map(delta_two, multiplier_for)
    )
    joined_randomly = (_coin_draws(bulk, seed) < probability) & schedule.alive(1)

    metrics.record_exchange(
        BOOL_PAYLOAD_BITS, senders=schedule.senders(2)
    )
    surviving = schedule.alive(2)
    joined_as_fallback = (
        surviving
        & ~joined_randomly
        & ~bulk.neighbor_any(
            joined_randomly, edge_mask=schedule.delivered_edges(2)
        )
    )
    in_set = (joined_randomly | joined_as_fallback) & surviving
    return in_set, joined_randomly, joined_as_fallback, metrics.build(bulk.nodes)


def x_array_from_mapping(bulk: BulkGraph, x: Mapping[Hashable, float]) -> np.ndarray:
    """Convert a node -> value mapping into a ``bulk.nodes``-indexed array."""
    if len(x) == bulk.n:
        # Fast path for complete mappings (the common pipeline case at
        # n >= 10⁶): fromiter over __getitem__ skips a per-node float()
        # call and the intermediate list.  Values are identical -- the
        # float64 cast is the same conversion float() performs.
        try:
            return np.fromiter(
                map(x.__getitem__, bulk.nodes), dtype=np.float64, count=bulk.n
            )
        except KeyError:
            pass
    return np.array(
        [float(x.get(node, 0.0)) for node in bulk.nodes], dtype=np.float64
    )
