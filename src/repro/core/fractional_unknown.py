"""Algorithm 3 of the paper: distributed LP_MDS approximation, Δ unknown.

Algorithm 3 removes Algorithm 2's assumption that every node knows the
global maximum degree Δ.  Instead each node works with purely local
quantities:

* ``γ⁽²⁾(v_i)`` -- the maximum dynamic degree within distance 2 of v_i at
  the beginning of the current outer-loop iteration, and
* ``a⁽¹⁾(v_i)`` -- the maximum, over the closed neighbourhood, of the
  number of active nodes ``a(v_j)``.

Each inner-loop iteration needs four message exchanges (active flags, a-
values, x-values, colours) and every outer-loop iteration adds two more
(dynamic degrees, γ⁽¹⁾ values); two initial rounds compute δ⁽²⁾.  Theorem 5
guarantees the produced x-vector is feasible for LP_MDS with objective at
most ``k·((Δ+1)^{1/k} + (Δ+1)^{2/k})`` times the optimum, and the algorithm
terminates after ``4k² + O(k)`` rounds.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import networkx as nx

from repro.core.fractional import (
    GRAY,
    WHITE,
    FractionalResult,
    _package_fractional,
    _resolve_fault_schedule,
    _sharded_driver,
    _vectorized_fractional_result,
)
from repro.core.vectorized import (
    BACKENDS,
    SHARDED,
    SIMULATED,
    VECTORIZED,
    CapabilityError,
    algorithm3_exchanges,
    resolve_bulk_input,
    run_algorithm3_bulk,
    run_algorithm3_bulk_faulted,
    run_algorithm3_bulk_multi_k,
    validate_backend,
)
from repro.graphs.utils import max_degree, validate_simple_graph
from repro.simulator.bulk import BulkGraph
from repro.simulator.fault_schedule import FaultSchedule, FaultSpec
from repro.simulator.network import Network
from repro.simulator.node import NodeContext
from repro.simulator.runtime import SynchronousRunner
from repro.simulator.script import GeneratorNodeProgram


class Algorithm3Program(GeneratorNodeProgram):
    """Per-node program implementing Algorithm 3 (Δ not known).

    Parameters
    ----------
    k:
        Locality parameter; the algorithm runs 4k² + O(k) rounds.
    """

    def __init__(self, k: int) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        # Local state exposed for tests and invariant monitors.
        self.x = 0.0
        self.color = WHITE
        self.dynamic_degree = 0
        self.gamma_two = 0.0

    # ------------------------------------------------------------------ #

    def run(self, ctx: NodeContext):
        k = self.k

        # Line 1: x_i := 0.
        self.x = 0.0
        self.color = WHITE
        round_counter = 0

        # Line 2: calculate δ⁽²⁾_i (two communication rounds).
        inbox = yield ctx.send_all(ctx.degree, tag="degree")
        round_counter += 1
        neighbor_degrees = self.inbox_by_sender(inbox)
        delta_one = max([ctx.degree, *neighbor_degrees.values()])

        inbox = yield ctx.send_all(delta_one, tag="delta-one")
        round_counter += 1
        neighbor_delta_one = self.inbox_by_sender(inbox)
        delta_two = max([delta_one, *neighbor_delta_one.values()])

        # Line 3: γ⁽²⁾(v_i) := δ⁽²⁾_i + 1;  δ̃(v_i) := δ_i + 1.
        self.gamma_two = float(delta_two + 1)
        self.dynamic_degree = ctx.degree + 1

        # Line 4: outer loop over ℓ = k-1 .. 0.
        for ell in range(k - 1, -1, -1):
            self.trace_event(
                round_counter,
                ctx.node_id,
                "outer-loop-start",
                ell=ell,
                dynamic_degree=self.dynamic_degree,
                gamma_two=self.gamma_two,
                x=self.x,
                color=self.color,
            )
            # Line 6: inner loop over m = k-1 .. 0.
            for m in range(k - 1, -1, -1):
                # Lines 7-9: determine activity and announce it (one round).
                threshold = self.gamma_two ** (ell / (ell + 1))
                is_active = self.dynamic_degree >= threshold
                inbox = yield ctx.send_all(is_active, tag="active")
                round_counter += 1
                neighbor_active = self.inbox_by_sender(inbox)

                # Lines 10-11: a(v_i) = number of active nodes in N_i
                # (0 for gray nodes).
                active_count = sum(1 for flag in neighbor_active.values() if flag)
                active_count += 1 if is_active else 0
                if self.color == GRAY:
                    active_count = 0

                # Lines 12-13: exchange a-values, take the neighbourhood max.
                inbox = yield ctx.send_all(active_count, tag="a-value")
                round_counter += 1
                neighbor_a = self.inbox_by_sender(inbox)
                a_one = max([active_count, *neighbor_a.values()])

                # Lines 15-17: active nodes raise their x-value to
                # a⁽¹⁾(v_i)^(−m/(m+1)).
                if is_active and a_one >= 1:
                    # Fault-free, a_one ≥ 1 whenever a node is active: the
                    # node itself has a white node in N_i, and that node
                    # counts v_i.  Under message loss every witness message
                    # may be dropped, leaving a gray active node with
                    # a_one = 0; skip the raise rather than evaluate
                    # 0^(−m/(m+1)).
                    self.x = max(self.x, float(a_one) ** (-m / (m + 1)))

                # Recorded after the x-update (and before the colour update)
                # so that, as for Algorithm 2, the event carries this
                # iteration's x-value together with the start-of-iteration
                # colour -- the alignment the invariant checkers rely on.
                self.trace_event(
                    round_counter,
                    ctx.node_id,
                    "inner-loop",
                    ell=ell,
                    m=m,
                    active=is_active,
                    a_value=active_count,
                    a_one=a_one,
                    x=self.x,
                    color=self.color,
                    dynamic_degree=self.dynamic_degree,
                )

                # Line 18: send the x-value (one round).
                inbox = yield ctx.send_all(self.x, tag="x-value")
                round_counter += 1
                neighbor_x = self.inbox_by_sender(inbox)

                # Line 19: colour gray once the closed neighbourhood is covered.
                coverage = self.x + sum(neighbor_x.values())
                if coverage >= 1.0:
                    if self.color == WHITE:
                        self.trace_event(
                            round_counter, ctx.node_id, "colored-gray", ell=ell, m=m
                        )
                    self.color = GRAY

                # Lines 20-21: exchange colours, recompute the dynamic degree.
                inbox = yield ctx.send_all(self.color == WHITE, tag="color")
                round_counter += 1
                neighbor_colors = self.inbox_by_sender(inbox)
                white_neighbors = sum(1 for flag in neighbor_colors.values() if flag)
                self.dynamic_degree = white_neighbors + (
                    1 if self.color == WHITE else 0
                )

            # Lines 24-27: refresh γ⁽²⁾ for the next outer-loop iteration
            # (two additional rounds per outer iteration).
            inbox = yield ctx.send_all(self.dynamic_degree, tag="dynamic-degree")
            round_counter += 1
            neighbor_dynamic = self.inbox_by_sender(inbox)
            gamma_one = max([self.dynamic_degree, *neighbor_dynamic.values()])

            inbox = yield ctx.send_all(gamma_one, tag="gamma-one")
            round_counter += 1
            neighbor_gamma_one = self.inbox_by_sender(inbox)
            self.gamma_two = float(max([gamma_one, *neighbor_gamma_one.values()]))
            # γ⁽²⁾ is used as a base of the activity threshold; keep it ≥ 1
            # so the exponentiation stays well defined once all nodes are gray.
            self.gamma_two = max(self.gamma_two, 1.0)

        self._result = self.x
        return self.x


def _program_factory(k: int):
    """Build the per-node program factory for Algorithm 3."""

    def factory(node_id: int, network: Network) -> Algorithm3Program:
        return Algorithm3Program(k=k)

    return factory


def approximate_fractional_mds_unknown_delta(
    graph: nx.Graph,
    k: int,
    seed: int | None = None,
    collect_trace: bool = False,
    backend: str = SIMULATED,
    shards: int | None = None,
    faults: FaultSpec | None = None,
    _bulk: BulkGraph | None = None,
    _executor=None,
    _schedule: FaultSchedule | None = None,
) -> FractionalResult:
    """Run Algorithm 3 on a graph and return its fractional solution.

    Parameters
    ----------
    graph:
        The network graph (undirected, simple).
    k:
        Locality parameter; Theorem 5 guarantees a
        k((Δ+1)^{1/k} + (Δ+1)^{2/k}) approximation in 4k² + O(k) rounds.
    seed:
        Seed for per-node randomness (Algorithm 3 is deterministic; kept for
        interface symmetry with the randomized components).
    collect_trace:
        Record a full execution trace for invariant checking.  Only
        supported by the simulated backend.
    backend:
        ``"simulated"`` for per-node message passing, ``"vectorized"`` for
        the bulk-synchronous array engine (identical x-vectors, far faster
        on large graphs), ``"sharded"`` for the multiprocess superstep
        engine (identical again; scales to n ≥ 10⁶).
    shards:
        Worker-process count for the sharded backend (``None`` picks one
        per usable CPU).  Ignored by the other backends.
    faults:
        Optional :class:`~repro.simulator.fault_schedule.FaultSpec`
        injecting message loss and crash-stop failures; every backend
        consumes the same materialized schedule and produces
        bitwise-identical x-vectors.  Reported on
        ``FractionalResult.faults``.

    ``graph`` may also be a CSR :class:`~repro.simulator.bulk.BulkGraph`,
    in which case a bulk backend (vectorized or sharded) is required.

    Returns
    -------
    FractionalResult
    """
    validate_backend(backend, supported=BACKENDS)
    _bulk = resolve_bulk_input(graph, backend, _bulk)
    if _bulk is not graph:
        validate_simple_graph(graph)
    if k < 1:
        raise ValueError("k must be at least 1")

    if faults is not None or _schedule is not None:
        if collect_trace and backend != SIMULATED:
            raise CapabilityError(
                "approximate_fractional_mds_unknown_delta",
                "collect_trace under fault injection",
                backend,
                (SIMULATED,),
            )
        csr = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
        exchanges = algorithm3_exchanges(k)
        schedule = _resolve_fault_schedule(faults, _schedule, csr, exchanges)
        summary = schedule.summary(exchanges)
        true_delta = max_degree(graph)

        if backend == SHARDED:
            driver, owns = _sharded_driver(csr, shards, _executor)
            try:
                values, metrics = driver.run_algorithm3_faulted(k, schedule)
            finally:
                if owns:
                    driver.close()
            return _package_fractional(
                csr, values, metrics, k, true_delta, faults=summary
            )

        if backend == VECTORIZED:
            values, metrics = run_algorithm3_bulk_faulted(csr, k, schedule)
            return _package_fractional(
                csr, values, metrics, k, true_delta, faults=summary
            )

        network = Network(graph, _program_factory(k), seed=seed)
        runner = SynchronousRunner(
            network,
            fault_model=schedule.fault_model(csr.nodes),
            max_rounds=4 * k * k + 6 * k + 12,
            collect_trace=collect_trace,
        )
        execution = runner.run()
        if not execution.terminated:
            raise RuntimeError(
                "Algorithm 3 did not terminate within its round budget"
            )
        x = {node: float(network.program(node).x) for node in csr.nodes}
        return FractionalResult(
            x=x,
            objective=float(sum(x.values())),
            rounds=execution.rounds,
            metrics=execution.metrics,
            trace=execution.trace,
            k=k,
            max_degree=true_delta,
            faults=summary,
        )

    if backend == SHARDED:
        if collect_trace:
            raise CapabilityError(
                "approximate_fractional_mds_unknown_delta",
                "collect_trace",
                SHARDED,
                (SIMULATED, VECTORIZED),
            )
        bulk = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
        driver, owns = _sharded_driver(bulk, shards, _executor)
        try:
            values, metrics = driver.run_algorithm3_multi_k((k,))[k]
        finally:
            if owns:
                driver.close()
        return _package_fractional(bulk, values, metrics, k, max_degree(graph))

    if backend == VECTORIZED:
        return _vectorized_fractional_result(
            graph,
            k,
            collect_trace,
            lambda bulk, trace: run_algorithm3_bulk(bulk, k=k, trace=trace),
            max_degree(graph),
            bulk=_bulk,
            algorithm="approximate_fractional_mds_unknown_delta",
        )

    network = Network(graph, _program_factory(k), seed=seed)
    runner = SynchronousRunner(
        network,
        max_rounds=4 * k * k + 6 * k + 12,
        collect_trace=collect_trace,
    )
    execution = runner.run()
    if not execution.terminated:
        raise RuntimeError("Algorithm 3 did not terminate within its round budget")

    x = {node: float(value) for node, value in execution.results.items()}
    return FractionalResult(
        x=x,
        objective=float(sum(x.values())),
        rounds=execution.rounds,
        metrics=execution.metrics,
        trace=execution.trace,
        k=k,
        max_degree=max_degree(graph),
    )


def approximate_fractional_mds_unknown_delta_multi_k(
    graph: nx.Graph,
    k_values: Sequence[int],
    seed: int | None = None,
    backend: str = SIMULATED,
    shards: int | None = None,
    _bulk: BulkGraph | None = None,
    _executor=None,
) -> dict[int, FractionalResult]:
    """Run Algorithm 3 for a whole k sweep in one call.

    The vectorized backend dispatches to the snapshot engine
    (:func:`repro.core.vectorized.run_algorithm3_bulk_multi_k`), which
    computes the k-independent δ⁽²⁾ prefix once and shares the
    transcendental tables across the sweep while producing per-k results
    bitwise identical to independent
    ``approximate_fractional_mds_unknown_delta`` runs.  The simulated
    backend loops the per-k entry point so sweeps keep one code path.

    Returns ``{k: FractionalResult}`` for every requested k.
    """
    validate_backend(backend, supported=BACKENDS)
    if backend not in (VECTORIZED, SHARDED):
        return {
            k: approximate_fractional_mds_unknown_delta(
                graph, k=k, seed=seed, backend=backend
            )
            for k in k_values
        }

    _bulk = resolve_bulk_input(graph, backend, _bulk)
    if _bulk is not graph:
        validate_simple_graph(graph)

    true_delta = max_degree(graph)
    bulk = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
    if backend == SHARDED:
        for k in k_values:
            if k < 1:
                raise ValueError("k must be at least 1")
        driver, owns = _sharded_driver(bulk, shards, _executor)
        try:
            snapshots = driver.run_algorithm3_multi_k(tuple(k_values))
        finally:
            if owns:
                driver.close()
    else:
        snapshots = run_algorithm3_bulk_multi_k(bulk, tuple(k_values))
    return {
        k: _package_fractional(bulk, values, metrics, k, true_delta)
        for k, (values, metrics) in snapshots.items()
    }
