"""Content-addressed LRU result cache for the solve service.

Stores :class:`~repro.api.RunReport` objects under the canonical request
digests minted by :mod:`repro.service.keys`.  Because the key covers the
complete request content -- graph CSR arrays, algorithm, normalized
params, seed -- a hit is *definitionally* the same computation: the
cached report's dominating set, objective and metrics are bitwise what a
fresh ``solve`` call would produce (elapsed wall-clock aside), which is
exactly what ``benchmarks/bench_service_load.py`` gates.

Eviction is plain LRU over a bounded entry count.  RunReports are a few
kilobytes of Python objects plus the dominating set itself, so the
default capacity keeps the cache comfortably in memory even for
``n = 20 000`` results; services holding very large sets can size it
down (or up) per instance.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.api import RunReport


@dataclass
class CacheStats:
    """Mutable hit/miss/eviction counters of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    report: RunReport
    hits: int = field(default=0)


class ResultCache:
    """Bounded LRU mapping of request digests to :class:`RunReport`.

    Not thread-safe by design: the service accesses it exclusively from
    the event loop thread (worker threads hand results back to the loop
    before they are inserted), so no locking is needed.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> RunReport | None:
        """The cached report for ``key``, or ``None`` (counts hit/miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.stats.hits += 1
        return entry.report

    def peek(self, key: str) -> RunReport | None:
        """Like :meth:`get` but without touching recency or counters."""
        entry = self._entries.get(key)
        return entry.report if entry is not None else None

    def put(self, key: str, report: RunReport) -> None:
        """Insert (or refresh) one report, evicting LRU entries as needed."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key].report = report
        else:
            self._entries[key] = _Entry(report)
        self.stats.puts += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def keys(self) -> tuple[str, ...]:
        """Current keys, least- to most-recently used."""
        return tuple(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()
