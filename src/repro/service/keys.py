"""Canonical content hashing for solve requests.

The async solve service (:mod:`repro.service.server`) is content
addressed: two requests naming the *same* computation -- the same
communication graph, algorithm, parameters and seed -- must produce the
same cache key, no matter how the caller spelled them.  Three layers of
canonicalization make that true:

* **Graphs** hash through their CSR form.  :class:`~repro.simulator.bulk.
  BulkGraph` stores nodes sorted and every adjacency row ascending, so a
  networkx graph, a ``BulkGraph.from_graph`` conversion, and a
  ``BulkGraph.from_edges`` construction of the same edge set all share
  one ``(indptr, col, nodes)`` triple -- :func:`graph_fingerprint`
  digests exactly those arrays.
* **Parameters** normalize through :func:`repro.api.normalized_params`:
  defaults filled in, enum spellings collapsed, keys sorted.  A request
  that leaves ``variant`` implicit hashes equal to one that spells out
  ``variant=FractionalVariant.UNKNOWN_DELTA``.
* **Values** serialize through :func:`canonical_token`, a deterministic,
  repr-stable encoding covering the scalar/enum/mapping/sequence/
  dataclass values that appear in solve parameters (notably
  :class:`~repro.simulator.fault_schedule.FaultSpec` scenarios).

The execution *backend* is deliberately not part of the key: the
repository's core invariant -- gated by the twin-equivalence benchmarks
in CI -- is that every backend produces bitwise-identical results for a
given request, so a result computed on the vectorized engine may serve a
request that would have resolved to the sharded one.  (``shards`` *is* an
algorithm parameter and does participate, conservatively: it never
changes the result, only the engine layout, but keeping it costs one
cache slot, not correctness.)
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Mapping

import networkx as nx

from repro.api import AlgorithmSpec, get_spec, normalized_params
from repro.simulator.bulk import BulkGraph

#: Version tag mixed into every digest so a future change to the key
#: layout can never collide with keys minted by an older layout.
_KEY_VERSION = b"repro-service-key-v1"


def graph_fingerprint(graph: nx.Graph | BulkGraph) -> str:
    """Hex digest of the graph's canonical CSR content.

    Equal graphs -- same node identifiers, same edge set -- fingerprint
    equal regardless of how they were built: networkx graphs convert
    through :meth:`BulkGraph.from_graph` (which sorts nodes and adjacency
    rows), and :class:`BulkGraph` inputs hash their arrays directly, so
    ``from_edges``/``from_graph`` twins coincide.  Node identifiers
    participate via their ``repr`` (stable for the int/str/tuple labels
    the generators produce).
    """
    bulk = graph if isinstance(graph, BulkGraph) else BulkGraph.from_graph(graph)
    digest = hashlib.sha256()
    digest.update(_KEY_VERSION)
    digest.update(b"|graph|")
    digest.update(str(bulk.n).encode())
    digest.update(b"|")
    digest.update(bulk.indptr.tobytes())
    digest.update(b"|")
    digest.update(bulk.col.tobytes())
    digest.update(b"|")
    # Integer labels 0..n-1 (the direct-to-CSR generators' default) are
    # the common case; skip materialising their repr.
    if bulk.nodes != tuple(range(bulk.n)):
        digest.update(repr(bulk.nodes).encode())
    return digest.hexdigest()


def canonical_token(value: Any) -> str:
    """A deterministic string encoding of one parameter value.

    Handles the value shapes that occur in solve parameters: scalars,
    ``None``, mappings (key-sorted), sequences, and dataclasses such as
    :class:`~repro.simulator.fault_schedule.FaultSpec` (encoded as class
    name + field items, so two equal specs tokenize equal and two
    different seeds never share a token).  Unknown objects fall back to
    ``repr``, which is stable for everything the registry accepts.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{field.name}={canonical_token(getattr(value, field.name))}"
            for field in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    if isinstance(value, Mapping):
        items = ",".join(
            f"{canonical_token(key)}:{canonical_token(value[key])}"
            for key in sorted(value, key=repr)
        )
        return "{" + items + "}"
    if isinstance(value, frozenset):
        return "{" + ",".join(sorted(canonical_token(item) for item in value)) + "}"
    if isinstance(value, (list, tuple)):
        return "(" + ",".join(canonical_token(item) for item in value) + ")"
    if isinstance(value, float) and value.is_integer():
        # 2.0 and 2 name the same parameter value everywhere in the
        # library (k, probabilities at the endpoints, weights).
        return repr(int(value))
    return repr(value)


def params_token(
    algorithm: str | AlgorithmSpec, params: Mapping[str, Any] | None = None
) -> str:
    """Canonical token of one request's *complete* parameter dict.

    Normalizes through :func:`repro.api.normalized_params` (strict: a
    parameter the algorithm does not accept raises ``TypeError`` rather
    than silently hashing into nothing).
    """
    return canonical_token(normalized_params(algorithm, params))


def cache_key(
    algorithm: str | AlgorithmSpec,
    graph: nx.Graph | BulkGraph,
    seed: int | None = None,
    params: Mapping[str, Any] | None = None,
    graph_hash: str | None = None,
) -> str:
    """The content-addressed cache key of one solve request.

    A hex digest of ``(graph CSR content, algorithm name, normalized
    params, seed)``.  Callers that already hold the graph's fingerprint
    (the service hashes each distinct graph once) pass it via
    ``graph_hash`` to skip re-digesting the arrays.
    """
    spec = get_spec(algorithm)
    if graph_hash is None:
        graph_hash = graph_fingerprint(graph)
    digest = hashlib.sha256()
    digest.update(_KEY_VERSION)
    digest.update(b"|request|")
    digest.update(graph_hash.encode())
    digest.update(b"|")
    digest.update(spec.name.encode())
    digest.update(b"|")
    digest.update(params_token(spec, params).encode())
    digest.update(b"|")
    digest.update(repr(seed).encode())
    return digest.hexdigest()


def coalesce_key(
    algorithm: str | AlgorithmSpec,
    graph: nx.Graph | BulkGraph,
    seed: int | None = None,
    params: Mapping[str, Any] | None = None,
    backend: str = "auto",
    graph_hash: str | None = None,
) -> str | None:
    """The batching key under which queued requests may share one engine run.

    Requests with equal coalesce keys differ *only* in their locality
    parameter ``k``: same graph, same seed, same remaining parameters,
    same requested backend.  The scheduler runs one multi-k snapshot
    execution for such a group -- per-k results are bitwise equal to
    independent runs (the PR-3 snapshot-engine invariant) -- and answers
    every member from it.

    Returns ``None`` when the request is not coalescible: the algorithm
    has no multi-k engine, ``k`` was left to the Θ(log Δ) default, the
    run records traces (single-run artifacts), or it injects faults (the
    fault schedules are sized to one run's round budget).
    """
    spec = get_spec(algorithm)
    if not spec.supports_multi_k:
        return None
    normalized = normalized_params(spec, params)
    if not isinstance(normalized.get("k"), int):
        return None
    if normalized.get("collect_trace") or normalized.get("faults") is not None:
        return None
    rest = {name: value for name, value in normalized.items() if name != "k"}
    if graph_hash is None:
        graph_hash = graph_fingerprint(graph)
    digest = hashlib.sha256()
    digest.update(_KEY_VERSION)
    digest.update(b"|coalesce|")
    digest.update(graph_hash.encode())
    digest.update(b"|")
    digest.update(spec.name.encode())
    digest.update(b"|")
    digest.update(canonical_token(rest).encode())
    digest.update(b"|")
    digest.update(repr(seed).encode())
    digest.update(b"|")
    digest.update(backend.encode())
    return digest.hexdigest()
