"""Asyncio request queue with backpressure and batched scheduling.

The :class:`BatchScheduler` is the execution half of the solve service:
requests enter a bounded :class:`asyncio.Queue` (submission *awaits* when
the queue is full -- that is the backpressure contract), a single
dispatcher task drains them in adaptive batches, and each batch executes
on a thread-pool executor so the event loop never blocks on a solve --
including heavy requests that fan out further into the sharded
multiprocess driver from inside their worker thread.

Batching exists for one reason: **coalescing**.  Queued requests that
share a :func:`~repro.service.keys.coalesce_key` -- same graph content,
seed, and parameters, differing only in the locality parameter ``k`` --
are answered from *one* multi-k snapshot execution
(:func:`repro.core.fractional.approximate_fractional_mds_multi_k` /
:func:`repro.core.fractional_unknown.
approximate_fractional_mds_unknown_delta_multi_k`): the fractional phase
runs once for the whole group and each member's solution is rounded
under its own (shared) seed.  The snapshot engine's invariant -- per-k
results bitwise equal to independent runs, pinned by
``tests/core/test_multi_k_snapshots.py`` and re-gated end-to-end by
``benchmarks/bench_service_load.py`` -- is what makes this a pure
throughput optimisation: callers cannot observe whether their request
was coalesced.

Cancellation is cooperative: a request whose future is already done
(timed out and abandoned by every waiter, see
:meth:`repro.service.server.SolveService.solve`) is skipped at dispatch
time instead of burning an executor slot.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Sequence

from repro.api import (
    RunReport,
    SHARDED,
    VECTORIZED,
    get_spec,
    normalized_params,
    resolve_backend,
    solve,
)
from repro.core.fractional import approximate_fractional_mds_multi_k
from repro.core.fractional_unknown import (
    approximate_fractional_mds_unknown_delta_multi_k,
)
from repro.core.kuhn_wattenhofer import FractionalVariant, PipelineResult
from repro.core.rounding import (
    RoundingRule,
    round_fractional_solution,
    solution_feasibility,
)
from repro.domset.validation import is_dominating_set
from repro.graphs.utils import max_degree
from repro.simulator.bulk import BulkGraph

_request_ids = itertools.count()


class ServiceClosedError(RuntimeError):
    """Raised when submitting to a scheduler/service that is shutting down."""


@dataclass
class ServiceRequest:
    """One queued solve request and its completion future."""

    algorithm: str
    graph: Any
    backend: str
    seed: int | None
    params: dict[str, Any]
    key: str
    coalesce_key: str | None
    future: asyncio.Future
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: Waiters currently awaiting the future; when it drops to zero before
    #: execution starts the scheduler skips the request entirely.  The
    #: service tracks this per waiter; direct scheduler users keep the
    #: default of one waiter (never skipped).
    waiters: int = 1
    submitted_at: float = field(default_factory=time.perf_counter)

    @property
    def abandoned(self) -> bool:
        return self.waiters <= 0

    def resolve(self, report: RunReport) -> None:
        if not self.future.done():
            self.future.set_result(report)

    def fail(self, error: BaseException) -> None:
        if not self.future.done():
            self.future.set_exception(error)


@dataclass
class SchedulerStats:
    """Counters describing how the dispatcher turned requests into runs."""

    batches: int = 0
    solo_requests: int = 0
    coalesced_batches: int = 0
    coalesced_requests: int = 0
    failures: int = 0
    skipped: int = 0

    @property
    def executed_requests(self) -> int:
        return self.solo_requests + self.coalesced_requests

    @property
    def engine_executions(self) -> int:
        """Underlying engine runs paid (a coalesced batch counts once)."""
        return self.solo_requests + self.coalesced_batches

    @property
    def coalescing_factor(self) -> float:
        """Requests served per engine execution (1.0 = no coalescing won)."""
        if not self.engine_executions:
            return 1.0
        return self.executed_requests / self.engine_executions

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "solo_requests": self.solo_requests,
            "coalesced_batches": self.coalesced_batches,
            "coalesced_requests": self.coalesced_requests,
            "engine_executions": self.engine_executions,
            "coalescing_factor": self.coalescing_factor,
            "failures": self.failures,
            "skipped": self.skipped,
        }


def _coalesced_pipeline_reports(
    requests: Sequence[ServiceRequest],
) -> list[RunReport]:
    """Serve a coalesced group from one multi-k snapshot execution.

    Runs in a worker thread.  Mirrors
    :func:`repro.core.kuhn_wattenhofer.kuhn_wattenhofer_dominating_set`
    phase for phase -- one fractional execution covering every requested
    k, then one rounding per distinct k under the shared seed, the same
    feasibility/validation checks in the same order -- so each returned
    :class:`RunReport` is bitwise what an independent ``solve`` call
    would have produced (wall-clock aside).
    """
    base = requests[0]
    spec = get_spec(base.algorithm)
    graph = base.graph
    params = normalized_params(spec, base.params)
    variant = FractionalVariant(params.get("variant", FractionalVariant.UNKNOWN_DELTA))
    rule = RoundingRule(params.get("rounding_rule", RoundingRule.LOG))
    shards = params.get("shards")
    backend = resolve_backend(
        spec, graph, backend=base.backend, shards=shards
    )
    k_values = sorted({request.params["k"] for request in requests})

    started = time.perf_counter()
    is_bulk = isinstance(graph, BulkGraph)
    bulk = (
        graph
        if is_bulk
        else (BulkGraph.from_graph(graph) if backend in (VECTORIZED, SHARDED) else None)
    )
    delta = max_degree(graph)
    multi_k = (
        approximate_fractional_mds_multi_k
        if variant is FractionalVariant.KNOWN_DELTA
        else approximate_fractional_mds_unknown_delta_multi_k
    )
    executor = None
    try:
        if backend == SHARDED:
            from repro.simulator.sharded import ShardedDriver

            executor = ShardedDriver(bulk, shards)
        fractional_by_k = multi_k(
            graph,
            k_values,
            seed=base.seed,
            backend=backend,
            _bulk=bulk,
            _executor=executor,
        )
        results: dict[int, PipelineResult] = {}
        for k in k_values:
            fractional = fractional_by_k[k]
            feasible, _ = solution_feasibility(graph, fractional.x, _bulk=bulk)
            if not feasible:
                raise RuntimeError(
                    "fractional phase returned an infeasible LP solution; "
                    "this indicates a bug in the distributed algorithm"
                )
            rounding = round_fractional_solution(
                graph,
                fractional.x,
                seed=base.seed,
                rule=rule,
                require_feasible=False,
                backend=backend,
                _bulk=bulk,
                _executor=executor,
            )
            if not is_dominating_set(graph, rounding.dominating_set):
                raise RuntimeError(
                    "rounding phase returned a non-dominating set; "
                    "this indicates a bug in Algorithm 1's fallback step"
                )
            results[k] = PipelineResult(
                dominating_set=rounding.dominating_set,
                fractional=fractional,
                rounding=rounding,
                total_rounds=fractional.rounds + rounding.rounds,
                total_messages=fractional.metrics.total_messages
                + rounding.metrics.total_messages,
                max_message_bits=max(
                    fractional.metrics.max_message_bits,
                    rounding.metrics.max_message_bits,
                ),
                k=k,
                max_degree=delta,
                repair=None,
            )
    finally:
        if executor is not None:
            executor.close()
    elapsed = time.perf_counter() - started

    reports = []
    for request in requests:
        result = results[request.params["k"]]
        report_params = dict(params)
        report_params["k"] = result.k
        reports.append(
            RunReport(
                algorithm=spec.name,
                backend=backend,
                dominating_set=result.dominating_set,
                objective=float(result.size),
                rounds=result.total_rounds,
                messages=result.total_messages,
                max_message_bits=result.max_message_bits,
                params=report_params,
                seed=request.seed,
                elapsed_s=elapsed,
                raw=result,
            )
        )
    return reports


def _solve_request(request: ServiceRequest) -> RunReport:
    """Run one request through the plain :func:`repro.api.solve` façade."""
    return solve(
        request.algorithm,
        request.graph,
        backend=request.backend,
        seed=request.seed,
        **request.params,
    )


class BatchScheduler:
    """Bounded request queue + adaptive batching dispatcher.

    Parameters
    ----------
    max_pending:
        Queue capacity; :meth:`submit` awaits (backpressure) once this
        many requests are queued and undispatched.
    max_batch:
        Largest batch the dispatcher drains in one sweep.  Coalescing
        happens *within* a batch, so larger values give bursts more
        opportunity to share engine runs.
    workers:
        Thread-pool width for executing solves (default: 2).  Heavy
        requests that resolve to the sharded engine spawn their worker
        processes from inside their thread, so a small pool suffices.
    max_concurrent_batches:
        In-flight batch cap (default: ``workers``); further batches wait,
        which in turn keeps the queue filling and coalescing effective.
    """

    def __init__(
        self,
        max_pending: int = 256,
        max_batch: int = 64,
        workers: int = 2,
        max_concurrent_batches: int | None = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.max_batch = max_batch
        self._queue: asyncio.Queue[ServiceRequest] = asyncio.Queue(maxsize=max_pending)
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )
        self._slot_count = max_concurrent_batches or workers
        self._slots: asyncio.Semaphore | None = None
        self._inflight: set[asyncio.Task] = set()
        self._dispatcher: asyncio.Task | None = None
        self._dispatch_error: BaseException | None = None
        self._accepting = False
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Start the dispatcher task (idempotent)."""
        if self._dispatcher is not None:
            return
        self._slots = asyncio.Semaphore(self._slot_count)
        self._accepting = True
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-service-dispatcher"
        )

    async def submit(self, request: ServiceRequest) -> None:
        """Enqueue one request; awaits when the queue is at capacity."""
        if not self._accepting:
            raise ServiceClosedError("scheduler is not accepting requests")
        await self._queue.put(request)

    async def drain(self) -> None:
        """Wait until every queued and in-flight request has completed."""
        await self._queue.join()
        while self._inflight:
            await asyncio.gather(*tuple(self._inflight), return_exceptions=True)
        if self._dispatch_error is not None:
            error, self._dispatch_error = self._dispatch_error, None
            raise error

    async def close(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain, then tear the dispatcher down."""
        self._accepting = False
        if drain and self._dispatcher is not None:
            await self.drain()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for task in tuple(self._inflight):
            task.cancel()
        self._inflight.clear()
        self._executor.shutdown(wait=True)

    @property
    def pending(self) -> int:
        """Queued-but-undispatched request count."""
        return self._queue.qsize()

    # ------------------------------------------------------------------ #
    # Dispatch                                                           #
    # ------------------------------------------------------------------ #

    async def _dispatch_loop(self) -> None:
        while True:
            request = await self._queue.get()
            batch = [request]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            # The slot gate keeps at most max_concurrent_batches executing;
            # while one executes, later arrivals pile up in the queue and
            # form larger (more coalescible) batches.
            await self._slots.acquire()
            task = asyncio.create_task(self._run_batch(batch))
            self._inflight.add(task)
            task.add_done_callback(self._batch_finished)

    def _batch_finished(self, task: asyncio.Task) -> None:
        self._inflight.discard(task)
        self._slots.release()
        if not task.cancelled() and task.exception() is not None:
            # _run_batch failures land on request futures; anything that
            # escapes is a dispatcher bug.  Remember it so drain()/close()
            # re-raise instead of hanging callers silently.
            self._dispatch_error = task.exception()

    async def _run_batch(self, batch: list[ServiceRequest]) -> None:
        self.stats.batches += 1
        try:
            runnable: list[ServiceRequest] = []
            for request in batch:
                if request.future.done() or request.abandoned:
                    self.stats.skipped += 1
                    request.future.cancel()
                else:
                    runnable.append(request)
            groups: dict[str, list[ServiceRequest]] = {}
            solos: list[ServiceRequest] = []
            for request in runnable:
                if request.coalesce_key is None:
                    solos.append(request)
                else:
                    groups.setdefault(request.coalesce_key, []).append(request)
            jobs = []
            for group in groups.values():
                if len(group) >= 2:
                    jobs.append(self._run_coalesced(group))
                else:
                    solos.extend(group)
            jobs.extend(self._run_solo(request) for request in solos)
            if jobs:
                await asyncio.gather(*jobs)
        finally:
            for _ in batch:
                self._queue.task_done()

    async def _run_solo(self, request: ServiceRequest) -> None:
        loop = asyncio.get_running_loop()
        try:
            report = await loop.run_in_executor(
                self._executor, partial(_solve_request, request)
            )
        except Exception as error:  # noqa: BLE001 -- handed to the caller
            self.stats.failures += 1
            request.fail(error)
        else:
            self.stats.solo_requests += 1
            request.resolve(report)

    async def _run_coalesced(self, group: list[ServiceRequest]) -> None:
        loop = asyncio.get_running_loop()
        try:
            reports = await loop.run_in_executor(
                self._executor, partial(_coalesced_pipeline_reports, group)
            )
        except Exception as error:  # noqa: BLE001 -- handed to the callers
            self.stats.failures += len(group)
            for request in group:
                request.fail(error)
        else:
            self.stats.coalesced_batches += 1
            self.stats.coalesced_requests += len(group)
            for request, report in zip(group, reports):
                request.resolve(report)
