"""Deterministic workload generation and load-driving for the service.

One workload builder feeds three consumers -- ``repro loadgen`` on the
CLI, ``benchmarks/bench_service_load.py``, and
``examples/service_demo.py`` -- so their request mixes agree and their
numbers are comparable.  A workload is a seeded, shuffled burst of
request dicts (the :meth:`SolveService.solve_many` shape) mixing:

* multi-k sweeps over a handful of shared graphs (the coalescible core
  of the mix -- same graph + seed, varying ``k``);
* exact repeats of earlier requests (cache-hit fodder);
* optional fault/repair scenario requests (exercising passthrough; never
  coalesced or conflated with clean runs).

:func:`run_load` drives a workload through a fresh service and reports
throughput, latency percentiles, cache hit rate, coalescing factor, and
-- the part CI gates -- *objective parity*: every distinct request in
the mix is re-run through plain :func:`repro.api.solve` and its
dominating set and objective must match the service's answer bitwise.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Mapping, Sequence

from repro.api import solve
from repro.graphs.generators import erdos_renyi_graph, random_regular_graph
from repro.service.server import SolveService
from repro.simulator.fault_schedule import FaultSpec

__all__ = ["build_workload", "run_load", "verify_parity"]


def build_workload(
    n: int = 96,
    graphs: int = 3,
    k_values: Sequence[int] = (1, 2, 3),
    repeats: int = 2,
    fault_requests: int = 2,
    seed: int = 0,
) -> list[dict[str, Any]]:
    """Build a seeded burst of mixed solve requests.

    Parameters
    ----------
    n:
        Node count of each generated graph.
    graphs:
        Number of distinct graphs (alternating Erdős–Rényi and random
        regular so both sparse and structured instances appear).
    k_values:
        The ``k`` sweep issued against every graph (the coalescible
        portion of the mix).
    repeats:
        How many times the whole distinct-request block is re-issued
        verbatim (cache-hit fodder; ``repeats=2`` means every distinct
        request appears three times in total).
    fault_requests:
        Number of fault/repair scenario requests appended per graph.
    seed:
        Root seed: graph topology, solve seeds, fault scenarios and the
        final shuffle all derive from it.
    """
    if graphs < 1:
        raise ValueError("graphs must be at least 1")
    if repeats < 0:
        raise ValueError("repeats must be non-negative")
    rng = random.Random(seed)
    instances = []
    for index in range(graphs):
        graph_seed = rng.randrange(2**31)
        if index % 2 == 0:
            graph = erdos_renyi_graph(n, p=min(1.0, 4.0 / n), seed=graph_seed)
        else:
            degree = 4 if (n * 4) % 2 == 0 else 3
            graph = random_regular_graph(n, degree=degree, seed=graph_seed)
        instances.append((graph, rng.randrange(2**31)))

    distinct: list[dict[str, Any]] = []
    for graph, solve_seed in instances:
        for k in k_values:
            distinct.append(
                {
                    "algorithm": "kuhn-wattenhofer",
                    "graph": graph,
                    "seed": solve_seed,
                    "params": {"k": int(k)},
                }
            )
        for _ in range(fault_requests):
            distinct.append(
                {
                    "algorithm": "kuhn-wattenhofer",
                    "graph": graph,
                    "seed": solve_seed,
                    "params": {
                        "k": int(k_values[0]),
                        "faults": FaultSpec(
                            loss_probability=0.05,
                            crash_probability=0.02,
                            seed=rng.randrange(2**31),
                        ),
                        "repair": True,
                    },
                }
            )

    workload = list(distinct)
    for _ in range(repeats):
        workload.extend(dict(request) for request in distinct)
    rng.shuffle(workload)
    return workload


def _request_identity(request: Mapping[str, Any]) -> tuple:
    """Hashable identity of one request dict (graphs compare by object)."""
    params = request.get("params", {})
    return (
        request["algorithm"],
        id(request["graph"]),
        request.get("seed"),
        tuple(sorted((name, repr(value)) for name, value in params.items())),
    )


def verify_parity(
    workload: Sequence[Mapping[str, Any]],
    reports: Sequence[Any],
) -> dict[str, Any]:
    """Re-run every *distinct* request directly and compare bitwise.

    Returns ``{"objective_match": bool, "checked": int, "mismatches":
    [...]}``.  A mismatch records the request params and both answers;
    CI fails the build on any ``objective_match: false``.
    """
    seen: dict[tuple, Any] = {}
    mismatches: list[dict[str, Any]] = []
    for request, report in zip(workload, reports):
        identity = _request_identity(request)
        if identity in seen:
            # Same request must yield the same report content every time
            # it is served (cache hits included).
            earlier = seen[identity]
            if (
                earlier.dominating_set != report.dominating_set
                or earlier.objective != report.objective
            ):
                mismatches.append(
                    {
                        "kind": "served-twice-differently",
                        "params": {k: repr(v) for k, v in request.get("params", {}).items()},
                        "seed": request.get("seed"),
                    }
                )
            continue
        seen[identity] = report
        direct = solve(
            request["algorithm"],
            request["graph"],
            backend=request.get("backend", "auto"),
            seed=request.get("seed"),
            **request.get("params", {}),
        )
        if (
            direct.dominating_set != report.dominating_set
            or direct.objective != report.objective
            or direct.rounds != report.rounds
            or direct.messages != report.messages
        ):
            mismatches.append(
                {
                    "kind": "service-vs-direct",
                    "params": {k: repr(v) for k, v in request.get("params", {}).items()},
                    "seed": request.get("seed"),
                    "service_objective": report.objective,
                    "direct_objective": direct.objective,
                }
            )
    return {
        "objective_match": not mismatches,
        "checked": len(seen),
        "mismatches": mismatches,
    }


async def _drive(
    workload: Sequence[Mapping[str, Any]],
    cache_entries: int,
    max_batch: int,
    workers: int,
    passes: int,
) -> tuple[list[Any], dict[str, Any], float]:
    async with SolveService(
        cache_entries=cache_entries, max_batch=max_batch, workers=workers
    ) as service:
        started = time.perf_counter()
        reports = await service.solve_many(workload)
        for _ in range(passes - 1):
            # Repeat passes land after the first has fully completed, so
            # they exercise the cache (the first pass's identical twins
            # instead join in flight).
            reports = await service.solve_many(workload)
        elapsed = time.perf_counter() - started
        stats = service.stats()
    return reports, stats, elapsed


def run_load(
    workload: Sequence[Mapping[str, Any]] | None = None,
    cache_entries: int = 1024,
    max_batch: int = 64,
    workers: int = 2,
    passes: int = 1,
    verify: bool = True,
    **workload_kwargs: Any,
) -> dict[str, Any]:
    """Drive a workload through a fresh service; return the load report.

    With no explicit ``workload``, builds one from ``workload_kwargs``
    via :func:`build_workload`.  ``passes`` re-issues the whole burst
    that many times against the same service -- passes after the first
    are answered from the cache, which is how the benchmark produces a
    non-trivial hit rate.  The report carries ``requests``,
    ``elapsed_s``, ``requests_per_s``, ``latency`` (p50/p99/...),
    ``cache`` and ``scheduler`` stats, plus ``parity`` when ``verify``
    is on (the CI-gated bitwise comparison against direct solves).
    """
    if passes < 1:
        raise ValueError("passes must be at least 1")
    if workload is None:
        workload = build_workload(**workload_kwargs)
    elif workload_kwargs:
        raise TypeError("pass either a prebuilt workload or builder kwargs, not both")
    reports, stats, elapsed = asyncio.run(
        _drive(workload, cache_entries, max_batch, workers, passes)
    )
    total = len(workload) * passes
    result: dict[str, Any] = {
        "requests": total,
        "distinct_requests": len(workload),
        "passes": passes,
        "elapsed_s": elapsed,
        "requests_per_s": total / elapsed if elapsed > 0 else None,
        "latency": stats["latency"],
        "cache": stats["cache"],
        "scheduler": stats["scheduler"],
        "inflight_joins": stats["inflight_joins"],
        "coalescing_factor": stats["scheduler"]["coalescing_factor"],
        "cache_hit_rate": stats["cache"]["hit_rate"],
    }
    if verify:
        result["parity"] = verify_parity(workload, reports)
        result["objective_match"] = result["parity"]["objective_match"]
    return result
