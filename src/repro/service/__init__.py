"""Async solve service: request queue, result cache, batched scheduling.

The service layer turns :func:`repro.api.solve` into a long-lived,
shared front end.  Requests are content addressed (:mod:`.keys`),
answered from an LRU cache when repeated (:mod:`.cache`), deduplicated
while in flight, and otherwise queued behind a batching scheduler
(:mod:`.scheduler`) that coalesces same-graph multi-k requests onto the
multi-k snapshot engine -- one fractional execution serving many
callers, bitwise equal to independent solves.  :class:`.SolveService`
is the facade; :mod:`.loadgen` builds the reproducible mixed workloads
that the CLI, the load benchmark, and the demo example share.
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.keys import (
    cache_key,
    canonical_token,
    coalesce_key,
    graph_fingerprint,
    params_token,
)
from repro.service.loadgen import build_workload, run_load, verify_parity
from repro.service.scheduler import (
    BatchScheduler,
    SchedulerStats,
    ServiceClosedError,
    ServiceRequest,
)
from repro.service.server import SolveService

__all__ = [
    "BatchScheduler",
    "CacheStats",
    "ResultCache",
    "SchedulerStats",
    "ServiceClosedError",
    "ServiceRequest",
    "SolveService",
    "build_workload",
    "cache_key",
    "canonical_token",
    "coalesce_key",
    "graph_fingerprint",
    "params_token",
    "run_load",
    "verify_parity",
]
