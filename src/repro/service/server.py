"""The :class:`SolveService` facade: submit / await / stats / drain.

Composes the service layer's three parts into one object:

* :mod:`repro.service.keys` mints a content-addressed key per request
  (graph CSR content + algorithm + normalized params + seed);
* :class:`repro.service.cache.ResultCache` answers repeats instantly and
  LRU-bounds memory;
* :class:`repro.service.scheduler.BatchScheduler` queues misses with
  backpressure, coalesces same-graph multi-k groups onto the snapshot
  engine, and executes on a thread pool (heavy requests fan out further
  into the sharded multiprocess driver from their worker thread).

Identical requests *in flight* are deduplicated too: a second submission
of a key that is still executing attaches to the first one's future
instead of queueing a duplicate computation.  Per-request timeouts are
waiter-local -- a caller that stops waiting abandons its claim, and only
when every claim on a not-yet-started request is abandoned does the
scheduler skip the work.

Typical use::

    async with SolveService() as service:
        report = await service.solve("kuhn-wattenhofer", graph, k=2, seed=0)
        reports = await service.solve_many([
            {"algorithm": "kuhn-wattenhofer", "graph": graph, "seed": 0,
             "params": {"k": k}}
            for k in (1, 2, 3, 4)
        ])
        service.stats()

``async with`` (or an explicit :meth:`close`) drains gracefully: queued
and in-flight requests complete, then the dispatcher and executor shut
down.  Fault/repair scenarios pass straight through: ``params`` may carry
``faults=FaultSpec(...)`` and ``repair=`` exactly as
:func:`repro.api.solve` accepts them, and the resulting reports keep
their ``repair`` / ``fault_summaries`` accessors.
"""

from __future__ import annotations

import asyncio
import time
import weakref
from typing import Any, Mapping, Sequence

import networkx as nx

from repro.analysis.stats import latency_summary
from repro.api import AUTO, RunReport, get_spec
from repro.service.cache import ResultCache
from repro.service.keys import cache_key, coalesce_key, graph_fingerprint
from repro.service.scheduler import (
    BatchScheduler,
    ServiceClosedError,
    ServiceRequest,
)
from repro.simulator.bulk import BulkGraph

__all__ = ["SolveService", "ServiceClosedError"]


class SolveService:
    """Async, cached, batch-scheduled front end over :func:`repro.api.solve`.

    Parameters
    ----------
    cache_entries:
        Capacity of the content-addressed LRU result cache.
    max_pending:
        Scheduler queue bound; submissions await once it is full
        (backpressure).
    max_batch:
        Largest batch the dispatcher coalesces over in one sweep.
    workers:
        Executor thread count (each sharded solve spawns its worker
        *processes* from inside its thread).
    default_timeout:
        Per-request await timeout in seconds (``None``: wait forever);
        individual calls may override.
    """

    def __init__(
        self,
        cache_entries: int = 1024,
        max_pending: int = 256,
        max_batch: int = 64,
        workers: int = 2,
        default_timeout: float | None = None,
    ) -> None:
        self.cache = ResultCache(max_entries=cache_entries)
        self.scheduler = BatchScheduler(
            max_pending=max_pending, max_batch=max_batch, workers=workers
        )
        self.default_timeout = default_timeout
        self._pending: dict[str, ServiceRequest] = {}
        self._graph_hashes: "weakref.WeakKeyDictionary[Any, str]" = (
            weakref.WeakKeyDictionary()
        )
        self._started = False
        self._closed = False
        self._requests = 0
        self._completed = 0
        self._failed = 0
        self._timeouts = 0
        self._inflight_joins = 0
        self._latencies_s: list[float] = []

    # ------------------------------------------------------------------ #
    # Lifecycle                                                          #
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Start the scheduler's dispatcher (idempotent)."""
        if self._closed:
            raise ServiceClosedError("service has been closed")
        await self.scheduler.start()
        self._started = True

    async def close(self, drain: bool = True) -> None:
        """Stop accepting requests, drain gracefully, release resources.

        With ``drain=True`` (the default) every queued and in-flight
        request runs to completion -- submitted work is never dropped on
        shutdown; with ``drain=False`` unstarted requests are abandoned.
        """
        if self._closed:
            return
        self._closed = True
        await self.scheduler.close(drain=drain)

    async def drain(self) -> None:
        """Wait for every queued and in-flight request to complete."""
        await self.scheduler.drain()

    async def __aenter__(self) -> "SolveService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ #
    # Submission                                                         #
    # ------------------------------------------------------------------ #

    def _graph_hash(self, graph: nx.Graph | BulkGraph) -> str:
        """Memoized :func:`graph_fingerprint` (one CSR digest per object)."""
        try:
            cached = self._graph_hashes.get(graph)
        except TypeError:  # unhashable/weakref-less graph type
            return graph_fingerprint(graph)
        if cached is None:
            cached = graph_fingerprint(graph)
            try:
                self._graph_hashes[graph] = cached
            except TypeError:
                pass
        return cached

    async def _begin(
        self,
        algorithm: str,
        graph: nx.Graph | BulkGraph,
        backend: str,
        seed: int | None,
        params: Mapping[str, Any],
    ) -> tuple:
        """Resolve one submission to a hit, a join, or a fresh request.

        Awaits only on queue backpressure, so a caller enqueueing a burst
        (:meth:`solve_many`) keeps the whole burst inside one batching
        window whenever the queue has capacity.
        """
        if self._closed:
            raise ServiceClosedError("service has been closed")
        if not self._started:
            await self.start()
        started = time.perf_counter()
        self._requests += 1
        spec = get_spec(algorithm)
        params = dict(params)
        graph_hash = self._graph_hash(graph)
        key = cache_key(spec, graph, seed=seed, params=params, graph_hash=graph_hash)
        cached = self.cache.get(key)
        if cached is not None:
            return ("hit", cached, started)
        request = self._pending.get(key)
        if request is not None:
            self._inflight_joins += 1
            request.waiters += 1
            return ("wait", request, started)
        request = ServiceRequest(
            algorithm=spec.name,
            graph=graph,
            backend=backend,
            seed=seed,
            params=params,
            key=key,
            coalesce_key=coalesce_key(
                spec,
                graph,
                seed=seed,
                params=params,
                backend=backend,
                graph_hash=graph_hash,
            ),
            future=asyncio.get_running_loop().create_future(),
            waiters=1,
        )
        self._pending[key] = request
        request.future.add_done_callback(
            lambda future, key=key: self._settle(key, future)
        )
        try:
            await self.scheduler.submit(request)
        except BaseException:
            self._pending.pop(key, None)
            request.waiters -= 1
            raise
        return ("wait", request, started)

    def _settle(self, key: str, future: asyncio.Future) -> None:
        """Completion hook: publish to the cache, retire the pending slot."""
        self._pending.pop(key, None)
        if future.cancelled():
            return
        error = future.exception()  # retrieves it -- no unretrieved warnings
        if error is not None:
            self._failed += 1
            return
        self.cache.put(key, future.result())

    async def _finish(
        self, outcome: tuple, timeout: float | None
    ) -> RunReport:
        kind, payload, started = outcome
        if kind == "hit":
            self._completed += 1
            self._latencies_s.append(time.perf_counter() - started)
            return payload
        request: ServiceRequest = payload
        try:
            report = await asyncio.wait_for(
                asyncio.shield(request.future), timeout
            )
        except asyncio.TimeoutError:
            # This waiter gives up its claim; the computation itself keeps
            # running (other waiters, and the cache, still want it) unless
            # every claim is abandoned before it starts.
            request.waiters -= 1
            self._timeouts += 1
            raise
        except asyncio.CancelledError:
            request.waiters -= 1
            raise
        self._completed += 1
        self._latencies_s.append(time.perf_counter() - started)
        return report

    async def solve(
        self,
        algorithm: str,
        graph: nx.Graph | BulkGraph,
        backend: str = AUTO,
        seed: int | None = None,
        timeout: float | None = None,
        **params: Any,
    ) -> RunReport:
        """Submit one request and await its :class:`RunReport`.

        Semantics match :func:`repro.api.solve` exactly (same parameters,
        same errors, bitwise the same results -- served from the cache, a
        coalesced batch, or a fresh engine run as the scheduler decides).
        ``timeout`` (seconds; default the service's ``default_timeout``)
        bounds only this caller's wait, raising ``asyncio.TimeoutError``.
        """
        outcome = await self._begin(algorithm, graph, backend, seed, params)
        if timeout is None:
            timeout = self.default_timeout
        return await self._finish(outcome, timeout)

    async def solve_many(
        self,
        requests: Sequence[Mapping[str, Any]],
        timeout: float | None = None,
        return_exceptions: bool = False,
    ) -> list[RunReport | BaseException]:
        """Submit a burst and await all of it.

        Each request mapping carries ``algorithm``, ``graph`` and
        optionally ``backend``, ``seed`` and ``params`` (a dict of
        algorithm parameters).  The whole burst is enqueued *before* any
        result is awaited, which gives the scheduler the full window to
        coalesce same-graph multi-k groups and dedupe identical keys.
        """
        outcomes = []
        for request in requests:
            outcomes.append(
                await self._begin(
                    request["algorithm"],
                    request["graph"],
                    request.get("backend", AUTO),
                    request.get("seed"),
                    request.get("params", {}),
                )
            )
        if timeout is None:
            timeout = self.default_timeout
        return await asyncio.gather(
            *(self._finish(outcome, timeout) for outcome in outcomes),
            return_exceptions=return_exceptions,
        )

    # ------------------------------------------------------------------ #
    # Introspection                                                      #
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """One nested snapshot of service, cache and scheduler counters."""
        return {
            "requests": self._requests,
            "completed": self._completed,
            "failed": self._failed,
            "timeouts": self._timeouts,
            "inflight_joins": self._inflight_joins,
            "pending": self.scheduler.pending,
            "cache": {"entries": len(self.cache), **self.cache.stats.as_dict()},
            "scheduler": self.scheduler.stats.as_dict(),
            "latency": latency_summary(self._latencies_s),
        }
