"""Sharded MPC-style execution engine: multiprocess bulk-synchronous supersteps.

The vectorized backend (:mod:`repro.core.vectorized`) executes every
"send to all neighbours / receive" step of the paper's algorithms as one
whole-graph array operation.  This module scales that model past a single
process: the :class:`~repro.simulator.bulk.BulkGraph` vertex set is
hash-partitioned into per-shard CSR slabs, one worker process per shard,
and every exchange becomes a bulk-synchronous *superstep*:

1. each shard runs the unmodified vectorized kernel on its local slab,
2. when the kernel asks for a neighbourhood operator, the shard publishes
   its owned values into a shared-memory mailbox and reads back only the
   values of its *ghost* vertices (owned by other shards) -- the frontier
   of its slab, never the whole graph,
3. a barrier ends the superstep before anybody writes the next one.

Equivalence with the single-process vectorized backend is engineered to be
**bitwise**, regardless of shard count:

* The slab keeps every CSR row's original ascending-neighbour order, so
  :meth:`ShardSlab.neighbor_sum` accumulates each row left to right in the
  exact order :meth:`BulkGraph.neighbor_sum` does (``numpy.bincount``
  iterates sequentially) -- floating-point sums cannot drift by one ULP.
* The mailbox carries ``float64`` payloads; every value the kernels
  exchange (x-values, degrees, counts, colour flags) is either a float64
  already or an integer far below 2⁵³, so the round trip is exact.
* Each shard's :class:`~repro.simulator.bulk.BulkMetricsBuilder` accounts
  only its owned nodes; the driver merges the per-shard metrics with exact
  integer sums (messages, bits) and maxima (message size), producing the
  identical :class:`~repro.simulator.metrics.ExecutionMetrics`.

The kernels in :mod:`repro.core.vectorized` run **unchanged** on each
slab: :class:`ShardSlab` exposes the operator subset they use (``n``,
``nodes``, ``degrees``, ``neighbor_sum``, ``neighbor_count``,
``closed_max``, ``neighbor_any``) with the exchange embedded inside each
operator.  Their control flow is driven only by global parameters (k, Δ)
-- the one data-dependent branch (Algorithm 3's ``active.any()`` boost)
contains no exchange -- so all shards execute the same superstep sequence
in lockstep, including shards that own zero vertices.

**Fault injection** rides the same machinery: the faulted kernels take a
schedule view alongside the slab, and each worker re-materializes the
identical :class:`~repro.simulator.fault_schedule.FaultSchedule` from the
spec (the masks are pure functions of the seed) against the shared global
CSR, then slices it to its slab with
:meth:`~repro.simulator.fault_schedule.FaultSchedule.slab_view`.  Every
slab entry keeps its global CSR position's mask decision, so the sharded
result stays bitwise equal to the vectorized and simulated backends.

**Crash tolerance**: the driver heartbeats its workers while collecting
replies.  A dead worker aborts the superstep barrier (releasing its
peers), is respawned, and the whole command is replayed -- the kernels
are deterministic, so the replay reproduces the exact result the
uninterrupted run would have produced.  When the respawn budget is
exhausted the driver degrades gracefully: it emits a structured
:class:`ShardDegradationWarning` and re-runs the command on the
single-process vectorized backend in the parent.
"""

from __future__ import annotations

import multiprocessing
import os
import resource
import traceback
import warnings
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.simulator.bulk import BulkGraph
from repro.simulator.fault_schedule import FaultSchedule, FaultSpec
from repro.simulator.metrics import ExecutionMetrics, RoundMetrics

#: Fibonacci multiplicative-hash constants for the vertex -> shard map.
#: Deterministic across processes and Python invocations (unlike ``hash``),
#: and mixes consecutive vertex ids so grid/path locality does not leave
#: whole shards empty.
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)
_HASH_SHIFT = np.uint64(33)

#: Auto-selection never picks more workers than this.
DEFAULT_MAX_SHARDS = 8

#: Per-superstep barrier timeout.  Generous -- a single exchange at
#: n = 10⁶ takes milliseconds -- but bounded, so a crashed worker breaks
#: the barrier for everyone instead of hanging CI forever.
_BARRIER_TIMEOUT = 600.0


def available_cpu_count() -> int:
    """CPUs usable by this process (affinity-aware where the OS tells us)."""
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:  # Python >= 3.13
        return process_cpu_count() or 1
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0)) or 1
    return os.cpu_count() or 1


def resolve_shard_count(shards: int | None) -> int:
    """Validate an explicit shard count or pick a default from the host.

    ``None`` means "let the engine choose": one worker per usable CPU,
    capped at :data:`DEFAULT_MAX_SHARDS` (past ~8 shards the ghost
    boundary grows faster than the per-shard work shrinks on the suite's
    sparse graphs).
    """
    if shards is None:
        return max(1, min(available_cpu_count(), DEFAULT_MAX_SHARDS))
    shards = int(shards)
    if shards < 1:
        raise ValueError("shards must be at least 1")
    return shards


def shard_owner(n: int, shards: int) -> np.ndarray:
    """Deterministic vertex -> owning-shard assignment, as an int64 array."""
    if shards < 1:
        raise ValueError("shards must be at least 1")
    mixed = (np.arange(n, dtype=np.uint64) * _HASH_MULTIPLIER) >> _HASH_SHIFT
    return (mixed % np.uint64(shards)).astype(np.int64)


@dataclass
class ShardLayout:
    """One shard's slice of the global CSR: owner/ghost maps + local slab.

    Attributes
    ----------
    shard_id / shards:
        This shard's position in the partition.
    owned:
        Global positions of the vertices this shard owns, ascending.
    ghosts:
        Global positions of non-owned vertices adjacent to an owned one
        (the shard's frontier), ascending.
    indptr / col / row:
        The local CSR slab: one row per owned vertex (contiguous local
        indices ``0..len(owned)-1``), columns in *combined local* space --
        owned vertices keep their local index, ghosts follow at
        ``len(owned) + rank``.  Every row preserves the global CSR's
        within-row order, which is what keeps ``neighbor_sum`` bitwise
        equal to the single-process operator.
    flat:
        Global CSR positions of the slab entries, in slab order.  This is
        the alignment key for fault masks: slicing a length-m edge mask
        with ``flat`` gives each slab entry exactly the keep/drop decision
        its global CSR position drew.
    degrees:
        Owned vertices' global degrees (the slab rows are complete).
    """

    shard_id: int
    shards: int
    owned: np.ndarray
    ghosts: np.ndarray
    indptr: np.ndarray
    col: np.ndarray
    row: np.ndarray
    flat: np.ndarray
    degrees: np.ndarray

    @classmethod
    def build(
        cls, indptr: np.ndarray, col: np.ndarray, shard_id: int, shards: int
    ) -> "ShardLayout":
        """Slice the global CSR into this shard's slab (vectorized gather)."""
        n = int(indptr.size) - 1
        owner = shard_owner(n, shards)
        owned = np.flatnonzero(owner == shard_id)
        counts = (indptr[owned + 1] - indptr[owned]).astype(np.int64)
        local_indptr = np.zeros(owned.size + 1, dtype=np.int64)
        np.cumsum(counts, out=local_indptr[1:])
        total = int(local_indptr[-1])
        if total:
            flat = (
                np.repeat(indptr[owned] - local_indptr[:-1], counts)
                + np.arange(total, dtype=np.int64)
            )
            cols_global = np.asarray(col[flat], dtype=np.int64)
        else:
            flat = np.zeros(0, dtype=np.int64)
            cols_global = np.zeros(0, dtype=np.int64)
        ghosts = np.setdiff1d(cols_global, owned)
        lookup = np.full(n, -1, dtype=np.int64)
        lookup[owned] = np.arange(owned.size, dtype=np.int64)
        lookup[ghosts] = owned.size + np.arange(ghosts.size, dtype=np.int64)
        return cls(
            shard_id=shard_id,
            shards=shards,
            owned=owned,
            ghosts=ghosts,
            indptr=local_indptr,
            col=lookup[cols_global] if total else cols_global,
            row=np.repeat(np.arange(owned.size, dtype=np.int64), counts),
            flat=flat,
            degrees=counts,
        )


class ShardSlab:
    """A :class:`BulkGraph`-operator-compatible view of one shard.

    Implements exactly the operator subset the vectorized kernels use, with
    the ghost-boundary exchange embedded in each operator: publish owned
    values to the shared mailbox, barrier, read ghost values, barrier.
    Kernels therefore run on owned-length arrays without knowing they are
    sharded.  All shards must call the operators in the same order (the
    kernels' control flow guarantees this); a shard owning zero vertices
    still participates in every exchange.
    """

    def __init__(
        self,
        layout: ShardLayout,
        nodes: Sequence[Hashable],
        mail: np.ndarray,
        barrier,
    ) -> None:
        self.layout = layout
        self.n = int(layout.owned.size)
        self.nodes: tuple[Hashable, ...] = tuple(nodes)
        self.degrees = layout.degrees
        self._mail = mail
        self._barrier = barrier
        self._nonempty = np.flatnonzero(layout.degrees > 0)
        self._nonempty_starts = layout.indptr[self._nonempty]

    # ------------------------------------------------------------------ #
    # Superstep exchange                                                  #
    # ------------------------------------------------------------------ #

    def _exchange(self, values: np.ndarray) -> np.ndarray:
        """One superstep: publish owned values, read back the ghost frontier."""
        self._mail[self.layout.owned] = values
        self._barrier.wait(_BARRIER_TIMEOUT)
        ghost_values = self._mail[self.layout.ghosts].copy()
        self._barrier.wait(_BARRIER_TIMEOUT)
        return ghost_values

    def sync(self) -> None:
        """Plain barrier, for protocol steps outside the operators."""
        self._barrier.wait(_BARRIER_TIMEOUT)

    def read_mail_owned(self) -> np.ndarray:
        """Read this shard's slice of a driver-published full-length vector."""
        values = self._mail[self.layout.owned].copy()
        self.sync()
        return values

    # ------------------------------------------------------------------ #
    # Neighbourhood operators (mirroring BulkGraph bit for bit)           #
    # ------------------------------------------------------------------ #

    def neighbor_sum(
        self, values: np.ndarray, edge_mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-node open-neighbourhood sum; row order matches the global CSR.

        ``edge_mask`` (one bool per *slab* position, e.g. from a
        :class:`~repro.simulator.fault_schedule.SlabScheduleView`) drops
        masked-out entries from the accumulation, exactly as the
        whole-graph operator does for the matching global positions.
        """
        ghost_values = self._exchange(values)
        combined = np.concatenate(
            (np.asarray(values, dtype=np.float64), ghost_values)
        )
        if edge_mask is None:
            return np.bincount(
                self.layout.row,
                weights=combined[self.layout.col],
                minlength=self.n,
            )
        edge_mask = np.asarray(edge_mask, dtype=bool)
        return np.bincount(
            self.layout.row[edge_mask],
            weights=combined[self.layout.col[edge_mask]],
            minlength=self.n,
        )

    def neighbor_count(
        self, flags: np.ndarray, edge_mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-node count of set flags over the open neighbourhood."""
        ghost_flags = self._exchange(flags)
        combined = np.concatenate(
            (np.asarray(flags, dtype=bool), ghost_flags.astype(bool))
        )
        mask = combined[self.layout.col]
        if edge_mask is not None:
            mask = mask & np.asarray(edge_mask, dtype=bool)
        return np.bincount(self.layout.row[mask], minlength=self.n)

    def closed_max(
        self,
        values: np.ndarray,
        senders: np.ndarray | None = None,
        edge_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-node closed-neighbourhood maximum (no sender masking).

        ``edge_mask`` suppresses individual slab entries (dropped
        messages); the node's own value always participates, matching
        :meth:`BulkGraph.closed_max`.
        """
        if senders is not None:
            raise NotImplementedError(
                "sender-masked closed_max is not used by the sharded kernels"
            )
        values = np.asarray(values)
        ghost_values = self._exchange(values)
        combined = np.concatenate((values, ghost_values.astype(values.dtype)))
        result = values.copy()
        if self.layout.col.size:
            contributions = combined[self.layout.col]
            if edge_mask is not None:
                floor = (
                    np.iinfo(values.dtype).min
                    if np.issubdtype(values.dtype, np.integer)
                    else -np.inf
                )
                contributions = np.where(
                    np.asarray(edge_mask, dtype=bool), contributions, floor
                )
            row_max = np.maximum.reduceat(contributions, self._nonempty_starts)
            result[self._nonempty] = np.maximum(values[self._nonempty], row_max)
        return result

    def neighbor_any(
        self, flags: np.ndarray, edge_mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Whether any open-neighbourhood flag is set, per node."""
        return self.neighbor_count(flags, edge_mask=edge_mask) > 0


# ---------------------------------------------------------------------- #
# Worker process                                                          #
# ---------------------------------------------------------------------- #


def _rounding_multiplier_for(rule_value: str) -> Callable[[int], float]:
    # Imported lazily: repro.core.rounding dispatches back into this module.
    from repro.core.rounding import RoundingRule, rounding_multiplier

    rule = RoundingRule(rule_value)
    return lambda delta_two: rounding_multiplier(delta_two, rule)


def _slab_schedule_view(
    slab: ShardSlab,
    indptr: np.ndarray,
    col: np.ndarray,
    spec: FaultSpec,
    salt: int,
    rounds: int,
    already_dead: np.ndarray | None,
):
    """Re-materialize the driver's fault schedule, sliced to this slab.

    The masks are pure functions of ``(seed, salt, round)`` over the
    global CSR, so rebuilding from the small picklable pieces (spec, salt,
    rounds, prior-phase deaths) against the shared-memory CSR yields a
    schedule identical to the driver's, and ``slab_view`` hands the
    kernel exactly the global decisions for this shard's entries.
    """
    schedule = FaultSchedule(
        spec=spec,
        indptr=indptr,
        col=col,
        rounds=rounds,
        salt=salt,
        already_dead=already_dead,
    )
    return schedule.slab_view(slab.layout.owned, slab.layout.flat)


def _execute_command(
    slab: ShardSlab, command: tuple, indptr: np.ndarray, col: np.ndarray
):
    """Run one driver command on this shard's slab (unmodified kernels)."""
    from repro.core import vectorized

    op = command[0]
    if op == "alg2":
        _, k_values, delta = command
        return vectorized.run_algorithm2_bulk_multi_k(slab, k_values, delta=delta)
    if op == "alg3":
        _, k_values = command
        return vectorized.run_algorithm3_bulk_multi_k(slab, k_values)
    if op == "weighted":
        _, k, delta, c_max = command
        costs = slab.read_mail_owned()
        return vectorized.run_weighted_algorithm2_bulk(
            slab, k=k, delta=delta, costs=costs, c_max=c_max
        )
    if op == "rounding":
        _, seeds, rule_value = command
        x = slab.read_mail_owned()
        return vectorized.run_rounding_bulk_batched(
            slab, x, seeds, _rounding_multiplier_for(rule_value)
        )
    if op == "alg2_faulted":
        _, k, delta, spec, salt, rounds, already_dead = command
        view = _slab_schedule_view(
            slab, indptr, col, spec, salt, rounds, already_dead
        )
        return vectorized.run_algorithm2_bulk_faulted(slab, k, delta, view)
    if op == "alg3_faulted":
        _, k, spec, salt, rounds, already_dead = command
        view = _slab_schedule_view(
            slab, indptr, col, spec, salt, rounds, already_dead
        )
        return vectorized.run_algorithm3_bulk_faulted(slab, k, view)
    if op == "rounding_faulted":
        _, seed, rule_value, spec, salt, rounds, already_dead = command
        view = _slab_schedule_view(
            slab, indptr, col, spec, salt, rounds, already_dead
        )
        x = slab.read_mail_owned()
        return vectorized.run_rounding_bulk_faulted(
            slab, x, seed, _rounding_multiplier_for(rule_value), view
        )
    if op == "rss":
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    raise ValueError(f"unknown shard command {op!r}")


def _shard_worker(
    shard_id: int,
    shards: int,
    conn,
    barrier,
    indptr: np.ndarray,
    col: np.ndarray,
    degrees: np.ndarray,
    mail: np.ndarray,
    nodes: Sequence[Hashable],
) -> None:
    """Worker main loop: build the slab, then serve driver commands."""
    try:
        layout = ShardLayout.build(indptr, col, shard_id=shard_id, shards=shards)
        # Slab degrees come from the shared-memory degree segment (they
        # equal the local row counts by the CSR invariant).
        layout.degrees = degrees[layout.owned]
        slab = ShardSlab(
            layout,
            tuple(nodes[position] for position in layout.owned.tolist()),
            mail,
            barrier,
        )
        conn.send(("ready", layout.owned))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        return
    while True:
        try:
            command = conn.recv()
        except EOFError:
            return
        if command[0] == "stop":
            return
        try:
            conn.send(("ok", _execute_command(slab, command, indptr, col)))
        except BaseException:
            # Break the barrier so peer shards blocked mid-superstep fail
            # fast instead of waiting out the timeout.
            barrier.abort()
            conn.send(("error", traceback.format_exc()))


# ---------------------------------------------------------------------- #
# Driver                                                                  #
# ---------------------------------------------------------------------- #


def _merge_metrics(parts: Sequence[ExecutionMetrics]) -> ExecutionMetrics:
    """Exact merge of per-shard metrics into the global ExecutionMetrics.

    Shards execute in lockstep, so every part has the same round layout;
    per-round messages and bits add exactly (integers), per-round maxima
    combine with ``max``, and the per-node dicts are a disjoint union.
    """
    round_counts = {len(part.rounds) for part in parts}
    if len(round_counts) != 1:
        raise RuntimeError(
            f"shard lockstep violated: per-shard round counts {sorted(round_counts)}"
        )
    merged = ExecutionMetrics()
    for index in range(round_counts.pop()):
        rounds = [part.rounds[index] for part in parts]
        merged.rounds.append(
            RoundMetrics(
                round_index=rounds[0].round_index,
                messages_sent=sum(entry.messages_sent for entry in rounds),
                total_bits=sum(entry.total_bits for entry in rounds),
                max_message_bits=max(entry.max_message_bits for entry in rounds),
                active_nodes=sum(entry.active_nodes for entry in rounds),
            )
        )
    for part in parts:
        merged.messages_per_node.update(part.messages_per_node)
        merged.bits_per_node.update(part.bits_per_node)
    return merged


class ShardDegradationWarning(RuntimeWarning):
    """The sharded engine lost workers and fell back to single-process.

    Structured so callers (and tests) can inspect what failed without
    parsing the message: ``shard_ids`` are the workers that died,
    ``exit_codes`` their exit codes (aligned with ``shard_ids``), and
    ``command`` the name of the command that was being replayed when the
    respawn budget ran out.
    """

    def __init__(
        self,
        message: str,
        shard_ids: tuple[int, ...] = (),
        exit_codes: tuple[int | None, ...] = (),
        command: str | None = None,
    ) -> None:
        super().__init__(message)
        self.shard_ids = shard_ids
        self.exit_codes = exit_codes
        self.command = command


class ShardedDriver:
    """Parent-side driver for a pool of shard workers over one graph.

    Owns the shared-memory segments (CSR ``indptr``/``col``, the degree
    array, and the float64 x-vector mailbox), forks one worker per shard,
    and turns kernel invocations into broadcast commands.  Workers stay
    resident between phases, so a pipeline (fractional solve + rounding)
    pays partitioning and process start-up once.

    The driver is crash tolerant: while waiting on replies it heartbeats
    every worker (``heartbeat`` seconds).  A worker found dead aborts the
    superstep barrier so its peers fail fast, gets respawned (up to
    ``max_respawns`` workers over the driver's lifetime), and the whole
    command -- including any mailbox payload -- is replayed; determinism
    makes the replay bitwise identical to an uninterrupted run.  Once the
    budget is exhausted the driver emits a
    :class:`ShardDegradationWarning` and serves this and all later
    commands on the single-process vectorized backend in the parent.

    Use as a context manager, or call :meth:`close` explicitly.
    """

    def __init__(
        self,
        bulk: BulkGraph,
        shards: int | None = None,
        heartbeat: float = 1.0,
        max_respawns: int = 2,
    ) -> None:
        if not isinstance(bulk, BulkGraph):
            raise TypeError("ShardedDriver requires a BulkGraph")
        if heartbeat <= 0:
            raise ValueError("heartbeat must be positive")
        if max_respawns < 0:
            raise ValueError("max_respawns must be non-negative")
        self.shards = resolve_shard_count(shards)
        self.n = bulk.n
        self._bulk = bulk
        self._heartbeat = float(heartbeat)
        self._max_respawns = int(max_respawns)
        self._respawns_used = 0
        self._degraded = False
        self._closed = False
        self._mail = None
        self._degrees = None
        self._shms: list[shared_memory.SharedMemory] = []
        self._procs: list[multiprocessing.Process] = []
        self._conns: list = []
        self._broken = False

        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "the sharded backend requires the 'fork' multiprocessing "
                "start method (POSIX); use backend='vectorized' instead"
            )
        context = multiprocessing.get_context("fork")
        self._context = context

        try:
            self._indptr = self._share(bulk.indptr)
            self._col = self._share(bulk.col)
            # The degree array rides in shared memory alongside the CSR so
            # worker slabs slice it instead of re-deriving private copies.
            self._degrees = self._share(bulk.degrees)
            self._mail = self._share(np.zeros(self.n, dtype=np.float64))
            self._barrier = context.Barrier(self.shards)
            self._nodes = bulk.nodes
            for shard_id in range(self.shards):
                process, parent_conn = self._spawn(shard_id)
                self._procs.append(process)
                self._conns.append(parent_conn)
            self._owned = self._collect()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # Lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def _share(self, array: np.ndarray) -> np.ndarray:
        """Copy an array into a shared-memory segment; return the view."""
        shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        self._shms.append(shm)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[:] = array
        return view

    def _spawn(self, shard_id: int):
        """Fork one shard worker; returns ``(process, parent_conn)``."""
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_shard_worker,
            args=(
                shard_id,
                self.shards,
                child_conn,
                self._barrier,
                self._indptr,
                self._col,
                self._degrees,
                self._mail,
                self._nodes,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return process, parent_conn

    def __enter__(self) -> "ShardedDriver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Stop the workers and release the shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._procs:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        # Drop the views before unlinking so the buffers are not exported.
        self._mail = None
        self._degrees = None
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
        self._shms = []

    # ------------------------------------------------------------------ #
    # Command plumbing                                                    #
    # ------------------------------------------------------------------ #

    def _collect(self) -> list:
        """Strict reply collection (start-up handshake): any death is fatal."""
        results = []
        errors = []
        for shard_id, (conn, process) in enumerate(zip(self._conns, self._procs)):
            while not conn.poll(self._heartbeat):
                if not process.is_alive():
                    self._broken = True
                    raise RuntimeError(
                        f"shard worker {shard_id} died unexpectedly "
                        f"(exit code {process.exitcode})"
                    )
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                self._broken = True
                raise RuntimeError(
                    f"shard worker {shard_id} died unexpectedly "
                    f"(exit code {process.exitcode})"
                )
            if status == "error":
                errors.append((shard_id, payload))
            else:
                results.append(payload)
        if errors:
            self._broken = True
            shard_id, payload = errors[0]
            raise RuntimeError(
                f"shard worker {shard_id} failed:\n{payload}"
            )
        return results

    def _attempt(self, command: tuple) -> tuple[dict, dict, list[int]]:
        """One broadcast/collect pass, surviving worker deaths.

        Returns ``(results, errors, dead)``: per-shard "ok" payloads,
        per-shard error tracebacks, and the shards found dead.  On the
        first death the superstep barrier is aborted so surviving workers
        fail their in-flight command fast and park back on their pipes --
        a precondition for safely resetting the barrier during recovery.
        """
        dead: list[int] = []
        delivered: list[int] = []
        for shard_id, conn in enumerate(self._conns):
            try:
                conn.send(command)
                delivered.append(shard_id)
            except (BrokenPipeError, OSError):
                dead.append(shard_id)
        if dead:
            self._barrier.abort()
        results: dict[int, object] = {}
        errors: dict[int, str] = {}
        for shard_id in delivered:
            if shard_id in dead:
                continue
            conn = self._conns[shard_id]
            reply = None
            while True:
                if conn.poll(self._heartbeat):
                    # A worker killed mid-reply leaves the pipe readable
                    # with EOF, so poll() returns True without a message.
                    try:
                        reply = conn.recv()
                    except (EOFError, OSError):
                        dead.append(shard_id)
                        self._barrier.abort()
                    break
                newly_dead = [
                    peer
                    for peer in delivered
                    if peer not in dead and not self._procs[peer].is_alive()
                ]
                if newly_dead:
                    dead.extend(newly_dead)
                    # Release peers blocked mid-superstep; they error out
                    # and reply, so this loop still terminates.
                    self._barrier.abort()
                    if shard_id in newly_dead:
                        break
            if reply is None:
                continue
            status, payload = reply
            if status == "error":
                errors[shard_id] = payload
            else:
                results[shard_id] = payload
        return results, errors, dead

    def _recover(self, dead: list[int]) -> bool:
        """Respawn dead workers within budget; False = budget exhausted.

        Callers guarantee every surviving worker has replied to the
        aborted command (so nobody can touch the barrier) before the
        barrier is reset and replacements are forked.
        """
        self._respawns_used += len(dead)
        if self._respawns_used > self._max_respawns:
            return False
        self._barrier.reset()
        for shard_id in dead:
            try:
                self._conns[shard_id].close()
            except OSError:
                pass
            self._procs[shard_id].join(timeout=1.0)
            process, parent_conn = self._spawn(shard_id)
            self._procs[shard_id] = process
            self._conns[shard_id] = parent_conn
            while not parent_conn.poll(self._heartbeat):
                if not process.is_alive():
                    return False
            try:
                status, payload = parent_conn.recv()
            except (EOFError, OSError):
                return False
            if status != "ready":
                return False
            self._owned[shard_id] = payload
        return True

    def _request(
        self, command: tuple, mail_payload: np.ndarray | None = None
    ) -> list | None:
        """Broadcast a command with crash recovery and replay.

        ``mail_payload`` is re-published into the mailbox before every
        attempt (supersteps overwrite the mailbox, so a replayed command
        must not read a clobbered payload).  Returns the per-shard
        replies in shard order, or ``None`` when the driver degraded to
        single-process fallback (the caller then runs the equivalent
        vectorized kernel on the whole graph).
        """
        if self._closed:
            raise RuntimeError("ShardedDriver is closed")
        if self._broken:
            raise RuntimeError("ShardedDriver is broken")
        while not self._degraded:
            if mail_payload is not None:
                self._mail[:] = mail_payload
            results, errors, dead = self._attempt(command)
            if not dead:
                if errors:
                    self._broken = True
                    shard_id = min(errors)
                    raise RuntimeError(
                        f"shard worker {shard_id} failed:\n{errors[shard_id]}"
                    )
                return [results[shard_id] for shard_id in range(self.shards)]
            exit_codes = tuple(self._procs[shard_id].exitcode for shard_id in dead)
            if self._recover(dead):
                continue
            self._degraded = True
            warnings.warn(
                ShardDegradationWarning(
                    f"shard worker(s) {sorted(dead)} died "
                    f"(exit codes {list(exit_codes)}) during {command[0]!r} and "
                    f"the respawn budget (max_respawns={self._max_respawns}) "
                    "is exhausted; degrading to the single-process "
                    "vectorized backend",
                    shard_ids=tuple(sorted(dead)),
                    exit_codes=exit_codes,
                    command=str(command[0]),
                ),
                stacklevel=3,
            )
        return None

    def _gather(self, owned_arrays: Sequence[np.ndarray], dtype) -> np.ndarray:
        """Scatter per-shard owned-length arrays back into global order."""
        full = np.empty(self.n, dtype=dtype)
        for owned, values in zip(self._owned, owned_arrays):
            full[owned] = values
        return full

    # ------------------------------------------------------------------ #
    # Superstep programs                                                  #
    # ------------------------------------------------------------------ #

    def _run_multi_k(
        self, command: tuple, k_values: Sequence[int]
    ) -> dict[int, tuple[np.ndarray, ExecutionMetrics]] | None:
        per_shard = self._request(command)
        if per_shard is None:
            return None
        results: dict[int, tuple[np.ndarray, ExecutionMetrics]] = {}
        for k in k_values:
            values = self._gather(
                [snapshots[k][0] for snapshots in per_shard], np.float64
            )
            metrics = _merge_metrics([snapshots[k][1] for snapshots in per_shard])
            results[k] = (values, metrics)
        return results

    def run_algorithm2_multi_k(
        self, k_values: Sequence[int], delta: int
    ) -> dict[int, tuple[np.ndarray, ExecutionMetrics]]:
        """Algorithm 2 (Δ known) as sharded supersteps, one pass per k sweep."""
        from repro.core import vectorized

        k_values = tuple(k_values)
        results = self._run_multi_k(("alg2", k_values, delta), k_values)
        if results is None:
            results = vectorized.run_algorithm2_bulk_multi_k(
                self._bulk, k_values, delta=delta
            )
        return results

    def run_algorithm3_multi_k(
        self, k_values: Sequence[int]
    ) -> dict[int, tuple[np.ndarray, ExecutionMetrics]]:
        """Algorithm 3 (Δ unknown) as sharded supersteps."""
        from repro.core import vectorized

        k_values = tuple(k_values)
        results = self._run_multi_k(("alg3", k_values), k_values)
        if results is None:
            results = vectorized.run_algorithm3_bulk_multi_k(self._bulk, k_values)
        return results

    def run_weighted_algorithm2(
        self, k: int, delta: int, costs: np.ndarray, c_max: float
    ) -> tuple[np.ndarray, ExecutionMetrics]:
        """Weighted Algorithm 2; per-node costs travel via the mailbox."""
        if self._mail is None:
            raise RuntimeError("ShardedDriver is closed")
        costs = np.asarray(costs, dtype=np.float64)
        per_shard = self._request(
            ("weighted", k, delta, float(c_max)), mail_payload=costs
        )
        if per_shard is None:
            from repro.core import vectorized

            return vectorized.run_weighted_algorithm2_bulk(
                self._bulk, k=k, delta=delta, costs=costs, c_max=c_max
            )
        values = self._gather([entry[0] for entry in per_shard], np.float64)
        metrics = _merge_metrics([entry[1] for entry in per_shard])
        return values, metrics

    def run_rounding_batched(
        self, x: np.ndarray, seeds: Sequence[int | None], rule_value: str
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray, ExecutionMetrics]]:
        """Algorithm 1 for many seeds over one x-vector (mailbox-published)."""
        if self._mail is None:
            raise RuntimeError("ShardedDriver is closed")
        x = np.asarray(x, dtype=np.float64)
        seeds = tuple(seeds)
        per_shard = self._request(("rounding", seeds, rule_value), mail_payload=x)
        if per_shard is None:
            from repro.core import vectorized

            return vectorized.run_rounding_bulk_batched(
                self._bulk, x, seeds, _rounding_multiplier_for(rule_value)
            )
        results = []
        for trial in range(len(seeds)):
            in_set = self._gather(
                [batch[trial][0] for batch in per_shard], np.bool_
            )
            joined_randomly = self._gather(
                [batch[trial][1] for batch in per_shard], np.bool_
            )
            joined_as_fallback = self._gather(
                [batch[trial][2] for batch in per_shard], np.bool_
            )
            metrics = _merge_metrics([batch[trial][3] for batch in per_shard])
            results.append((in_set, joined_randomly, joined_as_fallback, metrics))
        return results

    # ------------------------------------------------------------------ #
    # Faulted superstep programs                                          #
    # ------------------------------------------------------------------ #
    #
    # Workers re-materialize the schedule from its small picklable pieces
    # (spec, salt, rounds, prior-phase deaths) against the shared CSR, so
    # the full per-round masks never cross the pipes.

    @staticmethod
    def _schedule_pieces(schedule: FaultSchedule) -> tuple:
        return (
            schedule.spec,
            schedule.salt,
            schedule.rounds,
            schedule.already_dead,
        )

    def run_algorithm2_faulted(
        self, k: int, delta: int, schedule: FaultSchedule
    ) -> tuple[np.ndarray, ExecutionMetrics]:
        """Algorithm 2 under a fault schedule, sharded (bitwise = vectorized)."""
        command = ("alg2_faulted", int(k), int(delta), *self._schedule_pieces(schedule))
        per_shard = self._request(command)
        if per_shard is None:
            from repro.core import vectorized

            return vectorized.run_algorithm2_bulk_faulted(
                self._bulk, k, delta, schedule
            )
        values = self._gather([entry[0] for entry in per_shard], np.float64)
        return values, _merge_metrics([entry[1] for entry in per_shard])

    def run_algorithm3_faulted(
        self, k: int, schedule: FaultSchedule
    ) -> tuple[np.ndarray, ExecutionMetrics]:
        """Algorithm 3 under a fault schedule, sharded (bitwise = vectorized)."""
        command = ("alg3_faulted", int(k), *self._schedule_pieces(schedule))
        per_shard = self._request(command)
        if per_shard is None:
            from repro.core import vectorized

            return vectorized.run_algorithm3_bulk_faulted(self._bulk, k, schedule)
        values = self._gather([entry[0] for entry in per_shard], np.float64)
        return values, _merge_metrics([entry[1] for entry in per_shard])

    def run_rounding_faulted(
        self,
        x: np.ndarray,
        seed: int | None,
        rule_value: str,
        schedule: FaultSchedule,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, ExecutionMetrics]:
        """Algorithm 1 under a fault schedule (x published via the mailbox)."""
        if self._mail is None:
            raise RuntimeError("ShardedDriver is closed")
        x = np.asarray(x, dtype=np.float64)
        command = (
            "rounding_faulted",
            seed,
            rule_value,
            *self._schedule_pieces(schedule),
        )
        per_shard = self._request(command, mail_payload=x)
        if per_shard is None:
            from repro.core import vectorized

            return vectorized.run_rounding_bulk_faulted(
                self._bulk, x, seed, _rounding_multiplier_for(rule_value), schedule
            )
        in_set = self._gather([entry[0] for entry in per_shard], np.bool_)
        joined_randomly = self._gather([entry[1] for entry in per_shard], np.bool_)
        joined_as_fallback = self._gather(
            [entry[2] for entry in per_shard], np.bool_
        )
        metrics = _merge_metrics([entry[3] for entry in per_shard])
        return in_set, joined_randomly, joined_as_fallback, metrics

    def peak_rss_bytes(self) -> list[int]:
        """Per-shard worker peak RSS in bytes (``ru_maxrss``), shard order.

        After degradation to single-process fallback this reports the
        parent's own peak RSS (one entry), since no workers remain.
        """
        replies = self._request(("rss",))
        if replies is None:
            return [resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024]
        return replies
