"""Round and message metrics for simulator executions.

The paper's complexity claims are stated in three currencies:

* number of synchronous **rounds** (``2k²`` for Algorithm 2,
  ``4k² + O(k)`` for Algorithm 3),
* number of **messages** sent per node (``O(k² Δ)``), and
* **message size** in bits (``O(log Δ)``).

:class:`ExecutionMetrics` records all three exactly, per round and per node,
so the benchmarks can compare measured values against the closed-form bounds
in :mod:`repro.analysis.bounds`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.simulator.message import Message


@dataclass
class RoundMetrics:
    """Counters for a single synchronous round."""

    round_index: int
    messages_sent: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    active_nodes: int = 0

    def record(self, message: Message) -> None:
        """Account for one sent message."""
        bits = message.size_bits
        self.messages_sent += 1
        self.total_bits += bits
        if bits > self.max_message_bits:
            self.max_message_bits = bits


@dataclass
class ExecutionMetrics:
    """Aggregate metrics for an entire execution.

    Attributes
    ----------
    rounds:
        Per-round counters, in round order.
    messages_per_node:
        Total number of messages *sent* by each node over the execution.
    bits_per_node:
        Total number of payload bits sent by each node.
    """

    rounds: list[RoundMetrics] = field(default_factory=list)
    messages_per_node: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    bits_per_node: dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def begin_round(self, round_index: int) -> RoundMetrics:
        """Open counters for a new round and return them."""
        round_metrics = RoundMetrics(round_index=round_index)
        self.rounds.append(round_metrics)
        return round_metrics

    def record_messages(
        self, round_metrics: RoundMetrics, messages: Iterable[Message]
    ) -> None:
        """Account for the messages sent in ``round_metrics``'s round."""
        for message in messages:
            round_metrics.record(message)
            self.messages_per_node[message.sender] += 1
            self.bits_per_node[message.sender] += message.size_bits

    # ------------------------------------------------------------------ #
    # Aggregates                                                          #
    # ------------------------------------------------------------------ #

    @property
    def round_count(self) -> int:
        """Number of rounds executed."""
        return len(self.rounds)

    @property
    def total_messages(self) -> int:
        """Total messages sent over the whole execution."""
        return sum(round_metrics.messages_sent for round_metrics in self.rounds)

    @property
    def total_bits(self) -> int:
        """Total payload bits sent over the whole execution."""
        return sum(round_metrics.total_bits for round_metrics in self.rounds)

    @property
    def max_message_bits(self) -> int:
        """Largest single message payload observed, in bits."""
        if not self.rounds:
            return 0
        return max(round_metrics.max_message_bits for round_metrics in self.rounds)

    @property
    def max_messages_per_node(self) -> int:
        """Largest per-node message count (the paper's per-node bound)."""
        if not self.messages_per_node:
            return 0
        return max(self.messages_per_node.values())

    def messages_for_node(self, node_id: int) -> int:
        """Messages sent by one node over the whole execution."""
        return self.messages_per_node.get(node_id, 0)

    def summary(self) -> Mapping[str, float]:
        """A flat summary dictionary suitable for tables and benchmarks."""
        node_count = max(len(self.messages_per_node), 1)
        return {
            "rounds": self.round_count,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "max_message_bits": self.max_message_bits,
            "max_messages_per_node": self.max_messages_per_node,
            "mean_messages_per_node": self.total_messages / node_count,
        }
