"""Message envelopes and message-size accounting.

The paper claims all messages of the dominating-set algorithms have size
``O(log Δ)`` bits.  To make that claim measurable, every message carries a
payload whose size in bits is estimated by :func:`payload_size_bits`.  The
estimate is intentionally conservative and simple: it charges the number of
bits needed to write the payload down, field by field, rather than the size
of a particular Python object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping


def _int_bits(value: int) -> int:
    """Number of bits needed to encode ``value`` as a signed integer."""
    magnitude = abs(int(value))
    if magnitude == 0:
        return 1
    return magnitude.bit_length() + 1  # +1 sign bit


def _float_bits(value: float) -> int:
    """Bit cost charged for a real-valued payload field.

    The algorithms only ever send x-values of the form ``(Δ+1)^(-m/k)`` and
    degree counts, both of which are representable with ``O(log Δ)`` bits
    (an exponent plus a small mantissa).  We charge the cost of one IEEE-754
    single-precision float as a conservative, constant upper bound on that
    encoding, so the measured message size stays honest without depending on
    a specific fixed-point scheme.
    """
    if value == 0.0:
        return 1
    if math.isinf(value) or math.isnan(value):
        return 32
    return 32


def payload_size_bits(payload: Any) -> int:
    """Estimate the size of ``payload`` in bits.

    Supported payload shapes are the ones used throughout the library:
    ``None``, ``bool``, ``int``, ``float``, ``str``, and (possibly nested)
    tuples / lists / dicts of those.

    Parameters
    ----------
    payload:
        The message payload.

    Returns
    -------
    int
        Estimated number of bits required to encode the payload.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return _int_bits(payload)
    if isinstance(payload, float):
        return _float_bits(payload)
    if isinstance(payload, str):
        return 8 * len(payload.encode("utf-8"))
    if isinstance(payload, Mapping):
        return sum(
            payload_size_bits(key) + payload_size_bits(value)
            for key, value in payload.items()
        )
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(payload_size_bits(item) for item in payload)
    raise TypeError(f"unsupported payload type for size accounting: {type(payload)!r}")


@dataclass(frozen=True)
class Message:
    """A single message sent along one edge in one round.

    Attributes
    ----------
    sender:
        Node identifier of the sending node.
    receiver:
        Node identifier of the receiving node.
    payload:
        Arbitrary (but size-accountable) message content.
    round_index:
        The round in which the message was sent.  Filled in by the runner;
        a sender does not need to set it.
    tag:
        Optional short label describing the message kind (e.g. ``"degree"``,
        ``"color"``, ``"x-value"``).  Used by traces and metrics breakdowns.
    """

    sender: int
    receiver: int
    payload: Any = None
    round_index: int = -1
    tag: str = ""

    @property
    def size_bits(self) -> int:
        """Size of the message payload in bits (excluding addressing)."""
        return payload_size_bits(self.payload)

    def with_round(self, round_index: int) -> "Message":
        """Return a copy of the message stamped with ``round_index``."""
        return Message(
            sender=self.sender,
            receiver=self.receiver,
            payload=self.payload,
            round_index=round_index,
            tag=self.tag,
        )


def broadcast(
    sender: int, neighbors: Iterable[int], payload: Any, tag: str = ""
) -> list[Message]:
    """Create one identical message per neighbour.

    This is the communication primitive used by every algorithm in the
    paper: ``send <something> to all neighbours``.

    Parameters
    ----------
    sender:
        Identifier of the sending node.
    neighbors:
        Identifiers of the receiving nodes.
    payload:
        Message content, shared by all copies.
    tag:
        Optional message-kind label.

    Returns
    -------
    list[Message]
        One message per neighbour, in iteration order.
    """
    return [
        Message(sender=sender, receiver=neighbor, payload=payload, tag=tag)
        for neighbor in neighbors
    ]
