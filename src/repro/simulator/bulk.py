"""Bulk-synchronous execution substrate for the vectorized backend.

The message-passing simulator (:mod:`repro.simulator.runtime`) materialises
one :class:`~repro.simulator.message.Message` object per edge per round.
That fidelity is what makes traces and fault injection possible, but it caps
executions at a few thousand nodes.  This module provides the substrate for
an alternative *bulk-synchronous* execution style: every "send X to all
neighbours / receive" step of the paper's algorithms is one whole-graph
array operation over a CSR view of the adjacency structure.

Two invariants tie this module to the simulator so the two backends stay
numerically interchangeable:

* **Ordering.**  :class:`BulkGraph` stores nodes in sorted order and each
  adjacency row in ascending neighbour order -- exactly the order in which
  :class:`~repro.simulator.network.Network` sorts neighbours and the runner
  delivers messages.  :meth:`BulkGraph.neighbor_sum` accumulates every row
  left to right in that order (``numpy.bincount`` iterates its input
  sequentially), so floating-point sums are *bitwise identical* to the
  ``sum(inbox_by_sender(...).values())`` loops in the node programs.
* **Metrics.**  :class:`BulkMetricsBuilder` models the messages a
  fault-free simulated execution would have sent (one payload broadcast per
  node per exchange) and lays the per-round counters out exactly like
  :class:`~repro.simulator.runtime.SynchronousRunner` does: the start-up
  exchange and the round-0 exchange share the first
  :class:`~repro.simulator.metrics.RoundMetrics` entry, and the final round
  (in which every program terminates without sending) is an empty entry.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import networkx as nx
import numpy as np

from repro.simulator.metrics import ExecutionMetrics, RoundMetrics

#: Bit cost of a boolean payload (mirrors ``payload_size_bits(True)``).
BOOL_PAYLOAD_BITS = 1

#: Bit cost of a non-zero real payload (mirrors ``payload_size_bits(1.5)``).
FLOAT_PAYLOAD_BITS = 32


def int_payload_bits(values: np.ndarray) -> np.ndarray:
    """Vectorized ``payload_size_bits`` for integer payloads.

    Matches ``_int_bits`` in :mod:`repro.simulator.message`: one bit for
    zero, otherwise ``bit_length + 1`` (sign bit).  ``numpy.frexp`` returns
    the exact binary exponent, i.e. the bit length, for integers below 2⁵³.
    """
    magnitude = np.abs(np.asarray(values, dtype=np.int64))
    _, exponent = np.frexp(magnitude.astype(np.float64))
    return np.where(magnitude == 0, 1, exponent + 1)


def float_payload_bits(values: np.ndarray) -> np.ndarray:
    """Vectorized ``payload_size_bits`` for real payloads (1 bit for 0.0)."""
    values = np.asarray(values, dtype=np.float64)
    return np.where(values == 0.0, 1, FLOAT_PAYLOAD_BITS)


class BulkGraph:
    """A CSR (compressed sparse row) view of a communication graph.

    Attributes
    ----------
    nodes:
        Node identifiers in sorted order; array index ``i`` corresponds to
        ``nodes[i]`` everywhere in the vectorized backend.
    degrees:
        Per-node degree δ_i as an ``int64`` array.
    indptr / col:
        CSR adjacency: the neighbours of node ``i`` (as indices) are
        ``col[indptr[i]:indptr[i+1]]``, ascending.
    row:
        ``col``'s companion: ``row[j]`` is the node that owns adjacency
        entry ``j`` (i.e. ``indptr`` expanded back to one entry per edge
        endpoint).
    """

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("bulk graph must contain at least one node")
        if any(u == v for u, v in graph.edges()):
            raise ValueError("bulk graph must not contain self loops")

        self.nodes: tuple[Hashable, ...] = tuple(sorted(graph.nodes()))
        self.n = len(self.nodes)
        index = {node: position for position, node in enumerate(self.nodes)}

        degrees = np.zeros(self.n, dtype=np.int64)
        col_chunks: list[np.ndarray] = []
        for position, node in enumerate(self.nodes):
            # Sorting identifiers and then mapping to indices preserves the
            # simulator's ascending-neighbour delivery order because the
            # index assignment above is monotone in the sorted identifiers.
            neighbor_indices = np.fromiter(
                (index[neighbor] for neighbor in sorted(graph.neighbors(node))),
                dtype=np.int64,
            )
            degrees[position] = neighbor_indices.size
            col_chunks.append(neighbor_indices)

        self.degrees = degrees
        self.indptr = np.concatenate(([0], np.cumsum(degrees)))
        self.col = (
            np.concatenate(col_chunks) if col_chunks else np.empty(0, dtype=np.int64)
        )
        self.row = np.repeat(np.arange(self.n, dtype=np.int64), degrees)
        # Row starts of the non-empty CSR rows, for reduceat-based maxima.
        self._nonempty = np.flatnonzero(degrees > 0)
        self._nonempty_starts = self.indptr[self._nonempty]

    @classmethod
    def from_graph(cls, graph: nx.Graph) -> "BulkGraph":
        """Build a :class:`BulkGraph` from a networkx graph."""
        return cls(graph)

    # ------------------------------------------------------------------ #
    # Neighbourhood operators                                             #
    # ------------------------------------------------------------------ #

    def neighbor_sum(self, values: np.ndarray) -> np.ndarray:
        """Per-node sum of ``values`` over the *open* neighbourhood.

        Accumulates each row left to right in ascending neighbour order,
        reproducing the node programs' ``sum(neighbor_payloads.values())``
        bit for bit.
        """
        return np.bincount(
            self.row,
            weights=np.asarray(values, dtype=np.float64)[self.col],
            minlength=self.n,
        )

    def neighbor_count(self, flags: np.ndarray) -> np.ndarray:
        """Per-node count of ``True`` flags over the open neighbourhood."""
        mask = np.asarray(flags, dtype=bool)[self.col]
        return np.bincount(self.row[mask], minlength=self.n)

    def closed_max(self, values: np.ndarray) -> np.ndarray:
        """Per-node maximum of ``values`` over the *closed* neighbourhood."""
        values = np.asarray(values)
        result = values.copy()
        if self.col.size:
            row_max = np.maximum.reduceat(values[self.col], self._nonempty_starts)
            result[self._nonempty] = np.maximum(values[self._nonempty], row_max)
        return result

    def neighbor_any(self, flags: np.ndarray) -> np.ndarray:
        """Whether any open-neighbourhood flag is set, per node."""
        return self.neighbor_count(flags) > 0


class BulkMetricsBuilder:
    """Accumulates modeled message statistics for a bulk execution.

    Call :meth:`record_exchange` once per "send to all neighbours" step, in
    execution order, with the payload bit-size each node broadcasts; then
    :meth:`build` produces an :class:`ExecutionMetrics` laid out exactly as
    the synchronous runner would have recorded the same (fault-free)
    execution.
    """

    def __init__(self, degrees: np.ndarray) -> None:
        self._degrees = np.asarray(degrees, dtype=np.int64)
        self._messages_per_exchange = int(self._degrees.sum())
        self._senders = np.flatnonzero(self._degrees > 0)
        # (total_bits, max_bits) per exchange, in execution order.
        self._exchanges: list[tuple[int, int]] = []
        self._bits_per_node = np.zeros(self._degrees.size, dtype=np.int64)

    def record_exchange(self, payload_bits: np.ndarray | int) -> None:
        """Account for one broadcast exchange.

        Parameters
        ----------
        payload_bits:
            Bits of the payload each node sends to *each* neighbour --
            either a per-node array or a scalar for uniform payloads
            (e.g. ``BOOL_PAYLOAD_BITS`` for colour flags).
        """
        bits = np.broadcast_to(
            np.asarray(payload_bits, dtype=np.int64), self._degrees.shape
        )
        total_bits = int((bits * self._degrees).sum())
        max_bits = int(bits[self._senders].max()) if self._senders.size else 0
        self._exchanges.append((total_bits, max_bits))
        self._bits_per_node += bits * self._degrees

    @property
    def exchange_count(self) -> int:
        """Number of exchanges recorded so far (= rounds of the execution)."""
        return len(self._exchanges)

    def build(self, nodes: Sequence[Hashable]) -> ExecutionMetrics:
        """Assemble the final :class:`ExecutionMetrics`.

        The runner folds the start-up exchange into the round-0 entry and
        appends one empty entry for the final round in which every program
        terminates; executions with a single exchange have no such trailer.
        """
        per_round: list[tuple[int, int, int]] = []  # (messages, bits, max_bits)
        exchanges = self._exchanges
        messages = self._messages_per_exchange
        if len(exchanges) == 1:
            total_bits, max_bits = exchanges[0]
            per_round.append((messages, total_bits, max_bits))
        elif len(exchanges) >= 2:
            first_bits = exchanges[0][0] + exchanges[1][0]
            first_max = max(exchanges[0][1], exchanges[1][1])
            per_round.append((2 * messages, first_bits, first_max))
            for total_bits, max_bits in exchanges[2:]:
                per_round.append((messages, total_bits, max_bits))
            per_round.append((0, 0, 0))

        metrics = ExecutionMetrics()
        for round_index, (sent, total_bits, max_bits) in enumerate(per_round):
            metrics.rounds.append(
                RoundMetrics(
                    round_index=round_index,
                    messages_sent=sent,
                    total_bits=total_bits,
                    max_message_bits=max_bits,
                )
            )
        exchange_total = len(exchanges)
        for position in self._senders:
            node = nodes[position]
            metrics.messages_per_node[node] = exchange_total * int(
                self._degrees[position]
            )
            metrics.bits_per_node[node] = int(self._bits_per_node[position])
        return metrics
