"""Bulk-synchronous execution substrate for the vectorized backend.

The message-passing simulator (:mod:`repro.simulator.runtime`) materialises
one :class:`~repro.simulator.message.Message` object per edge per round.
That fidelity is what makes traces and fault injection possible, but it caps
executions at a few thousand nodes.  This module provides the substrate for
an alternative *bulk-synchronous* execution style: every "send X to all
neighbours / receive" step of the paper's algorithms is one whole-graph
array operation over a CSR view of the adjacency structure.

Two invariants tie this module to the simulator so the two backends stay
numerically interchangeable:

* **Ordering.**  :class:`BulkGraph` stores nodes in sorted order and each
  adjacency row in ascending neighbour order -- exactly the order in which
  :class:`~repro.simulator.network.Network` sorts neighbours and the runner
  delivers messages.  :meth:`BulkGraph.neighbor_sum` accumulates every row
  left to right in that order (``numpy.bincount`` iterates its input
  sequentially), so floating-point sums are *bitwise identical* to the
  ``sum(inbox_by_sender(...).values())`` loops in the node programs.
* **Metrics.**  :class:`BulkMetricsBuilder` models the messages a
  fault-free simulated execution would have sent (one payload broadcast per
  node per exchange) and lays the per-round counters out exactly like
  :class:`~repro.simulator.runtime.SynchronousRunner` does: the start-up
  exchange and the round-0 exchange share the first
  :class:`~repro.simulator.metrics.RoundMetrics` entry, and the final round
  (in which every program terminates without sending) is an empty entry.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import networkx as nx
import numpy as np

from repro.simulator.metrics import ExecutionMetrics, RoundMetrics

#: Bit cost of a boolean payload (mirrors ``payload_size_bits(True)``).
BOOL_PAYLOAD_BITS = 1

#: Bit cost of a non-zero real payload (mirrors ``payload_size_bits(1.5)``).
FLOAT_PAYLOAD_BITS = 32


def int_payload_bits(values: np.ndarray) -> np.ndarray:
    """Vectorized ``payload_size_bits`` for integer payloads.

    Matches ``_int_bits`` in :mod:`repro.simulator.message`: one bit for
    zero, otherwise ``bit_length + 1`` (sign bit).  ``numpy.frexp`` returns
    the exact binary exponent, i.e. the bit length, for integers below 2⁵³.
    """
    magnitude = np.abs(np.asarray(values, dtype=np.int64))
    _, exponent = np.frexp(magnitude.astype(np.float64))
    return np.where(magnitude == 0, 1, exponent + 1)


def float_payload_bits(values: np.ndarray) -> np.ndarray:
    """Vectorized ``payload_size_bits`` for real payloads (1 bit for 0.0)."""
    values = np.asarray(values, dtype=np.float64)
    return np.where(values == 0.0, 1, FLOAT_PAYLOAD_BITS)


class BulkGraph:
    """A CSR (compressed sparse row) communication graph.

    A :class:`BulkGraph` is a *first-class* construction target: the
    direct-to-CSR generators in :mod:`repro.graphs.bulk` build one straight
    from edge arrays without ever materialising per-edge Python objects,
    and :meth:`from_graph` converts an existing networkx graph.

    Attributes
    ----------
    nodes:
        Node identifiers in sorted order; array index ``i`` corresponds to
        ``nodes[i]`` everywhere in the vectorized backend.
    degrees:
        Per-node degree δ_i as an ``int64`` array.
    indptr / col:
        CSR adjacency: the neighbours of node ``i`` (as indices) are
        ``col[indptr[i]:indptr[i+1]]``, ascending.
    row:
        ``col``'s companion: ``row[j]`` is the node that owns adjacency
        entry ``j`` (i.e. ``indptr`` expanded back to one entry per edge
        endpoint).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        col: np.ndarray,
        nodes: Sequence[Hashable] | None = None,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        col = np.asarray(col, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size < 2:
            raise ValueError("indptr must be a 1-d array with at least two entries")
        n = indptr.size - 1
        if indptr[0] != 0 or indptr[-1] != col.size:
            raise ValueError("indptr must start at 0 and end at len(col)")
        degrees = np.diff(indptr)
        if np.any(degrees < 0):
            raise ValueError("indptr must be non-decreasing")
        if col.size and (col.min() < 0 or col.max() >= n):
            raise ValueError("col entries must index nodes (0..n-1)")

        self.nodes: tuple[Hashable, ...] = (
            tuple(range(n)) if nodes is None else tuple(nodes)
        )
        if len(self.nodes) != n:
            raise ValueError("nodes must provide one identifier per CSR row")
        self.n = n
        self.degrees = degrees
        self.indptr = indptr
        self.col = col
        self.row = np.repeat(np.arange(self.n, dtype=np.int64), degrees)
        if np.any(self.row == col):
            raise ValueError("bulk graph must not contain self loops")
        # Each row must list its neighbours strictly ascending -- the
        # simulator-equivalence invariant every neighbourhood operator
        # relies on (and it rules out duplicate entries).
        if col.size > 1:
            interior = np.ones(col.size - 1, dtype=bool)
            starts = indptr[1:-1]
            starts = starts[(starts > 0) & (starts < col.size)]
            interior[starts - 1] = False
            if not np.all(np.diff(col)[interior] > 0):
                raise ValueError(
                    "CSR rows must be strictly ascending; build through "
                    "from_edges or from_graph to normalise the adjacency"
                )
        # The adjacency must be symmetric (undirected communication).
        forward = np.sort(self.row * np.int64(n) + col)
        backward = np.sort(col * np.int64(n) + self.row)
        if not np.array_equal(forward, backward):
            raise ValueError("bulk graph adjacency must be symmetric")
        # Row starts of the non-empty CSR rows, for reduceat-based maxima.
        self._nonempty = np.flatnonzero(degrees > 0)
        self._nonempty_starts = self.indptr[self._nonempty]
        # node -> position, built lazily by index_of.
        self._index: dict[Hashable, int] | None = None
        # Lazy scipy CSR of N = A + I, shared by the LP solver, the
        # first-order power iteration, and certification (built once by
        # repro.lp.sparse.neighborhood_csr_matrix).
        self._neighborhood_csr = None
        # Lazy augmented-CSR structure for closed_chain_sum.
        self._chain_senders: np.ndarray | None = None
        self._chain_carry_slots: np.ndarray | None = None
        self._chain_entry_slots: np.ndarray | None = None
        self._chain_value_mask: np.ndarray | None = None
        self._chain_row: np.ndarray | None = None

    @classmethod
    def from_graph(cls, graph: nx.Graph) -> "BulkGraph":
        """Build a :class:`BulkGraph` from a networkx graph."""
        if graph.number_of_nodes() == 0:
            raise ValueError("bulk graph must contain at least one node")
        if any(u == v for u, v in graph.edges()):
            raise ValueError("bulk graph must not contain self loops")

        nodes: tuple[Hashable, ...] = tuple(sorted(graph.nodes()))
        n = len(nodes)
        index = {node: position for position, node in enumerate(nodes)}

        degrees = np.zeros(n, dtype=np.int64)
        col_chunks: list[np.ndarray] = []
        for position, node in enumerate(nodes):
            # Sorting identifiers and then mapping to indices preserves the
            # simulator's ascending-neighbour delivery order because the
            # index assignment above is monotone in the sorted identifiers.
            neighbor_indices = np.fromiter(
                (index[neighbor] for neighbor in sorted(graph.neighbors(node))),
                dtype=np.int64,
            )
            degrees[position] = neighbor_indices.size
            col_chunks.append(neighbor_indices)

        indptr = np.concatenate(([0], np.cumsum(degrees)))
        col = np.concatenate(col_chunks) if col_chunks else np.empty(0, dtype=np.int64)
        return cls(indptr, col, nodes=nodes)

    @classmethod
    def from_edges(
        cls,
        n: int,
        u: np.ndarray,
        v: np.ndarray,
        nodes: Sequence[Hashable] | None = None,
    ) -> "BulkGraph":
        """Build a :class:`BulkGraph` from arrays of undirected edges.

        Duplicate edges (in either orientation) are merged; self loops are
        rejected.  The CSR rows come out in ascending neighbour order, so
        the result is interchangeable with :meth:`from_graph` of the same
        edge set.
        """
        if n <= 0:
            raise ValueError("bulk graph must contain at least one node")
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape:
            raise ValueError("u and v must have the same shape")
        if u.size and (
            min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n
        ):
            raise ValueError("edge endpoints must index nodes (0..n-1)")
        if np.any(u == v):
            raise ValueError("bulk graph must not contain self loops")

        # Symmetrize, then dedupe via the flattened (row, col) key.
        src = np.concatenate([u, v])
        dst = np.concatenate([v, u])
        keys = np.unique(src * np.int64(n) + dst)
        row = keys // n
        col = keys % n
        indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(row, minlength=n)))
        ).astype(np.int64)
        return cls(indptr, col, nodes=nodes)

    def to_networkx(self) -> nx.Graph:
        """Materialise the equivalent networkx graph (for tests/interop)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.nodes)
        mask = self.row < self.col
        node_array = self.nodes
        graph.add_edges_from(
            (node_array[int(a)], node_array[int(b)])
            for a, b in zip(self.row[mask], self.col[mask])
        )
        return graph

    @property
    def max_degree(self) -> int:
        """The maximum degree Δ (0 for an edgeless graph)."""
        return int(self.degrees.max()) if self.n else 0

    @property
    def number_of_edges(self) -> int:
        """Number of undirected edges m."""
        return int(self.col.size // 2)

    def index_of(self, items: Iterable[Hashable]) -> np.ndarray:
        """Map node identifiers to their array positions."""
        if self._index is None:
            self._index = {
                node: position for position, node in enumerate(self.nodes)
            }
        return np.fromiter((self._index[item] for item in items), dtype=np.int64)

    def is_dominating_set(self, flags: np.ndarray) -> bool:
        """Whether the flagged nodes dominate every node (closed coverage)."""
        flags = np.asarray(flags, dtype=bool)
        return bool(np.all(flags | self.neighbor_any(flags)))

    def check_lp_feasible(
        self, x: np.ndarray, tolerance: float = 1e-7
    ) -> tuple[bool, float]:
        """Check ``N·x ≥ 1`` and ``x ≥ 0`` up to ``tolerance`` on the CSR.

        Returns ``(feasible, max_violation)``; same verdict as building the
        dense LP and calling ``check_primal_feasible`` but O(n + m).
        """
        x = np.asarray(x, dtype=np.float64)
        nonnegativity_violation = float(np.max(np.maximum(-x, 0.0), initial=0.0))
        coverage = x + self.neighbor_sum(x)
        coverage_violation = float(np.max(np.maximum(1.0 - coverage, 0.0), initial=0.0))
        max_violation = max(nonnegativity_violation, coverage_violation)
        return max_violation <= tolerance, max_violation

    # ------------------------------------------------------------------ #
    # Neighbourhood operators                                             #
    # ------------------------------------------------------------------ #

    def neighbor_sum(
        self, values: np.ndarray, edge_mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-node sum of ``values`` over the *open* neighbourhood.

        Accumulates each row left to right in ascending neighbour order,
        reproducing the node programs' ``sum(neighbor_payloads.values())``
        bit for bit.  ``edge_mask`` (one bool per CSR position) drops
        masked-out entries from the accumulation entirely -- the surviving
        entries keep their relative order, so the sum equals the simulated
        inbox sum of only the delivered messages, bit for bit.
        """
        values = np.asarray(values, dtype=np.float64)
        if edge_mask is None:
            return np.bincount(
                self.row, weights=values[self.col], minlength=self.n
            )
        edge_mask = np.asarray(edge_mask, dtype=bool)
        return np.bincount(
            self.row[edge_mask],
            weights=values[self.col[edge_mask]],
            minlength=self.n,
        )

    def neighbor_count(
        self, flags: np.ndarray, edge_mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-node count of ``True`` flags over the open neighbourhood.

        ``edge_mask`` restricts the count to unmasked CSR positions.
        """
        mask = np.asarray(flags, dtype=bool)[self.col]
        if edge_mask is not None:
            mask = mask & np.asarray(edge_mask, dtype=bool)
        return np.bincount(self.row[mask], minlength=self.n)

    def closed_max(
        self,
        values: np.ndarray,
        senders: np.ndarray | None = None,
        edge_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-node maximum of ``values`` over the *closed* neighbourhood.

        ``senders`` optionally masks which neighbours contribute: entries
        with a ``False`` sender flag are ignored, exactly as the simulator
        drops the values of nodes that terminated and no longer broadcast.
        ``edge_mask`` masks individual CSR positions the same way (dropped
        messages under fault injection).  A node's *own* value always
        participates (the per-node programs seed their running maximum
        with it before reading the inbox).
        """
        values = np.asarray(values)
        result = values.copy()
        if self.col.size:
            contributions = values[self.col]
            keep: np.ndarray | None = None
            if senders is not None:
                keep = np.asarray(senders, dtype=bool)[self.col]
            if edge_mask is not None:
                edge_mask = np.asarray(edge_mask, dtype=bool)
                keep = edge_mask if keep is None else keep & edge_mask
            if keep is not None:
                floor = (
                    np.iinfo(values.dtype).min
                    if np.issubdtype(values.dtype, np.integer)
                    else -np.inf
                )
                contributions = np.where(keep, contributions, floor)
            row_max = np.maximum.reduceat(contributions, self._nonempty_starts)
            result[self._nonempty] = np.maximum(values[self._nonempty], row_max)
        return result

    def neighbor_any(
        self, flags: np.ndarray, edge_mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Whether any open-neighbourhood flag is set, per node."""
        return self.neighbor_count(flags, edge_mask=edge_mask) > 0

    def closed_chain_sum(
        self,
        carry: np.ndarray,
        values: np.ndarray,
        edge_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Left-to-right chain ``carry_i + Σ values_j`` over closed N[i].

        For each node ``i`` this evaluates
        ``(((carry_i + v_{j1}) + v_{j2}) + ...)`` where ``j1 < j2 < ...``
        ranges over the *closed* neighbourhood of ``i`` in ascending node
        order -- the node's own value participates at its sorted position,
        and the carry is the leading term of the chain.  This is exactly
        the accumulation order of a central bookkeeping loop that walks
        nodes in ascending order and does ``acc[i] += values[j]`` for every
        sender ``j`` with ``i`` in N[j], starting from ``acc = carry`` --
        the order the Lemma 4/7 z-value reconstruction in
        :mod:`repro.core.invariants` uses -- so results are bitwise equal
        to that Python loop, not merely close.

        ``edge_mask`` (one bool per CSR position) removes masked-out
        neighbour contributions from the chain entirely; the carry and the
        node's own value always participate (both are local state, not
        messages).
        """
        if self._chain_senders is None:
            # Augmented CSR: per row, one leading carry slot, then the
            # closed neighbourhood with the node itself inserted at its
            # ascending position among its neighbours.
            n = self.n
            total = int(self.col.size) + 2 * n
            slots = self.degrees + 2
            indptr = np.concatenate(
                ([0], np.cumsum(slots))
            ).astype(np.int64)
            senders = np.empty(total, dtype=np.int64)
            carry_slots = indptr[:-1]
            senders[carry_slots] = -1  # placeholder, filled per call
            offset_in_row = np.arange(self.col.size, dtype=np.int64) - self.indptr[
                self.row
            ]
            entry_slots = (
                indptr[self.row] + 1 + offset_in_row + (self.col > self.row)
            )
            senders[entry_slots] = self.col
            count_less = np.bincount(
                self.row[self.col < self.row], minlength=n
            ).astype(np.int64)
            self_slots = carry_slots + 1 + count_less
            senders[self_slots] = np.arange(n, dtype=np.int64)
            self._chain_senders = senders
            self._chain_carry_slots = carry_slots
            self._chain_entry_slots = entry_slots
            self._chain_value_mask = np.ones(total, dtype=bool)
            self._chain_value_mask[carry_slots] = False
            self._chain_row = np.repeat(np.arange(n, dtype=np.int64), slots)
        weights = np.empty(self._chain_senders.size, dtype=np.float64)
        weights[self._chain_carry_slots] = np.asarray(carry, dtype=np.float64)
        mask = self._chain_value_mask
        weights[mask] = np.asarray(values, dtype=np.float64)[
            self._chain_senders[mask]
        ]
        if edge_mask is None:
            return np.bincount(self._chain_row, weights=weights, minlength=self.n)
        edge_mask = np.asarray(edge_mask, dtype=bool)
        keep = np.ones(self._chain_senders.size, dtype=bool)
        keep[self._chain_entry_slots[~edge_mask]] = False
        return np.bincount(
            self._chain_row[keep], weights=weights[keep], minlength=self.n
        )


class BulkMetricsBuilder:
    """Accumulates modeled message statistics for a bulk execution.

    Call :meth:`record_exchange` once per "send to all neighbours" step, in
    execution order, with the payload bit-size each node broadcasts; then
    :meth:`build` produces an :class:`ExecutionMetrics` laid out exactly as
    the synchronous runner would have recorded the same (fault-free)
    execution.
    """

    def __init__(self, degrees: np.ndarray) -> None:
        self._degrees = np.asarray(degrees, dtype=np.int64)
        # (messages, total_bits, max_bits) per exchange, in execution order.
        self._exchanges: list[tuple[int, int, int]] = []
        self._bits_per_node = np.zeros(self._degrees.size, dtype=np.int64)
        self._messages_per_node = np.zeros(self._degrees.size, dtype=np.int64)

    def record_exchange(
        self, payload_bits: np.ndarray | int, senders: np.ndarray | None = None
    ) -> None:
        """Account for one broadcast exchange.

        Parameters
        ----------
        payload_bits:
            Bits of the payload each node sends to *each* neighbour --
            either a per-node array or a scalar for uniform payloads
            (e.g. ``BOOL_PAYLOAD_BITS`` for colour flags).
        senders:
            Optional boolean mask of the nodes that broadcast in this
            exchange.  Algorithms with per-node early termination (LRG)
            pass the still-running mask so the modeled counts equal the
            simulator's, where terminated programs stop sending.
        """
        bits = np.broadcast_to(
            np.asarray(payload_bits, dtype=np.int64), self._degrees.shape
        )
        degrees = self._degrees
        if senders is None:
            sent = degrees
        else:
            sent = np.where(np.asarray(senders, dtype=bool), degrees, 0)
        active = np.flatnonzero(sent > 0)
        total_bits = int((bits * sent).sum())
        max_bits = int(bits[active].max()) if active.size else 0
        self._exchanges.append((int(sent.sum()), total_bits, max_bits))
        self._bits_per_node += bits * sent
        self._messages_per_node += sent

    @property
    def exchange_count(self) -> int:
        """Number of exchanges recorded so far (= rounds of the execution)."""
        return len(self._exchanges)

    def build(self, nodes: Sequence[Hashable]) -> ExecutionMetrics:
        """Assemble the final :class:`ExecutionMetrics`.

        The runner folds the start-up exchange into the round-0 entry and
        appends one empty entry for the final round in which every program
        terminates; executions with a single exchange have no such trailer.
        """
        per_round: list[tuple[int, int, int]] = []  # (messages, bits, max_bits)
        exchanges = self._exchanges
        if len(exchanges) == 1:
            per_round.append(exchanges[0])
        elif len(exchanges) >= 2:
            first_messages = exchanges[0][0] + exchanges[1][0]
            first_bits = exchanges[0][1] + exchanges[1][1]
            first_max = max(exchanges[0][2], exchanges[1][2])
            per_round.append((first_messages, first_bits, first_max))
            per_round.extend(exchanges[2:])
            per_round.append((0, 0, 0))

        metrics = ExecutionMetrics()
        for round_index, (sent, total_bits, max_bits) in enumerate(per_round):
            metrics.rounds.append(
                RoundMetrics(
                    round_index=round_index,
                    messages_sent=sent,
                    total_bits=total_bits,
                    max_message_bits=max_bits,
                )
            )
        positions = np.flatnonzero(self._messages_per_node > 0)
        senders = [nodes[position] for position in positions.tolist()]
        metrics.messages_per_node.update(
            zip(senders, self._messages_per_node[positions].tolist())
        )
        metrics.bits_per_node.update(
            zip(senders, self._bits_per_node[positions].tolist())
        )
        return metrics
