"""The synchronous round engine.

:class:`SynchronousRunner` drives a :class:`~repro.simulator.network.Network`
through the LOCAL-model lifecycle:

1. Call every node's ``on_start``; the returned messages form the round-0
   mailboxes.
2. For each round: deliver mailboxes, call every node's ``on_round``,
   collect the returned messages into next-round mailboxes, and update
   metrics.
3. Stop when every node reports termination (or a round limit is hit).

Messages sent to non-neighbours are rejected -- the LOCAL model only allows
communication along edges -- which catches programming errors in node
programs early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.simulator.faults import FaultModel, NoFaults

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.columnar import ColumnarTrace
from repro.simulator.message import Message
from repro.simulator.metrics import ExecutionMetrics
from repro.simulator.network import Network, ProgramFactory
from repro.simulator.trace import ExecutionTrace

import networkx as nx


class SimulationError(RuntimeError):
    """Raised when a node program violates the communication model."""


@dataclass
class ExecutionResult:
    """Everything produced by one simulator execution.

    Attributes
    ----------
    results:
        Per-node local outputs (``program.result()``).
    metrics:
        Round/message metrics for the execution.
    trace:
        The execution trace (empty unless tracing was enabled and programs
        recorded events).
    terminated:
        Whether every node terminated before the round limit.  Nodes
        permanently crashed by the fault model (``is_crashed``) count as
        done: a crashed node can never terminate, and waiting for it would
        turn every crash into a round-limit timeout.
    drops:
        Per-delivery-round ``(dropped, delivered)`` message counts, as
        decided by the fault model.  Under :class:`NoFaults` every round
        reports zero drops.
    """

    results: dict[int, Any]
    metrics: ExecutionMetrics
    trace: "ExecutionTrace | ColumnarTrace"
    terminated: bool
    drops: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        """Number of rounds executed."""
        return self.metrics.round_count


class SynchronousRunner:
    """Execute a network of node programs in synchronous rounds.

    Parameters
    ----------
    network:
        The network to execute.
    fault_model:
        Optional fault-injection policy (default: fault-free execution,
        matching the paper's model).
    max_rounds:
        Hard cap on the number of rounds, as a safety net against
        non-terminating programs.  The paper's algorithms terminate after a
        number of rounds that is known in advance, so hitting this limit in
        a test indicates a bug.
    collect_trace:
        Whether to hand programs an :class:`ExecutionTrace` (programs that
        support tracing expose a ``bind_trace`` method; others ignore it).
    trace:
        Optional trace object to record into instead of a fresh
        :class:`ExecutionTrace`.  Anything with the same ``record``
        signature works; pass a
        :class:`~repro.simulator.columnar.ColumnarTrace` to have the
        runner record natively into columnar storage.  Supplying a trace
        implies ``collect_trace=True``.

    When tracing is enabled and a fault model other than
    :class:`~repro.simulator.faults.NoFaults` is installed, the runner also
    records one ``"message-drops"`` event per delivery round (node id -1)
    with the number of dropped and delivered messages, so fault runs are
    observable through the same trace pipeline.
    """

    def __init__(
        self,
        network: Network,
        fault_model: FaultModel | None = None,
        max_rounds: int = 100_000,
        collect_trace: bool = False,
        trace: "ExecutionTrace | ColumnarTrace | None" = None,
    ) -> None:
        if max_rounds <= 0:
            raise ValueError("max_rounds must be positive")
        self._network = network
        self._fault_model: FaultModel = fault_model or NoFaults()
        self._max_rounds = max_rounds
        self._collect_trace = collect_trace or trace is not None
        self._trace = trace

    # ------------------------------------------------------------------ #
    # Execution                                                           #
    # ------------------------------------------------------------------ #

    def run(self) -> ExecutionResult:
        """Run the network to termination (or the round limit)."""
        network = self._network
        metrics = ExecutionMetrics()
        trace = self._trace if self._trace is not None else ExecutionTrace()
        self._drops: dict[int, list[int]] = {}
        count_drops = self._collect_trace and not isinstance(
            self._fault_model, NoFaults
        )

        if self._collect_trace:
            for node_id in network.node_ids:
                program = network.program(node_id)
                bind = getattr(program, "bind_trace", None)
                if callable(bind):
                    bind(trace)

        mailboxes: dict[int, list[Message]] = {
            node_id: [] for node_id in network.node_ids
        }

        # Round -1: on_start.  Its messages are delivered in round 0.
        startup_metrics = metrics.begin_round(round_index=0)
        for node_id in network.node_ids:
            context = network.context(node_id)
            outbox = network.program(node_id).on_start(context)
            self._validate_outbox(node_id, outbox)
            stamped = [message.with_round(0) for message in outbox]
            metrics.record_messages(startup_metrics, stamped)
            self._deliver(stamped, mailboxes, round_index=0)

        terminated = self._all_done(next_round=0)
        round_index = 0
        while not terminated and round_index < self._max_rounds:
            inboxes = mailboxes
            mailboxes = {node_id: [] for node_id in network.node_ids}
            # Reuse the startup round's metrics object for round 0 so that
            # on_start messages and round-0 processing share one round entry;
            # afterwards each round gets its own entry.
            round_metrics = (
                startup_metrics
                if round_index == 0
                else metrics.begin_round(round_index=round_index)
            )

            for node_id in network.node_ids:
                program = network.program(node_id)
                if program.is_terminated():
                    continue
                if not self._fault_model.node_alive(node_id, round_index):
                    continue
                context = network.context(node_id)
                outbox = program.on_round(
                    context, round_index, tuple(inboxes[node_id])
                )
                self._validate_outbox(node_id, outbox)
                stamped = [message.with_round(round_index + 1) for message in outbox]
                metrics.record_messages(round_metrics, stamped)
                self._deliver(stamped, mailboxes, round_index=round_index + 1)

            round_index += 1
            terminated = self._all_done(next_round=round_index)

        if count_drops and self._drops:
            # One dense per-round entry (a column in columnar form); the
            # sentinel node id -1 marks runner-level rather than node events.
            last_round = max(self._drops)
            for delivery_round in range(last_round + 1):
                dropped, delivered = self._drops.get(delivery_round, [0, 0])
                trace.record(
                    delivery_round,
                    -1,
                    "message-drops",
                    dropped=dropped,
                    delivered=delivered,
                )

        return ExecutionResult(
            results=network.results(),
            metrics=metrics,
            trace=trace,
            terminated=terminated,
            drops={
                delivery_round: (counts[0], counts[1])
                for delivery_round, counts in sorted(self._drops.items())
            },
        )

    # ------------------------------------------------------------------ #
    # Internals                                                           #
    # ------------------------------------------------------------------ #

    def _all_done(self, next_round: int) -> bool:
        """Whether execution is over before ``next_round`` runs.

        True when every node either terminated or is permanently crashed
        (fault models expose the latter through an optional ``is_crashed``
        hook; models without it only finish by unanimous termination).
        """
        network = self._network
        if network.all_terminated():
            return True
        is_crashed = getattr(self._fault_model, "is_crashed", None)
        if is_crashed is None:
            return False
        return all(
            network.program(node_id).is_terminated()
            or is_crashed(node_id, next_round)
            for node_id in network.node_ids
        )

    def _validate_outbox(self, node_id: int, outbox: Sequence[Message]) -> None:
        """Reject messages that violate the LOCAL communication model."""
        neighbors = set(self._network.neighbors(node_id))
        for message in outbox:
            if message.sender != node_id:
                raise SimulationError(
                    f"node {node_id} attempted to forge a message from "
                    f"{message.sender}"
                )
            if message.receiver not in neighbors:
                raise SimulationError(
                    f"node {node_id} attempted to send to non-neighbour "
                    f"{message.receiver}"
                )

    def _deliver(
        self,
        messages: Sequence[Message],
        mailboxes: dict[int, list[Message]],
        round_index: int,
    ) -> None:
        """Place messages into receiver mailboxes, applying fault policy."""
        counts = self._drops.setdefault(round_index, [0, 0])
        for message in messages:
            if self._fault_model.deliver(message, round_index):
                mailboxes[message.receiver].append(message)
                counts[1] += 1
            else:
                counts[0] += 1


def run_program(
    graph: nx.Graph,
    program_factory: ProgramFactory,
    seed: int | None = None,
    fault_model: FaultModel | None = None,
    max_rounds: int = 100_000,
    collect_trace: bool = False,
    trace: "ExecutionTrace | ColumnarTrace | None" = None,
) -> ExecutionResult:
    """Convenience wrapper: build a network and run it in one call.

    Parameters
    ----------
    graph:
        Communication graph.
    program_factory:
        Per-node program constructor ``(node_id, network) -> NodeProgram``.
    seed:
        Seed for per-node randomness.
    fault_model, max_rounds, collect_trace, trace:
        Forwarded to :class:`SynchronousRunner`.

    Returns
    -------
    ExecutionResult
    """
    network = Network(graph, program_factory, seed=seed)
    runner = SynchronousRunner(
        network,
        fault_model=fault_model,
        max_rounds=max_rounds,
        collect_trace=collect_trace,
        trace=trace,
    )
    return runner.run()
