"""Synchronous message-passing (LOCAL model) simulator.

The algorithms of Kuhn & Wattenhofer are stated in the synchronous LOCAL
model: time proceeds in global rounds, and in each round every node may send
one message to each of its neighbours, receive the messages sent to it in the
same round, and perform arbitrary local computation.

This package provides a faithful, deterministic executable version of that
model:

* :class:`~repro.simulator.message.Message` -- an immutable message envelope
  with payload-size accounting (in bits), so that the paper's ``O(log Δ)``
  message-size claim can be *measured* rather than assumed.
* :class:`~repro.simulator.node.NodeProgram` -- the protocol every
  distributed algorithm implements (one ``on_round`` callback per round).
* :class:`~repro.simulator.network.Network` -- the static communication
  graph plus per-node program instances.
* :class:`~repro.simulator.runtime.SynchronousRunner` -- the round engine:
  it collects outboxes, delivers messages, advances rounds, records metrics
  and optional traces, and applies fault-injection policies.
* :class:`~repro.simulator.metrics.ExecutionMetrics` -- per-round and
  aggregate message/round statistics.
* :mod:`~repro.simulator.faults` -- crash-stop and message-loss fault
  injection used by the robustness experiments.
* :mod:`~repro.simulator.trace` -- structured execution traces (used by the
  Figure-1 cascade experiment).
* :mod:`~repro.simulator.columnar` -- the same traces as NumPy columns
  (structure-of-arrays), losslessly convertible both ways and cheap enough
  to collect at n >= 20 000 on the vectorized backend.
* :mod:`~repro.simulator.bulk` -- the CSR substrate of the *vectorized*
  backend: whole-graph neighbourhood operators with the simulator's
  accumulation order, plus modeled :class:`ExecutionMetrics`.
"""

from repro.simulator.bulk import BulkGraph, BulkMetricsBuilder
from repro.simulator.columnar import ColumnarTrace
from repro.simulator.faults import (
    CrashStopFaults,
    FaultModel,
    MessageLossFaults,
    NoFaults,
)
from repro.simulator.message import Message, broadcast, payload_size_bits
from repro.simulator.metrics import ExecutionMetrics, RoundMetrics
from repro.simulator.network import Network
from repro.simulator.node import NodeContext, NodeProgram
from repro.simulator.runtime import ExecutionResult, SynchronousRunner, run_program
from repro.simulator.script import GeneratorNodeProgram
from repro.simulator.trace import ExecutionTrace, TraceEvent

__all__ = [
    "BulkGraph",
    "BulkMetricsBuilder",
    "ColumnarTrace",
    "CrashStopFaults",
    "ExecutionMetrics",
    "ExecutionResult",
    "ExecutionTrace",
    "FaultModel",
    "GeneratorNodeProgram",
    "Message",
    "MessageLossFaults",
    "Network",
    "NoFaults",
    "NodeContext",
    "NodeProgram",
    "RoundMetrics",
    "SynchronousRunner",
    "TraceEvent",
    "broadcast",
    "payload_size_bits",
    "run_program",
]
