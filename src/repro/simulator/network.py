"""Network: the static communication graph plus per-node programs.

A :class:`Network` couples a :class:`networkx.Graph` with one
:class:`~repro.simulator.node.NodeProgram` instance per node and the
per-node :class:`~repro.simulator.node.NodeContext` objects the programs
see.  It performs the (purely structural) validation that the rest of the
simulator relies on: node identifiers are hashable and stable, programs
exist for every node, and each node's neighbour list is sorted so that
executions are deterministic.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Mapping

import networkx as nx

from repro.simulator.node import NodeContext, NodeProgram

ProgramFactory = Callable[[int, "Network"], NodeProgram]


class Network:
    """The communication graph and the algorithm instances running on it.

    Parameters
    ----------
    graph:
        The (undirected, simple) communication graph.  Self loops are
        rejected: the paper's closed neighbourhood already includes the node
        itself, so a self loop would double-count it.
    program_factory:
        Callable ``(node_id, network) -> NodeProgram`` constructing the
        local algorithm for each node.  The network is passed so factories
        can hand global constants (such as Δ for Algorithm 2) to programs,
        mirroring the paper's "all nodes know Δ" assumption.
    seed:
        Seed for per-node random generators.  Each node ``v`` receives a
        generator seeded with ``(seed, v)`` so runs are reproducible.
    """

    def __init__(
        self,
        graph: nx.Graph,
        program_factory: ProgramFactory,
        seed: int | None = None,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("network graph must contain at least one node")
        if any(u == v for u, v in graph.edges()):
            raise ValueError("network graph must not contain self loops")
        if graph.is_directed():
            raise ValueError("network graph must be undirected")

        self._graph = graph
        self._seed = seed
        self._node_ids: tuple[int, ...] = tuple(sorted(graph.nodes()))
        self._contexts: dict[int, NodeContext] = {}
        self._programs: dict[int, NodeProgram] = {}

        for node_id in self._node_ids:
            neighbors = tuple(sorted(graph.neighbors(node_id)))
            # Each node gets its own deterministic stream derived from the
            # experiment seed and the node id (string seeds are hashed with a
            # stable algorithm by ``random.seed``, unlike tuple hashing).
            rng = random.Random(f"{seed}:{node_id}" if seed is not None else None)
            self._contexts[node_id] = NodeContext(
                node_id=node_id, neighbors=neighbors, rng=rng
            )
        # Programs are built after contexts so factories may inspect them.
        for node_id in self._node_ids:
            self._programs[node_id] = program_factory(node_id, self)

    # ------------------------------------------------------------------ #
    # Structure                                                           #
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> nx.Graph:
        """The underlying communication graph."""
        return self._graph

    @property
    def node_ids(self) -> tuple[int, ...]:
        """All node identifiers, sorted ascending."""
        return self._node_ids

    @property
    def node_count(self) -> int:
        """Number of nodes n."""
        return len(self._node_ids)

    @property
    def max_degree(self) -> int:
        """The maximum degree Δ of the graph."""
        return max(degree for _, degree in self._graph.degree())

    def degree(self, node_id: int) -> int:
        """Degree δ_i of a node."""
        return self._graph.degree(node_id)

    def neighbors(self, node_id: int) -> tuple[int, ...]:
        """Open neighbourhood of a node, sorted."""
        return self._contexts[node_id].neighbors

    def closed_neighborhood(self, node_id: int) -> tuple[int, ...]:
        """Closed neighbourhood N_i = {v_i} ∪ neighbours."""
        return self._contexts[node_id].closed_neighborhood

    # ------------------------------------------------------------------ #
    # Programs                                                            #
    # ------------------------------------------------------------------ #

    def context(self, node_id: int) -> NodeContext:
        """The :class:`NodeContext` of a node."""
        return self._contexts[node_id]

    def program(self, node_id: int) -> NodeProgram:
        """The :class:`NodeProgram` instance of a node."""
        return self._programs[node_id]

    def programs(self) -> Mapping[int, NodeProgram]:
        """All program instances keyed by node id."""
        return dict(self._programs)

    def results(self) -> dict[int, object]:
        """Collect each node's local output (``program.result()``)."""
        return {node_id: self._programs[node_id].result() for node_id in self._node_ids}

    def all_terminated(self) -> bool:
        """Whether every node program reports termination."""
        return all(
            self._programs[node_id].is_terminated() for node_id in self._node_ids
        )

    # ------------------------------------------------------------------ #
    # Convenience constructors                                            #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]],
        program_factory: ProgramFactory,
        isolated_nodes: Iterable[int] = (),
        seed: int | None = None,
    ) -> "Network":
        """Build a network from an edge list plus optional isolated nodes."""
        graph = nx.Graph()
        graph.add_nodes_from(isolated_nodes)
        graph.add_edges_from(edges)
        return cls(graph, program_factory, seed=seed)
