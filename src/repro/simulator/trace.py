"""Structured execution traces.

Traces record *what a node did in which round*.  They are optional (the
runner only collects them when asked to) and are used by:

* the Figure-1 reproduction, which needs the per-iteration sequence of
  active-degree thresholds and node colourings;
* the invariant monitors in :mod:`repro.core.invariants`, which assert the
  paper's Lemmas 2-7 against recorded per-round state;
* debugging of node programs.

For large executions the same information is available in columnar
(structure-of-arrays) form -- see :mod:`repro.simulator.columnar`; the two
representations convert losslessly via :meth:`ExecutionTrace.to_columnar`
and :meth:`~repro.simulator.columnar.ColumnarTrace.to_events`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.columnar import ColumnarTrace


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    round_index:
        Round in which the event happened (-1 for pre-round setup).
    node_id:
        Node that emitted the event.
    kind:
        Short event label, e.g. ``"x-update"``, ``"color"``, ``"active"``.
    data:
        Arbitrary event payload (kept small; copied verbatim into reports).
    """

    round_index: int
    node_id: int
    kind: str
    data: Mapping[str, Any] = field(default_factory=dict)


class ExecutionTrace:
    """An append-only list of :class:`TraceEvent` with query helpers."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def record(
        self,
        round_index: int,
        node_id: int,
        kind: str,
        **data: Any,
    ) -> None:
        """Append one event."""
        self._events.append(
            TraceEvent(round_index=round_index, node_id=node_id, kind=kind, data=data)
        )

    # ------------------------------------------------------------------ #
    # Queries                                                             #
    # ------------------------------------------------------------------ #

    def events(
        self,
        kind: str | None = None,
        node_id: int | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        """Filter events by kind, node and/or an arbitrary predicate."""
        selected: Iterable[TraceEvent] = self._events
        if kind is not None:
            selected = (event for event in selected if event.kind == kind)
        if node_id is not None:
            selected = (event for event in selected if event.node_id == node_id)
        if predicate is not None:
            selected = (event for event in selected if predicate(event))
        return list(selected)

    def rounds(self) -> list[int]:
        """Sorted list of distinct round indices that have events."""
        return sorted({event.round_index for event in self._events})

    def by_round(self) -> dict[int, list[TraceEvent]]:
        """Group events by round index."""
        grouped: dict[int, list[TraceEvent]] = {}
        for event in self._events:
            grouped.setdefault(event.round_index, []).append(event)
        return grouped

    def last_value(self, node_id: int, kind: str, key: str, default: Any = None) -> Any:
        """The most recent ``data[key]`` of a given node/kind, if any."""
        for event in reversed(self._events):
            if event.node_id == node_id and event.kind == kind and key in event.data:
                return event.data[key]
        return default

    # ------------------------------------------------------------------ #
    # Bridges                                                             #
    # ------------------------------------------------------------------ #

    def to_columnar(self) -> "ColumnarTrace":
        """Convert to a columnar (structure-of-arrays) trace, losslessly.

        ``trace.to_columnar().to_events()`` reproduces the event stream
        bitwise: same order, same kinds, same payload keys and values.
        """
        from repro.simulator.columnar import ColumnarTrace

        return ColumnarTrace.from_events(self)
