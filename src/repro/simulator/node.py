"""Node programs and their execution context.

A *node program* is the local algorithm executed by every node of the
network.  The LOCAL model gives each node access only to

* its own identifier,
* the identifiers of its direct neighbours (its ports), and
* the messages received from those neighbours in previous rounds.

The :class:`NodeContext` object is the only window a program has onto the
network; it deliberately exposes nothing global (no graph object, no maximum
degree, no node count) so that an algorithm cannot accidentally "cheat" by
reading state the distributed model does not provide.  Algorithm 2 of the
paper assumes that Δ is known to all nodes; in that case Δ is passed to the
program's constructor explicitly, which mirrors the paper's assumption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Protocol, Sequence, runtime_checkable

from repro.simulator.message import Message, broadcast


@dataclass
class NodeContext:
    """Per-node view of the network handed to a :class:`NodeProgram`.

    Attributes
    ----------
    node_id:
        This node's identifier (stable across rounds).
    neighbors:
        Identifiers of the node's direct neighbours, sorted ascending.
        The *closed* neighbourhood of the paper is ``{node_id} ∪ neighbors``.
    rng:
        A per-node pseudo random generator.  Each node receives its own
        generator seeded from the experiment seed and the node id, so
        executions are reproducible yet nodes draw independent randomness.
    """

    node_id: int
    neighbors: tuple[int, ...]
    rng: random.Random = field(default_factory=random.Random)

    @property
    def degree(self) -> int:
        """The node degree δ_i (number of neighbours, excluding itself)."""
        return len(self.neighbors)

    @property
    def closed_neighborhood(self) -> tuple[int, ...]:
        """The closed neighbourhood N_i = {v_i} ∪ neighbours."""
        return (self.node_id, *self.neighbors)

    def send_all(self, payload: Any, tag: str = "") -> list[Message]:
        """Build messages carrying ``payload`` to every neighbour."""
        return broadcast(self.node_id, self.neighbors, payload, tag=tag)


@runtime_checkable
class NodeProgram(Protocol):
    """Protocol implemented by every distributed algorithm.

    The runner drives the program with the following lifecycle:

    1. :meth:`on_start` is called once before round 0; the returned messages
       are delivered at the beginning of round 0.
    2. For each round r = 0, 1, 2, ... the runner calls
       :meth:`on_round` with the messages received in that round.  The
       returned messages are delivered in round r + 1.
    3. The execution stops when every node's :meth:`is_terminated` returns
       ``True`` (or when an explicit round limit is reached).
    4. :meth:`result` returns the node's local output.

    Programs must be deterministic given their ``NodeContext.rng``.
    """

    def on_start(self, ctx: NodeContext) -> Sequence[Message]:
        """Initialise local state; return the messages for round 0."""
        ...

    def on_round(
        self, ctx: NodeContext, round_index: int, inbox: Sequence[Message]
    ) -> Sequence[Message]:
        """Process one synchronous round.

        Parameters
        ----------
        ctx:
            The node's context.
        round_index:
            Zero-based index of the current round.
        inbox:
            All messages addressed to this node that were sent in the
            previous round (or by ``on_start`` for round 0).

        Returns
        -------
        Sequence[Message]
            Messages to deliver in the next round.
        """
        ...

    def is_terminated(self) -> bool:
        """Whether this node has finished its local computation."""
        ...

    def result(self) -> Any:
        """The node's local output once terminated."""
        ...


class StatefulNodeProgram:
    """Convenience base class with common bookkeeping.

    Subclasses only need to set ``self._terminated = True`` when done and
    store their output in ``self._result``.  The base class provides sensible
    defaults for :meth:`is_terminated` and :meth:`result` plus an
    ``inbox_by_sender`` helper that most of the paper's algorithms use
    (they always read "the value my neighbour v_j sent me").
    """

    def __init__(self) -> None:
        self._terminated = False
        self._result: Any = None

    def is_terminated(self) -> bool:
        return self._terminated

    def result(self) -> Any:
        return self._result

    @staticmethod
    def inbox_by_sender(inbox: Iterable[Message]) -> dict[int, Any]:
        """Map ``sender -> payload`` for a round's inbox.

        If a sender appears more than once (which the paper's algorithms
        never do within a single round), the last payload wins.
        """
        return {message.sender: message.payload for message in inbox}

    @staticmethod
    def inbox_by_tag(inbox: Iterable[Message]) -> dict[str, dict[int, Any]]:
        """Group an inbox first by message tag, then by sender."""
        grouped: dict[str, dict[int, Any]] = {}
        for message in inbox:
            grouped.setdefault(message.tag, {})[message.sender] = message.payload
        return grouped
