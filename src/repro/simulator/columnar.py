"""Columnar (structure-of-arrays) execution traces.

:class:`~repro.simulator.trace.ExecutionTrace` stores one Python object per
event, which is perfect for message-level debugging but caps the invariant
monitors and per-phase diagnostics at the simulator's scale (n ≈ 2000).
:class:`ColumnarTrace` stores the same information as NumPy columns:

* three flat per-event arrays -- ``round_index``, ``node_id`` and an integer
  kind id -- preserve the exact append order of the event stream;
* per *kind*, one array per payload key (x-values, colors, active flags,
  dynamic degrees, drop counts, ...), in the order events of that kind were
  appended.

Together the two views are lossless: :meth:`ColumnarTrace.to_events`
reconstructs the original event stream bitwise (values round-trip through
fixed per-column Python types), and
:meth:`~repro.simulator.trace.ExecutionTrace.to_columnar` converts the other
way.  The simulated runner can record into a ``ColumnarTrace`` natively
(it only needs ``record``), while the vectorized backends append whole
per-iteration snapshots at O(n) array cost via :meth:`record_group`.

Payload values are restricted to ``bool``/``int``/``float``/``str`` scalars
(all the algorithm programs use) and every event of a given kind must carry
the same payload keys -- that uniformity is what makes columns well-defined.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.simulator.trace import ExecutionTrace, TraceEvent

#: Python payload types a column may hold.  ``bool`` must precede ``int``
#: in dispatch because ``bool`` is a subclass of ``int``.
_SCALAR_TYPES = (bool, int, float, str)

_NUMPY_DTYPES = {bool: np.bool_, int: np.int64, float: np.float64}


def _type_of(value: Any) -> type:
    """The column type tag for a scalar payload value."""
    for candidate in _SCALAR_TYPES:
        if isinstance(value, candidate) and not (
            candidate is int and isinstance(value, bool)
        ):
            return candidate
    raise TypeError(
        f"trace payload values must be bool/int/float/str, got "
        f"{type(value).__name__}: {value!r}"
    )


def _type_of_dtype(dtype: np.dtype) -> type:
    """The column type tag for a NumPy array dtype."""
    if dtype == np.bool_:
        return bool
    if np.issubdtype(dtype, np.integer):
        return int
    if np.issubdtype(dtype, np.floating):
        return float
    if dtype.kind in ("U", "S"):
        return str
    raise TypeError(f"trace payload arrays must be bool/int/float/str, got {dtype}")


class _Column:
    """One payload column: chunked appends, lazily concatenated."""

    __slots__ = ("type", "_chunks", "_pending", "_array")

    def __init__(self, type_: type) -> None:
        self.type = type_
        self._chunks: list[np.ndarray] = []
        self._pending: list[Any] = []
        self._array: np.ndarray | None = None

    def append(self, value: Any) -> None:
        self._pending.append(value)
        self._array = None

    def extend(self, values: np.ndarray) -> None:
        self._flush()
        self._chunks.append(values)
        self._array = None

    def _flush(self) -> None:
        if self._pending:
            dtype = _NUMPY_DTYPES.get(self.type)
            self._chunks.append(np.asarray(self._pending, dtype=dtype))
            self._pending = []

    def array(self) -> np.ndarray:
        if self._array is None:
            self._flush()
            if not self._chunks:
                dtype = _NUMPY_DTYPES.get(self.type, "<U1")
                self._array = np.empty(0, dtype=dtype)
            elif len(self._chunks) == 1:
                self._array = self._chunks[0]
            else:
                self._array = np.concatenate(self._chunks)
                self._chunks = [self._array]
        return self._array


class ColumnarTrace:
    """An execution trace stored as per-kind NumPy columns.

    The write API mirrors :class:`~repro.simulator.trace.ExecutionTrace`
    (``record``), so node programs and the synchronous runner can bind a
    ``ColumnarTrace`` without changes; :meth:`record_group` appends one
    whole array slice per call for the vectorized backends.
    """

    def __init__(self) -> None:
        self._kind_names: list[str] = []
        self._kind_ids: dict[str, int] = {}
        # Per-kind payload schema: ordered key list and per-key column.
        self._keys: dict[str, tuple[str, ...]] = {}
        self._columns: dict[str, dict[str, _Column]] = {}
        self._counts: dict[str, int] = {}
        # Flat per-event arrays preserving the append order.
        self._round = _Column(int)
        self._node = _Column(int)
        self._kind = _Column(int)
        self._n_events = 0

    # ------------------------------------------------------------------ #
    # Recording                                                           #
    # ------------------------------------------------------------------ #

    def _kind_id(self, kind: str, keys: tuple[str, ...]) -> int:
        kind_id = self._kind_ids.get(kind)
        if kind_id is None:
            kind_id = len(self._kind_names)
            self._kind_ids[kind] = kind_id
            self._kind_names.append(kind)
            self._keys[kind] = keys
            self._columns[kind] = {}
            self._counts[kind] = 0
        elif self._keys[kind] != keys:
            raise ValueError(
                f"columnar trace kind {kind!r} was recorded with keys "
                f"{self._keys[kind]} but received keys {keys}; every event "
                f"of one kind must carry the same payload keys"
            )
        return kind_id

    def record(self, round_index: int, node_id: int, kind: str, **data: Any) -> None:
        """Append one event (same signature as ``ExecutionTrace.record``)."""
        kind_id = self._kind_id(kind, tuple(data))
        columns = self._columns[kind]
        for key, value in data.items():
            column = columns.get(key)
            if column is None:
                column = columns[key] = _Column(_type_of(value))
            elif _type_of(value) is not column.type:
                raise ValueError(
                    f"columnar trace column {kind!r}/{key!r} holds "
                    f"{column.type.__name__} values but received "
                    f"{type(value).__name__}: {value!r}"
                )
            column.append(value)
        self._round.append(round_index)
        self._node.append(node_id)
        self._kind.append(kind_id)
        self._counts[kind] += 1
        self._n_events += 1

    def record_group(
        self,
        kind: str,
        round_index: int,
        node_ids: np.ndarray,
        **columns: Any,
    ) -> None:
        """Append one event per entry of ``node_ids`` in a single array op.

        Scalar column values are broadcast across the group; array values
        must match ``node_ids`` in length.  All events in the group share
        ``round_index``.  This is the vectorized backends' write path: one
        call per (outer, inner) iteration instead of one per node.
        """
        node_ids = np.asarray(node_ids)
        count = int(node_ids.size)
        if count == 0:
            return
        kind_id = self._kind_id(kind, tuple(columns))
        kind_columns = self._columns[kind]
        for key, values in columns.items():
            array = np.asarray(values)
            if array.ndim == 0:
                array = np.broadcast_to(array, (count,))
            elif array.shape != (count,):
                raise ValueError(
                    f"columnar trace column {kind!r}/{key!r}: expected "
                    f"{count} values, got shape {array.shape}"
                )
            type_ = _type_of_dtype(array.dtype)
            column = kind_columns.get(key)
            if column is None:
                column = kind_columns[key] = _Column(type_)
            elif type_ is not column.type:
                raise ValueError(
                    f"columnar trace column {kind!r}/{key!r} holds "
                    f"{column.type.__name__} values but received an array "
                    f"of dtype {array.dtype}"
                )
            dtype = _NUMPY_DTYPES.get(type_, array.dtype)
            # Always copy: callers (the vectorized engines) mutate their
            # state arrays in place between iterations.
            column.extend(np.array(array, dtype=dtype, copy=True))
        self._round.extend(np.full(count, round_index, dtype=np.int64))
        self._node.extend(node_ids.astype(np.int64))
        self._kind.extend(np.full(count, kind_id, dtype=np.int64))
        self._counts[kind] += count
        self._n_events += count

    # ------------------------------------------------------------------ #
    # Columnar queries                                                    #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n_events

    def kinds(self) -> list[str]:
        """Kind names in first-appearance order."""
        return list(self._kind_names)

    def count(self, kind: str) -> int:
        """Number of events of ``kind`` (0 if the kind never occurred)."""
        return self._counts.get(kind, 0)

    def keys(self, kind: str) -> tuple[str, ...]:
        """Payload keys carried by events of ``kind``, in recording order."""
        return self._keys.get(kind, ())

    def column_type(self, kind: str, key: str) -> type:
        """The Python scalar type of one payload column."""
        return self._columns[kind][key].type

    def column(self, kind: str, key: str) -> np.ndarray:
        """All values of ``data[key]`` over events of ``kind``, in order."""
        kind_columns = self._columns.get(kind)
        if kind_columns is None or key not in kind_columns:
            return np.empty(0, dtype=np.float64)
        return self._columns[kind][key].array()

    def rounds_of(self, kind: str) -> np.ndarray:
        """Round indices of all events of ``kind``, in append order."""
        mask = self._kind.array() == self._kind_ids.get(kind, -1)
        return self._round.array()[mask]

    def nodes_of(self, kind: str) -> np.ndarray:
        """Node ids of all events of ``kind``, in append order."""
        mask = self._kind.array() == self._kind_ids.get(kind, -1)
        return self._node.array()[mask]

    def round_index(self) -> np.ndarray:
        """Per-event round indices (flat, append order)."""
        return self._round.array()

    def node_id(self) -> np.ndarray:
        """Per-event node ids (flat, append order)."""
        return self._node.array()

    def kind_id(self) -> np.ndarray:
        """Per-event kind ids (flat, append order); see :meth:`kinds`."""
        return self._kind.array()

    # ------------------------------------------------------------------ #
    # Bridges                                                             #
    # ------------------------------------------------------------------ #

    def iter_events(self) -> Iterator["TraceEvent"]:
        """Yield the event stream in original append order (lossless)."""
        from repro.simulator.trace import TraceEvent

        rounds = self._round.array()
        nodes = self._node.array()
        kind_ids = self._kind.array()
        per_kind: list[tuple[str, tuple[str, ...], list[np.ndarray], list[type]]] = []
        for kind in self._kind_names:
            keys = self._keys[kind]
            arrays = [self._columns[kind][key].array() for key in keys]
            types = [self._columns[kind][key].type for key in keys]
            per_kind.append((kind, keys, arrays, types))
        cursors = [0] * len(per_kind)
        for i in range(self._n_events):
            kind_id = int(kind_ids[i])
            kind, keys, arrays, types = per_kind[kind_id]
            j = cursors[kind_id]
            cursors[kind_id] = j + 1
            data = {
                key: type_(array[j])
                for key, array, type_ in zip(keys, arrays, types)
            }
            yield TraceEvent(
                round_index=int(rounds[i]),
                node_id=int(nodes[i]),
                kind=kind,
                data=data,
            )

    def to_events(self) -> "ExecutionTrace":
        """Convert back to an object-per-event :class:`ExecutionTrace`."""
        from repro.simulator.trace import ExecutionTrace

        trace = ExecutionTrace()
        for event in self.iter_events():
            trace.record(event.round_index, event.node_id, event.kind, **event.data)
        return trace

    @classmethod
    def from_events(cls, trace: "ExecutionTrace") -> "ColumnarTrace":
        """Build a columnar trace from an event trace (lossless)."""
        columnar = cls()
        for event in trace:
            columnar.record(event.round_index, event.node_id, event.kind, **event.data)
        return columnar
