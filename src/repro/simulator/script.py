"""Generator-style node programs.

The paper's pseudocode interleaves local computation with "send X to all
neighbours / receive" steps.  Writing such algorithms as explicit state
machines (one ``on_round`` branch per step) obscures the correspondence with
the pseudocode, so this module provides :class:`GeneratorNodeProgram`: the
algorithm body is a Python generator that *yields* the messages to send in a
round and receives the next round's inbox as the value of the ``yield``
expression.  The resulting code reads line-for-line like the paper:

.. code-block:: python

    def run(self, ctx):
        inbox = yield ctx.send_all(self.color, tag="color")   # one round
        colors = self.inbox_by_sender(inbox)
        ...

When the generator returns, the node is terminated; whatever the generator
stored in ``self._result`` (or returned) becomes the node's local output.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.simulator.message import Message
from repro.simulator.node import NodeContext, StatefulNodeProgram
from repro.simulator.trace import ExecutionTrace

RoundGenerator = Generator[Sequence[Message], Sequence[Message], Any]


class GeneratorNodeProgram(StatefulNodeProgram):
    """Base class for node programs written as generators.

    Subclasses implement :meth:`run`, a generator that yields the outbox for
    each communication round and receives the corresponding inbox.  The base
    class adapts that generator to the ``on_start`` / ``on_round`` protocol
    expected by the runner.
    """

    def __init__(self) -> None:
        super().__init__()
        self._generator: RoundGenerator | None = None
        self._trace: ExecutionTrace | None = None

    # -- optional tracing ------------------------------------------------ #

    def bind_trace(self, trace: ExecutionTrace) -> None:
        """Attach an execution trace (called by the runner when tracing)."""
        self._trace = trace

    def trace_event(self, round_index: int, node_id: int, kind: str, **data: Any) -> None:
        """Record a trace event if tracing is enabled (no-op otherwise)."""
        if self._trace is not None:
            self._trace.record(round_index, node_id, kind, **data)

    # -- algorithm body -------------------------------------------------- #

    def run(self, ctx: NodeContext) -> RoundGenerator:
        """The algorithm body; must be a generator.  Override in subclasses."""
        raise NotImplementedError

    # -- protocol adaptation --------------------------------------------- #

    def on_start(self, ctx: NodeContext) -> Sequence[Message]:
        self._generator = self.run(ctx)
        try:
            outbox = next(self._generator)
        except StopIteration as stop:
            self._finish(stop)
            return []
        return outbox

    def on_round(
        self, ctx: NodeContext, round_index: int, inbox: Sequence[Message]
    ) -> Sequence[Message]:
        if self._generator is None:
            raise RuntimeError("on_round called before on_start")
        try:
            outbox = self._generator.send(tuple(inbox))
        except StopIteration as stop:
            self._finish(stop)
            return []
        return outbox

    def _finish(self, stop: StopIteration) -> None:
        """Mark the node terminated; prefer the generator's return value."""
        self._terminated = True
        if stop.value is not None:
            self._result = stop.value
