"""Precomputed fault masks shared by every backend.

The call-time fault models in :mod:`repro.simulator.faults` draw their
randomness while messages flow, which ties the fault pattern to one
backend's execution order.  A :class:`FaultSchedule` instead materializes
the *entire* fault pattern up front from a seed, aligned to the graph's
CSR layout:

* **edge-drop masks** -- one Bernoulli keep/drop bit per CSR position and
  delivery round.  Position ``p`` of the CSR is the directed message
  ``col[p] -> row[p]``, so the mask for round ``r`` answers "is the
  round-``r`` message across this edge delivered?" for every edge at once.
* **crash-stop masks** -- one crash round per node (or never).  A node
  executes round ``r`` iff ``r < crash_round``, and *nothing it sent is
  delivered in round ``r >= crash_round``* (its final in-flight messages
  die with it) -- the same comparison on both sides, mirroring the
  :class:`~repro.simulator.faults.CrashStopFaults` semantics.

Because every mask is a pure function of ``(seed, salt, round)`` the same
schedule can be consumed three ways with bitwise-identical outcomes:

* the simulated runner, via the :class:`ScheduledFaults` adapter
  (per-message lookups into the masks),
* the vectorized kernels in :mod:`repro.core.vectorized`, via masked
  CSR reductions (the schedule itself is the
  :class:`whole-graph view <FaultSchedule>`),
* the sharded engine, via :class:`SlabScheduleView` (masks sliced to one
  shard's slab positions).

Round/exchange mapping (established by the bulk kernels): exchange ``e``
of a kernel is the set of messages *delivered* in simulator round ``e``.
Exchange 0 is produced in ``on_start``, which every node executes (a node
crashing at round 0 initializes, sends, and dies -- its messages are
dropped by the delivery gate); exchange ``e >= 1`` is produced in
``on_round(e - 1)``, executed only by nodes with ``crash_round > e - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Sequence

import numpy as np

from repro.simulator.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.bulk import BulkGraph

#: Crash round assigned to nodes that never crash.
NEVER = int(2**62)

#: Sub-stream tags so the crash draw and the per-round edge draws are
#: independent streams of the same seed.
_CRASH_STREAM = 0
_EDGE_STREAM = 1


@dataclass(frozen=True)
class FaultSpec:
    """Seeded description of a fault pattern, independent of any graph.

    Parameters
    ----------
    loss_probability:
        Probability that any single message is dropped, independently per
        (round, edge).
    crash_probability:
        Probability that a node crashes at all; crashing nodes pick their
        crash round uniformly from ``[0, horizon]``.
    seed:
        Root seed for both the crash draw and the per-round edge masks.
    horizon:
        Crash-round horizon.  ``None`` (default) uses the consuming
        algorithm's round budget, so "crashes anywhere in the execution".
    """

    loss_probability: float = 0.0
    crash_probability: float = 0.0
    seed: int = 0
    horizon: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError("loss_probability must be in [0, 1]")
        if not 0.0 <= self.crash_probability <= 1.0:
            raise ValueError("crash_probability must be in [0, 1]")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.horizon is not None and self.horizon < 0:
            raise ValueError("horizon must be non-negative")

    @property
    def is_faulty(self) -> bool:
        """Whether this spec can actually drop or crash anything."""
        return self.loss_probability > 0.0 or self.crash_probability > 0.0

    def materialize(
        self,
        bulk: "BulkGraph",
        rounds: int,
        salt: int = 0,
        already_dead: np.ndarray | None = None,
    ) -> "FaultSchedule":
        """Materialize the schedule against one graph's CSR layout.

        ``salt`` separates the streams of distinct phases run under one
        spec (e.g. fractional solve vs. rounding).  ``already_dead`` marks
        nodes crashed in a previous phase; they get ``crash_round = 0``.
        """
        return FaultSchedule(
            spec=self,
            indptr=bulk.indptr,
            col=bulk.col,
            rounds=rounds,
            salt=salt,
            already_dead=already_dead,
        )


@dataclass(frozen=True)
class FaultSummary:
    """What a fault schedule actually did to one execution phase.

    Attributes
    ----------
    spec:
        The spec the schedule was materialized from.
    crashed_nodes:
        Number of nodes that crash at some round of the phase.
    dropped_messages / delivered_messages:
        Totals over every delivery round of the phase.
    drops:
        Per-delivery-round ``(dropped, delivered)`` counts, shaped exactly
        like :attr:`~repro.simulator.runtime.ExecutionResult.drops`.
    """

    spec: FaultSpec
    crashed_nodes: int
    dropped_messages: int
    delivered_messages: int
    drops: dict[int, tuple[int, int]]


class FaultSchedule:
    """Materialized per-round fault masks for one graph (CSR-aligned).

    The schedule doubles as the whole-graph *schedule view* consumed by the
    faulted vectorized kernels; :meth:`slab_view` produces the equivalent
    view for one shard's slab.
    """

    def __init__(
        self,
        spec: FaultSpec,
        indptr: np.ndarray,
        col: np.ndarray,
        rounds: int,
        salt: int = 0,
        already_dead: np.ndarray | None = None,
    ) -> None:
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        self.spec = spec
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.col = np.asarray(col, dtype=np.int64)
        self.n = int(self.indptr.size) - 1
        self.m = int(self.col.size)
        self.rounds = int(rounds)
        self.salt = int(salt)
        horizon = spec.horizon if spec.horizon is not None else rounds

        rng = np.random.default_rng((spec.seed, self.salt, _CRASH_STREAM))
        crashed = rng.random(self.n) < spec.crash_probability
        drawn = rng.integers(0, max(horizon, 0) + 1, size=self.n)
        self.crash_rounds = np.where(crashed, drawn, NEVER).astype(np.int64)
        if already_dead is not None:
            already_dead = np.asarray(already_dead, dtype=bool)
            if already_dead.shape != (self.n,):
                raise ValueError("already_dead must be a length-n bool array")
            self.crash_rounds = np.where(already_dead, 0, self.crash_rounds)
        # Kept so consumers (the sharded driver) can re-materialize an
        # identical schedule in another process from small pieces.
        self.already_dead = already_dead
        self._keep_cache: dict[int, np.ndarray] = {}
        self._all_nodes = np.ones(self.n, dtype=bool)
        self._all_edges = np.ones(self.m, dtype=bool)

    # ------------------------------------------------------------------ #
    # Node masks                                                          #
    # ------------------------------------------------------------------ #

    @property
    def crashed_count(self) -> int:
        """Number of nodes that crash at some round."""
        return int(np.count_nonzero(self.crash_rounds != NEVER))

    @property
    def ever_crashed(self) -> np.ndarray:
        """Nodes that crash at some round (bool, length n).

        Pass this as ``already_dead`` when materializing the next phase of
        a multi-phase execution: with the default horizon every crashing
        node is dead by the end of the phase.
        """
        return self.crash_rounds != NEVER

    def alive(self, round_index: int) -> np.ndarray:
        """Nodes that execute ``on_round(round_index)`` (bool, length n).

        This is also the delivery gate for messages arriving in
        ``round_index``: a message from ``v`` is delivered in round ``r``
        iff ``alive(r)[v]``.
        """
        return self.crash_rounds > round_index

    def senders(self, round_index: int) -> np.ndarray:
        """Nodes that *produced* exchange ``round_index`` (bool, length n).

        Exchange 0 comes from ``on_start`` (every node); exchange ``e >= 1``
        from ``on_round(e - 1)`` (nodes with ``crash_round > e - 1``).
        """
        if round_index == 0:
            return self._all_nodes
        return self.crash_rounds >= round_index

    # ------------------------------------------------------------------ #
    # Edge masks                                                          #
    # ------------------------------------------------------------------ #

    def edge_keep(self, round_index: int) -> np.ndarray:
        """Loss mask for round ``round_index`` (bool, length m): True = kept."""
        cached = self._keep_cache.get(round_index)
        if cached is not None:
            return cached
        if self.spec.loss_probability == 0.0:
            keep = self._all_edges
        else:
            rng = np.random.default_rng(
                (self.spec.seed, self.salt, _EDGE_STREAM, round_index)
            )
            keep = rng.random(self.m) >= self.spec.loss_probability
        self._keep_cache[round_index] = keep
        return keep

    def delivered_edges(self, round_index: int) -> np.ndarray:
        """Messages actually delivered in ``round_index`` (bool, length m)."""
        return self.edge_keep(round_index) & self.alive(round_index)[self.col]

    def sent_edges(self, round_index: int) -> np.ndarray:
        """Messages sent for delivery in ``round_index`` (bool, length m)."""
        if round_index == 0:
            return self._all_edges
        return self.senders(round_index)[self.col]

    def drop_counts(self, round_index: int) -> tuple[int, int]:
        """``(dropped, delivered)`` message counts for one delivery round."""
        sent = int(np.count_nonzero(self.sent_edges(round_index)))
        delivered = int(np.count_nonzero(self.delivered_edges(round_index)))
        return sent - delivered, delivered

    def drops_dict(self, exchanges: int) -> dict[int, tuple[int, int]]:
        """Per-delivery-round drop counts, shaped like the runner's record.

        Reproduces :attr:`~repro.simulator.runtime.ExecutionResult.drops`
        for an ``exchanges``-exchange execution under this schedule: the
        runner creates round ``r``'s entry when any node executes
        ``on_round(r - 1)`` -- so the record stops once every node is dead
        -- and the final round's empty outboxes leave one trailing
        ``(0, 0)`` entry.
        """
        if exchanges < 1:
            raise ValueError("exchanges must be positive")
        drops = {0: self.drop_counts(0)}
        for delivery_round in range(1, exchanges + 1):
            if not bool(self.alive(delivery_round - 1).any()):
                break
            if delivery_round < exchanges:
                drops[delivery_round] = self.drop_counts(delivery_round)
            else:
                drops[delivery_round] = (0, 0)
        return drops

    def summary(self, exchanges: int) -> FaultSummary:
        """Aggregate this schedule's effect on an ``exchanges``-round phase."""
        drops = self.drops_dict(exchanges)
        return FaultSummary(
            spec=self.spec,
            crashed_nodes=self.crashed_count,
            dropped_messages=sum(dropped for dropped, _ in drops.values()),
            delivered_messages=sum(delivered for _, delivered in drops.values()),
            drops=drops,
        )

    # ------------------------------------------------------------------ #
    # Consumers                                                           #
    # ------------------------------------------------------------------ #

    def fault_model(self, nodes: Sequence[Hashable]) -> "ScheduledFaults":
        """Per-message adapter for the simulated runner."""
        return ScheduledFaults(self, nodes)

    def slab_view(self, owned: np.ndarray, flat: np.ndarray) -> "SlabScheduleView":
        """Schedule view restricted to one shard slab.

        ``owned`` are the shard's global vertex positions and ``flat`` the
        global CSR positions of its slab entries, in slab order.
        """
        return SlabScheduleView(self, owned, flat)


class SlabScheduleView:
    """One shard's slice of a :class:`FaultSchedule`.

    Exposes the same mask interface the faulted kernels consume, with node
    masks over the shard's owned vertices and edge masks over its slab
    positions -- every slab entry keeps its global CSR decision, so
    per-shard reductions stay bitwise equal to the whole-graph ones.
    """

    def __init__(
        self, schedule: FaultSchedule, owned: np.ndarray, flat: np.ndarray
    ) -> None:
        self._schedule = schedule
        self._owned = np.asarray(owned, dtype=np.int64)
        self._flat = np.asarray(flat, dtype=np.int64)

    def alive(self, round_index: int) -> np.ndarray:
        return self._schedule.alive(round_index)[self._owned]

    def senders(self, round_index: int) -> np.ndarray:
        return self._schedule.senders(round_index)[self._owned]

    def delivered_edges(self, round_index: int) -> np.ndarray:
        return self._schedule.delivered_edges(round_index)[self._flat]

    def sent_edges(self, round_index: int) -> np.ndarray:
        return self._schedule.sent_edges(round_index)[self._flat]


class ScheduledFaults:
    """:class:`~repro.simulator.faults.FaultModel` backed by a schedule.

    Gives the per-node simulator exactly the schedule's decisions: node
    liveness from the crash-round array, per-message delivery by looking
    up the message's CSR position in the round's edge mask.  Running the
    simulated backend under this model reproduces the masked vectorized
    kernels bit for bit.
    """

    def __init__(self, schedule: FaultSchedule, nodes: Sequence[Hashable]) -> None:
        self._schedule = schedule
        self._index = {node: position for position, node in enumerate(nodes)}
        if len(self._index) != schedule.n:
            raise ValueError(
                f"node labels do not match the schedule: {len(self._index)} "
                f"labels for {schedule.n} scheduled nodes"
            )

    def node_alive(self, node_id: Hashable, round_index: int) -> bool:
        return bool(round_index < self._schedule.crash_rounds[self._index[node_id]])

    def is_crashed(self, node_id: Hashable, round_index: int) -> bool:
        """Whether ``node_id`` is permanently dead from ``round_index`` on."""
        return bool(round_index >= self._schedule.crash_rounds[self._index[node_id]])

    def deliver(self, message: Message, round_index: int) -> bool:
        schedule = self._schedule
        sender = self._index[message.sender]
        if round_index >= schedule.crash_rounds[sender]:
            return False
        receiver = self._index[message.receiver]
        start = schedule.indptr[receiver]
        end = schedule.indptr[receiver + 1]
        # The LOCAL model guarantees sender is a neighbour of receiver, so
        # the sorted row slice contains it exactly once.
        position = start + np.searchsorted(schedule.col[start:end], sender)
        return bool(self._schedule.edge_keep(round_index)[position])
