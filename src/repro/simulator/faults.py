"""Fault injection policies.

The paper assumes a fault-free synchronous network.  The fault models here
are an *extension* used by the robustness examples and tests: they let us ask
what happens to the dominating set quality and feasibility when messages are
lost or nodes crash mid-execution (a realistic concern in the ad-hoc-network
setting that motivates the paper).

A fault model is consulted by the runner at two points:

* :meth:`FaultModel.node_alive` -- before invoking a node's round callback;
  crashed nodes neither compute nor send.
* :meth:`FaultModel.deliver` -- for each message about to be delivered;
  returning ``False`` silently drops the message.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Iterable, Protocol, runtime_checkable

from repro.simulator.message import Message


@runtime_checkable
class FaultModel(Protocol):
    """Protocol for fault injection policies."""

    def node_alive(self, node_id: int, round_index: int) -> bool:
        """Whether ``node_id`` executes in ``round_index``."""
        ...

    def deliver(self, message: Message, round_index: int) -> bool:
        """Whether ``message`` is delivered in ``round_index``."""
        ...


class NoFaults:
    """The paper's model: every node alive, every message delivered."""

    def node_alive(self, node_id: int, round_index: int) -> bool:
        return True

    def deliver(self, message: Message, round_index: int) -> bool:
        return True


@dataclass
class MessageLossFaults:
    """Drop each message independently with probability ``loss_probability``.

    Messages to/from protected nodes (``protected``) are never dropped,
    which is useful for targeted experiments.

    Each drop decision is a pure function of ``(seed, round, sender,
    receiver)`` -- a hashed counter-based draw -- so it does not depend on
    the order in which the runner happens to iterate messages.  Two runs
    that deliver the same message set in a different order (or interleave
    unrelated messages) drop exactly the same messages.
    """

    loss_probability: float
    seed: int = 0
    protected: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError("loss_probability must be in [0, 1]")

    def node_alive(self, node_id: int, round_index: int) -> bool:
        return True

    def _draw(self, round_index: int, sender: int, receiver: int) -> float:
        key = f"{self.seed}:{round_index}:{sender}:{receiver}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0**64

    def deliver(self, message: Message, round_index: int) -> bool:
        if message.sender in self.protected or message.receiver in self.protected:
            return True
        return self._draw(round_index, message.sender, message.receiver) >= (
            self.loss_probability
        )


@dataclass
class CrashStopFaults:
    """Crash-stop failures: each node crashes at a fixed round (or never).

    Parameters
    ----------
    crash_rounds:
        Mapping ``node_id -> round`` at which the node crashes: it does not
        execute round ``crash_rounds[v]`` or any later round, and nothing
        it sent is delivered in round ``crash_rounds[v]`` or later (its
        final in-flight messages are lost with it).  ``node_alive`` and
        ``deliver`` therefore use the *same* comparison -- a node that does
        not execute a round cannot have messages arriving in that round.
        Nodes not present never crash.  Messages *to* a crashed node are
        still "delivered" (they land in a dead mailbox), matching the usual
        crash-stop semantics.
    """

    crash_rounds: dict[int, int] = field(default_factory=dict)

    def node_alive(self, node_id: int, round_index: int) -> bool:
        crash_round = self.crash_rounds.get(node_id)
        if crash_round is None:
            return True
        return round_index < crash_round

    def is_crashed(self, node_id: int, round_index: int) -> bool:
        """Whether ``node_id`` is permanently dead from ``round_index`` on."""
        crash_round = self.crash_rounds.get(node_id)
        return crash_round is not None and round_index >= crash_round

    def deliver(self, message: Message, round_index: int) -> bool:
        crash_round = self.crash_rounds.get(message.sender)
        if crash_round is None:
            return True
        return round_index < crash_round

    @classmethod
    def random_crashes(
        cls,
        node_ids: Iterable[int],
        crash_probability: float,
        max_round: int,
        seed: int = 0,
    ) -> "CrashStopFaults":
        """Crash each node independently at a uniform random round."""
        if not 0.0 <= crash_probability <= 1.0:
            raise ValueError("crash_probability must be in [0, 1]")
        rng = random.Random(seed)
        crash_rounds: dict[int, int] = {}
        for node_id in node_ids:
            if rng.random() < crash_probability:
                crash_rounds[node_id] = rng.randint(0, max(max_round, 0))
        return cls(crash_rounds=crash_rounds)
