"""Reproduction of Kuhn & Wattenhofer (PODC 2003 / DC 2005):
*Constant-time distributed dominating set approximation*.

The library contains four layers:

* ``repro.simulator`` -- a synchronous LOCAL-model message-passing simulator
  (rounds, messages, message-size accounting, traces, fault injection).
* ``repro.graphs`` / ``repro.lp`` / ``repro.domset`` -- substrates: graph
  generators (including unit disk graphs and mobility), the LP_MDS /
  DLP_MDS formulations with an exact solver, and dominating set validation
  and quality reporting.
* ``repro.core`` -- the paper's contribution: Algorithm 1 (randomized
  rounding), Algorithm 2 (fractional approximation, Δ known), Algorithm 3
  (Δ unknown), the weighted variant, the composed Theorem-6 pipeline, and
  runtime checks of the paper's Lemmas 2-7.
* ``repro.baselines`` / ``repro.analysis`` -- comparison algorithms
  (greedy, exact, LRG, Wu-Li, trivial) and the experiment/bounds machinery
  used by the benchmark harness.

Quickstart
----------

>>> import networkx as nx
>>> from repro import kuhn_wattenhofer_dominating_set
>>> graph = nx.random_geometric_graph(50, 0.25, seed=1)
>>> result = kuhn_wattenhofer_dominating_set(graph, k=2, seed=0)
>>> sorted(result.dominating_set)  # doctest: +SKIP
[...]
"""

from repro.core import (
    FractionalVariant,
    PipelineResult,
    RoundingRule,
    approximate_fractional_mds,
    approximate_fractional_mds_unknown_delta,
    approximate_weighted_fractional_mds,
    kuhn_wattenhofer_dominating_set,
    log_delta_parameter,
    round_fractional_solution,
    weighted_kuhn_wattenhofer_dominating_set,
)
from repro.domset import is_dominating_set, quality_report

__version__ = "1.0.0"

__all__ = [
    "FractionalVariant",
    "PipelineResult",
    "RoundingRule",
    "__version__",
    "approximate_fractional_mds",
    "approximate_fractional_mds_unknown_delta",
    "approximate_weighted_fractional_mds",
    "is_dominating_set",
    "kuhn_wattenhofer_dominating_set",
    "log_delta_parameter",
    "quality_report",
    "round_fractional_solution",
    "weighted_kuhn_wattenhofer_dominating_set",
]
