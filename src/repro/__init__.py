"""Reproduction of Kuhn & Wattenhofer (PODC 2003 / DC 2005):
*Constant-time distributed dominating set approximation*.

The library contains four layers:

* ``repro.simulator`` -- a synchronous LOCAL-model message-passing simulator
  (rounds, messages, message-size accounting, traces, fault injection).
* ``repro.graphs`` / ``repro.lp`` / ``repro.domset`` -- substrates: graph
  generators (including unit disk graphs and mobility), the LP_MDS /
  DLP_MDS formulations with an exact solver, and dominating set validation
  and quality reporting.
* ``repro.core`` -- the paper's contribution: Algorithm 1 (randomized
  rounding), Algorithm 2 (fractional approximation, Δ known), Algorithm 3
  (Δ unknown), the weighted variant, the composed Theorem-6 pipeline, and
  runtime checks of the paper's Lemmas 2-7.
* ``repro.baselines`` / ``repro.analysis`` -- comparison algorithms
  (greedy, exact, LRG, Wu-Li, trivial) and the experiment/bounds machinery
  used by the benchmark harness.

Quickstart
----------

>>> import networkx as nx
>>> from repro import kuhn_wattenhofer_dominating_set
>>> graph = nx.random_geometric_graph(50, 0.25, seed=1)
>>> result = kuhn_wattenhofer_dominating_set(graph, k=2, seed=0)
>>> sorted(result.dominating_set)  # doctest: +SKIP
[...]

Backends
--------

Every algorithm entry point (``approximate_fractional_mds``,
``approximate_fractional_mds_unknown_delta``, ``round_fractional_solution``,
``kuhn_wattenhofer_dominating_set`` and the weighted variants) accepts a
``backend`` argument:

* ``"simulated"`` (default) -- drive one message-passing program per node
  through the synchronous LOCAL-model simulator.  Use it when you need
  message-level fidelity: execution traces, the invariant monitors, fault
  injection, or per-message size accounting.
* ``"vectorized"`` -- execute the same bulk-synchronous schedule with
  whole-graph NumPy operations (``repro.core.vectorized`` over
  ``repro.simulator.bulk``).  It produces bitwise-identical x-vectors,
  objectives, round counts and (for a given seed) the same rounded
  dominating sets, at orders-of-magnitude lower cost -- use it for large
  graphs and parameter sweeps.

Both report rounds and message counts through ``ExecutionMetrics``; the
vectorized backend *models* the messages a fault-free simulated run would
have sent rather than materialising them.
"""

from repro.core import (
    BACKENDS,
    FractionalVariant,
    PipelineResult,
    RoundingRule,
    approximate_fractional_mds,
    approximate_fractional_mds_unknown_delta,
    approximate_weighted_fractional_mds,
    kuhn_wattenhofer_dominating_set,
    log_delta_parameter,
    round_fractional_solution,
    round_fractional_solution_batched,
    weighted_kuhn_wattenhofer_dominating_set,
)
from repro.domset import is_dominating_set, quality_report
from repro.simulator.bulk import BulkGraph

__version__ = "1.0.0"

__all__ = [
    "BACKENDS",
    "BulkGraph",
    "FractionalVariant",
    "PipelineResult",
    "RoundingRule",
    "__version__",
    "approximate_fractional_mds",
    "approximate_fractional_mds_unknown_delta",
    "approximate_weighted_fractional_mds",
    "is_dominating_set",
    "kuhn_wattenhofer_dominating_set",
    "log_delta_parameter",
    "quality_report",
    "round_fractional_solution",
    "round_fractional_solution_batched",
    "weighted_kuhn_wattenhofer_dominating_set",
]
