"""Reproduction of Kuhn & Wattenhofer (PODC 2003 / DC 2005):
*Constant-time distributed dominating set approximation*.

The library contains five layers:

* ``repro.simulator`` -- a synchronous LOCAL-model message-passing simulator
  (rounds, messages, message-size accounting, traces, fault injection).
* ``repro.graphs`` / ``repro.lp`` / ``repro.domset`` -- substrates: graph
  generators (including unit disk graphs, mobility and CSR-native
  ``BulkGraph`` construction), the LP_MDS / DLP_MDS formulations with an
  exact solver, and dominating set validation and quality reporting.
* ``repro.core`` -- the paper's contribution: Algorithm 1 (randomized
  rounding), Algorithm 2 (fractional approximation, Δ known), Algorithm 3
  (Δ unknown), the weighted variant, the composed Theorem-6 pipeline, and
  runtime checks of the paper's Lemmas 2-7.
* ``repro.baselines`` / ``repro.analysis`` -- comparison algorithms
  (greedy, exact, LRG, Wu-Li, trivial) and the experiment/bounds machinery
  used by the benchmark harness.
* ``repro.api`` -- the unified algorithm registry and the ``solve()``
  façade every CLI sub-command, sweep and benchmark dispatches through.

Quickstart
----------

>>> import networkx as nx
>>> from repro import solve
>>> graph = nx.random_geometric_graph(50, 0.25, seed=1)
>>> report = solve("kuhn-wattenhofer", graph, k=2, seed=0)
>>> report.backend, report.size, report.total_rounds  # doctest: +SKIP
('simulated', 11, 47)
>>> sorted(report.dominating_set)  # doctest: +SKIP
[...]

``solve(algorithm, graph, **params)`` runs any registered algorithm --
``repro.api.algorithm_names()`` lists them (the pipeline, greedy, LRG,
Wu–Li, central LP rounding, the weighted pipeline, CDS constructions,
...) -- and returns one normalised ``RunReport`` (set, objective, backend
used, rounds, messages, wall-clock).  The classic per-algorithm entry
points (``kuhn_wattenhofer_dominating_set`` et al.) remain available
unchanged; the registry delegates to them.

Backends and ``backend="auto"``
-------------------------------

Every algorithm supports up to two execution engines:

* ``"simulated"`` -- drive one message-passing program per node through
  the synchronous LOCAL-model simulator.  Use it when you need
  message-level fidelity: fault injection, per-message size accounting,
  or event-by-event execution traces.
* ``"vectorized"`` -- execute the same bulk-synchronous schedule with
  whole-graph NumPy operations (``repro.core.vectorized`` over
  ``repro.simulator.bulk``).  It produces bitwise-identical x-vectors,
  objectives, round counts and (for a given seed) the same rounded
  dominating sets, at orders-of-magnitude lower cost -- and records
  columnar traces (``repro.simulator.columnar``) that feed the same
  invariant monitors at n ≥ 20 000.

``solve`` defaults to ``backend="auto"``: CSR ``BulkGraph`` inputs and
graphs with ``n >= repro.api.AUTO_VECTORIZE_THRESHOLD`` dispatch to the
vectorized engine (when the algorithm's registered capabilities allow),
``collect_trace=True`` restricts dispatch to the backends the spec can
trace on (event-based ``ExecutionTrace`` on the simulated engine,
columnar ``ColumnarTrace`` on the vectorized engine), and impossible
combinations raise one well-worded ``CapabilityError`` naming the
algorithm, the capability and the backends that support it.

Both engines report rounds and message counts through
``ExecutionMetrics``; the vectorized backend *models* the messages a
fault-free simulated run would have sent rather than materialising them.
"""

from repro.core import (
    BACKENDS,
    CapabilityError,
    FractionalVariant,
    PipelineResult,
    RoundingRule,
    approximate_fractional_mds,
    approximate_fractional_mds_unknown_delta,
    approximate_weighted_fractional_mds,
    kuhn_wattenhofer_dominating_set,
    log_delta_parameter,
    round_fractional_solution,
    round_fractional_solution_batched,
    weighted_kuhn_wattenhofer_dominating_set,
)
from repro.domset import is_dominating_set, quality_report
from repro.simulator.bulk import BulkGraph

#: Registry façade names re-exported lazily (PEP 562): ``import repro``
#: stays light -- the registry pulls in every baseline and CDS module, so
#: it only loads on first use of ``repro.solve`` and friends.  This keeps
#: process-pool workers (which import subpackages, not the registry) from
#: paying the full-library import cost.
_API_EXPORTS = (
    "AUTO",
    "AlgorithmSpec",
    "RunReport",
    "algorithm_names",
    "get_spec",
    "resolve_backend",
    "solve",
)


def __getattr__(name):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__version__ = "1.3.0"

__all__ = [
    "AUTO",
    "AlgorithmSpec",
    "BACKENDS",
    "BulkGraph",
    "CapabilityError",
    "FractionalVariant",
    "PipelineResult",
    "RoundingRule",
    "RunReport",
    "__version__",
    "algorithm_names",
    "approximate_fractional_mds",
    "approximate_fractional_mds_unknown_delta",
    "approximate_weighted_fractional_mds",
    "get_spec",
    "is_dominating_set",
    "kuhn_wattenhofer_dominating_set",
    "log_delta_parameter",
    "quality_report",
    "resolve_backend",
    "round_fractional_solution",
    "round_fractional_solution_batched",
    "solve",
    "weighted_kuhn_wattenhofer_dominating_set",
]
