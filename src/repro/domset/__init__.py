"""Dominating-set utilities: validation, quality reporting, weighted variant.

* :mod:`~repro.domset.validation` -- "is this set actually dominating?"
  plus coverage maps and uncovered-node diagnostics.
* :mod:`~repro.domset.quality` -- approximation-ratio reports against the
  exact optimum, the LP optimum and the Lemma-1 dual bound.
* :mod:`~repro.domset.weighted` -- weighted dominating set cost and
  validation helpers for the weighted variant.
* :mod:`~repro.domset.repair` -- self-healing patch for fault-degraded
  sets, with degradation metrics.
"""

from repro.domset.quality import QualityReport, quality_report
from repro.domset.repair import RepairReport, repair_dominating_set
from repro.domset.validation import (
    coverage_counts,
    dominated_by,
    is_dominating_set,
    prune_redundant,
    prune_redundant_bulk,
    uncovered_nodes,
)
from repro.domset.weighted import weighted_cost, weighted_quality

__all__ = [
    "QualityReport",
    "RepairReport",
    "coverage_counts",
    "dominated_by",
    "is_dominating_set",
    "prune_redundant",
    "prune_redundant_bulk",
    "quality_report",
    "repair_dominating_set",
    "uncovered_nodes",
    "weighted_cost",
    "weighted_quality",
]
