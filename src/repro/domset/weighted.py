"""Weighted dominating set utilities.

The remark after Theorem 4 sketches a weighted variant of Algorithm 2 where
every node v_i carries a cost c_i ∈ [1, c_max] and the objective is the
total cost of the dominating set rather than its cardinality.  The helpers
here compute costs, validate weight maps and report weighted quality against
the weighted LP optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.domset.validation import is_dominating_set
from repro.graphs.utils import is_bulk_graph
from repro.lp.solver import solve_weighted_fractional_mds


def validate_weights(
    graph: nx.Graph, weights: Mapping[Hashable, float], c_max: float | None = None
) -> None:
    """Check that every node has a cost in [1, c_max].

    The paper's weighted remark normalises costs to lie between 1 and
    c_max; enforcing that keeps the approximation formula
    k(Δ+1)^{1/k}·[c_max(Δ+1)]^{1/k} meaningful.
    """
    node_ids = graph.nodes if is_bulk_graph(graph) else graph.nodes()
    missing = [node for node in node_ids if node not in weights]
    if missing:
        raise ValueError(f"weights missing for nodes: {missing[:5]}")
    for node, cost in weights.items():
        if cost < 1.0:
            raise ValueError(f"node {node!r} has cost {cost} < 1")
        if c_max is not None and cost > c_max:
            raise ValueError(f"node {node!r} has cost {cost} > c_max = {c_max}")


def weighted_cost(
    weights: Mapping[Hashable, float], dominating_set: Iterable[Hashable]
) -> float:
    """Total cost Σ_{v ∈ DS} c_v of a dominating set."""
    return float(sum(weights[node] for node in set(dominating_set)))


@dataclass(frozen=True)
class WeightedQualityReport:
    """Quality of one weighted dominating set."""

    cost: float
    is_dominating: bool
    lp_optimum: float | None
    ratio_vs_lp: float | None


def weighted_quality(
    graph: nx.Graph,
    weights: Mapping[Hashable, float],
    dominating_set: Iterable[Hashable],
    solve_lp: bool = True,
) -> WeightedQualityReport:
    """Report the cost of a dominating set against the weighted LP optimum."""
    members = frozenset(dominating_set)
    validate_weights(graph, weights)
    cost = weighted_cost(weights, members)
    dominating = is_dominating_set(graph, members)
    lp_optimum: float | None = None
    if solve_lp:
        lp_optimum = solve_weighted_fractional_mds(graph, weights).objective
    ratio = None
    if lp_optimum is not None and lp_optimum > 0:
        ratio = cost / lp_optimum
    return WeightedQualityReport(
        cost=cost,
        is_dominating=dominating,
        lp_optimum=lp_optimum,
        ratio_vs_lp=ratio,
    )
