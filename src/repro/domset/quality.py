"""Approximation-quality reporting.

A single dominating set can be judged against three different denominators,
in decreasing order of strength:

1. the exact optimum |DS_OPT| (available only for small graphs),
2. the fractional LP optimum LP_OPT ≤ |DS_OPT|, and
3. the Lemma-1 dual lower bound Σ 1/(δ⁽¹⁾_i + 1) ≤ LP_OPT.

Ratios measured against (2) or (3) are *upper bounds* on the true
approximation ratio, so they can safely be compared against the paper's
guarantees: if the measured ratio satisfies the bound, the true ratio does
too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

import networkx as nx

from repro.domset.validation import coverage_counts, is_dominating_set
from repro.graphs.utils import is_bulk_graph
from repro.lp.duality import lemma1_lower_bound
from repro.lp.solver import solve_fractional_mds, solve_fractional_mds_sparse


@dataclass(frozen=True)
class QualityReport:
    """Quality of one dominating set on one graph.

    Attributes
    ----------
    size:
        |DS| of the evaluated set.
    is_dominating:
        Validation verdict (all other fields are meaningless if False).
    lp_optimum:
        The fractional optimum LP_OPT (None when not computed).
    dual_lower_bound:
        The Lemma-1 bound.
    exact_optimum:
        |DS_OPT| when a ground-truth optimum was supplied.
    ratio_vs_lp:
        size / LP_OPT (None when LP_OPT unavailable or zero).
    ratio_vs_dual:
        size / dual_lower_bound.
    ratio_vs_exact:
        size / |DS_OPT| (None when unavailable).
    mean_coverage:
        Mean closed-neighbourhood coverage count |N_i ∩ S| over all nodes
        -- the redundancy of the set (1.0 would be a perfect partition into
        closed stars; the trivial all-nodes set scores ≈ Δ̄ + 1).
    min_coverage:
        The smallest coverage count (0 iff the set is not dominating).
    """

    size: int
    is_dominating: bool
    lp_optimum: float | None
    dual_lower_bound: float
    exact_optimum: int | None
    ratio_vs_lp: float | None
    ratio_vs_dual: float | None
    ratio_vs_exact: float | None
    mean_coverage: float = 0.0
    min_coverage: int = 0


def quality_report(
    graph: nx.Graph,
    dominating_set: Iterable[Hashable],
    exact_optimum: int | None = None,
    solve_lp: bool = True,
) -> QualityReport:
    """Build a :class:`QualityReport` for one dominating set.

    Parameters
    ----------
    graph:
        The graph the set was computed on.  CSR
        :class:`~repro.simulator.bulk.BulkGraph` inputs are fully
        supported: validation, coverage statistics and the Lemma-1 bound
        run as array sweeps, and the LP denominator (when requested) is
        solved sparsely -- so quality reporting works unchanged at the
        n ≥ 20 000 scale.
    dominating_set:
        The candidate set.
    exact_optimum:
        Ground-truth |DS_OPT| if known (e.g. from the branch-and-bound
        solver); enables the strongest ratio.
    solve_lp:
        Whether to solve LP_MDS for the fractional denominator (skip for
        very large graphs).

    Returns
    -------
    QualityReport
    """
    members = frozenset(dominating_set)
    dominating = is_dominating_set(graph, members)
    size = len(members)

    dual_bound = lemma1_lower_bound(graph)
    lp_optimum: float | None = None
    if solve_lp:
        if is_bulk_graph(graph):
            lp_optimum = solve_fractional_mds_sparse(graph).objective
        else:
            lp_optimum = solve_fractional_mds(graph).objective

    counts = coverage_counts(graph, members)
    mean_coverage = sum(counts.values()) / len(counts) if counts else 0.0
    min_coverage = min(counts.values()) if counts else 0

    def _ratio(denominator: float | int | None) -> float | None:
        if denominator is None or denominator <= 0:
            return None
        return size / float(denominator)

    return QualityReport(
        size=size,
        is_dominating=dominating,
        lp_optimum=lp_optimum,
        dual_lower_bound=dual_bound,
        exact_optimum=exact_optimum,
        ratio_vs_lp=_ratio(lp_optimum),
        ratio_vs_dual=_ratio(dual_bound),
        ratio_vs_exact=_ratio(exact_optimum),
        mean_coverage=mean_coverage,
        min_coverage=min_coverage,
    )
