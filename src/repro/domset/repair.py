"""Self-healing repair of fault-degraded dominating sets.

Under fault injection the pipeline's output can fail to dominate: a
crashed node never runs Algorithm 1's fallback step, and its neighbours
may all have declined to join.  This module patches such a set back to
feasibility and quantifies the degradation:

* **violation detection** is one CSR sweep -- a node is uncovered iff its
  closed neighbourhood contains no member;
* the **patch** is a greedy cover of the uncovered nodes, driven by a
  bucket queue over closed-neighbourhood gains (the highest-gain node
  joins first, ties broken by CSR position), so repair stays
  O(n + m + Δ·patch) at the n ≥ 20 000 fault-sweep scale;
* the :class:`RepairReport` carries the degradation metrics the fault
  benchmarks gate on: coverage deficit, objective inflation, and the
  modeled repair rounds.

Repair models the *post-stabilization* healing phase of a self-stabilizing
deployment: it runs after the fault horizon, so previously crashed nodes
may rejoin the patch (without this, an isolated crashed node could never
be re-dominated and no repair would exist).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

import networkx as nx
import numpy as np

from repro.graphs.utils import is_bulk_graph
from repro.simulator.bulk import BulkGraph


@dataclass(frozen=True)
class RepairReport:
    """Outcome and degradation metrics of one repair pass.

    Attributes
    ----------
    repaired_set:
        The input set plus the patch; always dominating.
    patched_nodes:
        The nodes the greedy patch added (disjoint from the input set).
    coverage_deficit:
        Number of uncovered nodes *before* repair (0 = input was fine).
    objective_before / objective_after:
        |S| before and after the patch.
    objective_inflation:
        ``objective_after / objective_before`` (``inf`` when the input
        set was empty but the patch is not).
    repair_rounds:
        Modeled round cost of the healing phase: one detection exchange
        plus one announcement per greedy selection (the selections are
        sequentially dependent -- each changes the gains later picks
        see); 0 when the input already dominates.
    feasible_after:
        Whether the repaired set dominates (always ``True`` -- recorded
        so reports can be gated without re-validating).
    """

    repaired_set: frozenset
    patched_nodes: frozenset
    coverage_deficit: int
    objective_before: int
    objective_after: int
    objective_inflation: float
    repair_rounds: int
    feasible_after: bool

    @property
    def was_degraded(self) -> bool:
        """Whether the input set needed any repair at all."""
        return self.coverage_deficit > 0


def repair_dominating_set(
    graph: nx.Graph, candidate: Iterable[Hashable]
) -> RepairReport:
    """Patch ``candidate`` into a dominating set of ``graph``.

    ``graph`` may be a networkx graph or a CSR
    :class:`~repro.simulator.bulk.BulkGraph`; both run the identical CSR
    repair, so the patch (and every metric) is the same for a graph and
    its CSR form.  Candidate nodes outside the graph raise ``ValueError``.
    """
    bulk = graph if is_bulk_graph(graph) else BulkGraph.from_graph(graph)
    members = set(candidate)
    unknown = members - set(bulk.nodes)
    if unknown:
        raise ValueError(
            f"candidate contains nodes not in the graph: {sorted(unknown)[:5]}"
        )
    flags = np.zeros(bulk.n, dtype=bool)
    if members:
        flags[bulk.index_of(members)] = True

    uncovered = ~(flags | bulk.neighbor_any(flags))
    deficit = int(np.count_nonzero(uncovered))
    objective_before = len(members)
    if deficit == 0:
        return RepairReport(
            repaired_set=frozenset(members),
            patched_nodes=frozenset(),
            coverage_deficit=0,
            objective_before=objective_before,
            objective_after=objective_before,
            objective_inflation=1.0 if objective_before else 1.0,
            repair_rounds=0,
            feasible_after=True,
        )

    # Greedy cover of the uncovered nodes.  gain[v] = |N[v] ∩ uncovered|;
    # a bucket queue with lazy revalidation pops the current maximum in
    # O(1) amortized, and every cover event decrements the gains of the
    # covered node's closed neighbourhood.
    gain = (bulk.neighbor_count(uncovered) + uncovered).astype(np.int64)
    col = bulk.col.tolist()
    indptr = bulk.indptr
    gain_list = gain.tolist()
    uncovered_list = uncovered.tolist()
    max_gain = int(gain.max())
    buckets: list[list[int]] = [[] for _ in range(max_gain + 1)]
    # Filling buckets in descending position order makes each bucket pop
    # (list.pop() from the tail) yield the smallest position first --
    # a deterministic tie-break matching "lowest node id wins".
    for position in range(bulk.n - 1, -1, -1):
        if gain_list[position] > 0:
            buckets[gain_list[position]].append(position)

    patch: list[int] = []
    remaining = deficit
    current = max_gain
    while remaining > 0:
        while not buckets[current]:
            current -= 1
        position = buckets[current].pop()
        actual = gain_list[position]
        if actual != current:
            # Stale entry: its gain decayed since insertion; refile.
            if actual > 0:
                buckets[actual].append(position)
            continue
        patch.append(position)
        # Cover every still-uncovered node of the chosen closed
        # neighbourhood and decay the gains its coverage supported.
        closed = col[indptr[position] : indptr[position + 1]] + [position]
        for node in closed:
            if not uncovered_list[node]:
                continue
            uncovered_list[node] = False
            remaining -= 1
            for supporter in col[indptr[node] : indptr[node + 1]]:
                gain_list[supporter] -= 1
            gain_list[node] -= 1

    patched = frozenset(bulk.nodes[position] for position in patch)
    repaired = frozenset(members | patched)
    objective_after = len(repaired)
    if objective_before:
        inflation = objective_after / objective_before
    else:
        inflation = float("inf") if objective_after else 1.0
    return RepairReport(
        repaired_set=repaired,
        patched_nodes=patched,
        coverage_deficit=deficit,
        objective_before=objective_before,
        objective_after=objective_after,
        objective_inflation=inflation,
        repair_rounds=1 + len(patch),
        feasible_after=True,
    )
