"""Dominating set validation.

A set S ⊆ V dominates G when every node is in S or adjacent to a node of S
(equivalently: every *closed* neighbourhood intersects S).  These checks are
used pervasively -- every algorithm's output is validated before any quality
number is reported.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx
import numpy as np

from repro.graphs.utils import closed_neighborhood, is_bulk_graph


def is_dominating_set(graph: nx.Graph, candidate: Iterable[Hashable]) -> bool:
    """Whether ``candidate`` dominates every node of ``graph``.

    Nodes in ``candidate`` that are not part of the graph are rejected with
    ``ValueError`` -- passing a stale set from a different graph is always a
    bug worth surfacing immediately.
    """
    members = set(candidate)
    if is_bulk_graph(graph):
        unknown = members - set(graph.nodes)
        if unknown:
            raise ValueError(
                f"candidate contains nodes not in the graph: {sorted(unknown)[:5]}"
            )
        flags = np.zeros(graph.n, dtype=bool)
        if members:
            flags[graph.index_of(members)] = True
        return graph.is_dominating_set(flags)
    unknown = members - set(graph.nodes())
    if unknown:
        raise ValueError(f"candidate contains nodes not in the graph: {sorted(unknown)[:5]}")
    return len(uncovered_nodes(graph, members)) == 0


def _bulk_member_flags(graph, candidate: Iterable[Hashable]) -> np.ndarray:
    """Boolean member flags for a candidate set on a CSR graph.

    Nodes outside the graph are ignored, matching the networkx branches of
    the coverage helpers (which intersect against actual neighbourhoods).
    """
    members = set(candidate) & set(graph.nodes)
    flags = np.zeros(graph.n, dtype=bool)
    if members:
        flags[graph.index_of(members)] = True
    return flags


def uncovered_nodes(graph: nx.Graph, candidate: Iterable[Hashable]) -> set[Hashable]:
    """Nodes whose closed neighbourhood contains no member of ``candidate``.

    Accepts CSR :class:`~repro.simulator.bulk.BulkGraph` inputs, for which
    the check is one array sweep.
    """
    members = set(candidate)
    if is_bulk_graph(graph):
        flags = _bulk_member_flags(graph, members)
        uncovered_flags = ~(flags | graph.neighbor_any(flags))
        return {graph.nodes[position] for position in np.flatnonzero(uncovered_flags)}
    uncovered = set()
    for node in graph.nodes():
        if node in members:
            continue
        if members.isdisjoint(graph.neighbors(node)):
            uncovered.add(node)
    return uncovered


def coverage_counts(graph: nx.Graph, candidate: Iterable[Hashable]) -> dict[Hashable, int]:
    """For each node, how many dominators cover it (|N_i ∩ S|).

    Coverage counts quantify redundancy: a minimal dominating set has many
    nodes with count 1, while a heavily redundant set (e.g. the trivial
    all-nodes set) has counts close to δ_i + 1.  CSR
    :class:`~repro.simulator.bulk.BulkGraph` inputs are counted with one
    ``bincount`` over the adjacency instead of n set intersections.
    """
    members = set(candidate)
    if is_bulk_graph(graph):
        flags = _bulk_member_flags(graph, members)
        counts = graph.neighbor_count(flags) + flags
        return {node: int(count) for node, count in zip(graph.nodes, counts)}
    return {
        node: len(members.intersection(closed_neighborhood(graph, node)))
        for node in graph.nodes()
    }


def dominated_by(graph: nx.Graph, candidate: Iterable[Hashable]) -> dict[Hashable, set[Hashable]]:
    """Map each node to the set of dominators covering it."""
    members = set(candidate)
    return {
        node: members.intersection(closed_neighborhood(graph, node))
        for node in graph.nodes()
    }


def prune_redundant(graph: nx.Graph, candidate: Iterable[Hashable]) -> frozenset:
    """Greedily remove members whose removal keeps the set dominating.

    This is a postprocessing utility (not part of the paper's algorithms);
    it is used by examples to show how much slack a distributed solution
    carries, and by tests as a sanity check that pruned sets stay dominating.
    Members are examined in descending degree order so high-coverage nodes
    are kept.
    """
    members = set(candidate)
    if not is_dominating_set(graph, members):
        raise ValueError("candidate must be dominating before pruning")
    counts = coverage_counts(graph, members)
    for node in sorted(members, key=lambda v: graph.degree(v)):
        closed = closed_neighborhood(graph, node)
        # node can be dropped iff every node it covers has another dominator.
        if all(counts[covered] >= 2 for covered in closed):
            members.remove(node)
            for covered in closed:
                counts[covered] -= 1
    return frozenset(members)
