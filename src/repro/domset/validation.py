"""Dominating set validation.

A set S ⊆ V dominates G when every node is in S or adjacent to a node of S
(equivalently: every *closed* neighbourhood intersects S).  These checks are
used pervasively -- every algorithm's output is validated before any quality
number is reported.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx
import numpy as np

from repro.graphs.utils import closed_neighborhood, is_bulk_graph


def is_dominating_set(graph: nx.Graph, candidate: Iterable[Hashable]) -> bool:
    """Whether ``candidate`` dominates every node of ``graph``.

    Nodes in ``candidate`` that are not part of the graph are rejected with
    ``ValueError`` -- passing a stale set from a different graph is always a
    bug worth surfacing immediately.
    """
    members = set(candidate)
    if is_bulk_graph(graph):
        unknown = members - set(graph.nodes)
        if unknown:
            raise ValueError(
                f"candidate contains nodes not in the graph: {sorted(unknown)[:5]}"
            )
        flags = np.zeros(graph.n, dtype=bool)
        if members:
            flags[graph.index_of(members)] = True
        return graph.is_dominating_set(flags)
    unknown = members - set(graph.nodes())
    if unknown:
        raise ValueError(f"candidate contains nodes not in the graph: {sorted(unknown)[:5]}")
    return len(uncovered_nodes(graph, members)) == 0


def _bulk_member_flags(graph, candidate: Iterable[Hashable]) -> np.ndarray:
    """Boolean member flags for a candidate set on a CSR graph.

    Nodes outside the graph are ignored, matching the networkx branches of
    the coverage helpers (which intersect against actual neighbourhoods).
    """
    members = set(candidate) & set(graph.nodes)
    flags = np.zeros(graph.n, dtype=bool)
    if members:
        flags[graph.index_of(members)] = True
    return flags


def uncovered_nodes(graph: nx.Graph, candidate: Iterable[Hashable]) -> set[Hashable]:
    """Nodes whose closed neighbourhood contains no member of ``candidate``.

    Accepts CSR :class:`~repro.simulator.bulk.BulkGraph` inputs, for which
    the check is one array sweep.
    """
    members = set(candidate)
    if is_bulk_graph(graph):
        flags = _bulk_member_flags(graph, members)
        uncovered_flags = ~(flags | graph.neighbor_any(flags))
        return {graph.nodes[position] for position in np.flatnonzero(uncovered_flags)}
    uncovered = set()
    for node in graph.nodes():
        if node in members:
            continue
        if members.isdisjoint(graph.neighbors(node)):
            uncovered.add(node)
    return uncovered


def coverage_counts(graph: nx.Graph, candidate: Iterable[Hashable]) -> dict[Hashable, int]:
    """For each node, how many dominators cover it (|N_i ∩ S|).

    Coverage counts quantify redundancy: a minimal dominating set has many
    nodes with count 1, while a heavily redundant set (e.g. the trivial
    all-nodes set) has counts close to δ_i + 1.  CSR
    :class:`~repro.simulator.bulk.BulkGraph` inputs are counted with one
    ``bincount`` over the adjacency instead of n set intersections.
    """
    members = set(candidate)
    if is_bulk_graph(graph):
        flags = _bulk_member_flags(graph, members)
        counts = graph.neighbor_count(flags) + flags
        return {node: int(count) for node, count in zip(graph.nodes, counts)}
    return {
        node: len(members.intersection(closed_neighborhood(graph, node)))
        for node in graph.nodes()
    }


def dominated_by(graph: nx.Graph, candidate: Iterable[Hashable]) -> dict[Hashable, set[Hashable]]:
    """Map each node to the set of dominators covering it."""
    members = set(candidate)
    return {
        node: members.intersection(closed_neighborhood(graph, node))
        for node in graph.nodes()
    }


def prune_redundant(graph: nx.Graph, candidate: Iterable[Hashable]) -> frozenset:
    """Greedily remove members whose removal keeps the set dominating.

    This is a postprocessing utility (not part of the paper's algorithms);
    it is used by examples to show how much slack a distributed solution
    carries, and by tests as a sanity check that pruned sets stay dominating.
    Members are examined in ascending (degree, id) order so low-coverage
    nodes are dropped first and high-coverage nodes are kept; the id
    tie-break makes the examination order -- and hence the output --
    fully deterministic.

    CSR :class:`~repro.simulator.bulk.BulkGraph` inputs run the identical
    examination sequence on arrays
    (:func:`prune_redundant_bulk`): coverage counts live in one integer
    vector and each drop is a slice decrement, so pruning stays O(n + m)
    at the n ≥ 20 000 scale.
    """
    if is_bulk_graph(graph):
        return prune_redundant_bulk(graph, candidate)
    members = set(candidate)
    if not is_dominating_set(graph, members):
        raise ValueError("candidate must be dominating before pruning")
    counts = coverage_counts(graph, members)
    for node in sorted(members, key=lambda v: (graph.degree(v), v)):
        closed = closed_neighborhood(graph, node)
        # node can be dropped iff every node it covers has another dominator.
        if all(counts[covered] >= 2 for covered in closed):
            members.remove(node)
            for covered in closed:
                counts[covered] -= 1
    return frozenset(members)


def prune_redundant_bulk(graph, candidate: Iterable[Hashable]) -> frozenset:
    """CSR implementation of :func:`prune_redundant` (identical output).

    Members are visited in the same ascending (degree, id) order -- CSR
    positions order like sorted identifiers, so ``lexsort`` on
    (position, degree) reproduces the reference sequence exactly -- and
    the per-member droppability test reads one closed-neighbourhood slice
    of the coverage-count vector.
    """
    members = set(candidate)
    unknown = members - set(graph.nodes)
    if unknown:
        raise ValueError(
            f"candidate contains nodes not in the graph: {sorted(unknown)[:5]}"
        )
    flags = np.zeros(graph.n, dtype=bool)
    if members:
        flags[graph.index_of(members)] = True
    if not graph.is_dominating_set(flags):
        raise ValueError("candidate must be dominating before pruning")
    counts = (graph.neighbor_count(flags) + flags).tolist()
    positions = np.flatnonzero(flags)
    order = positions[np.lexsort((positions, graph.degrees[positions]))]
    # The examination is inherently sequential (every drop changes the
    # counts later members see), so the hot loop runs on plain lists --
    # O(1) indexed updates without per-member array-allocation overhead.
    col = graph.col.tolist()
    indptr = graph.indptr
    keep = flags.tolist()
    for position in order.tolist():
        closed = col[indptr[position] : indptr[position + 1]]
        closed.append(position)
        # position can be dropped iff everything it covers stays covered.
        if all(counts[covered] >= 2 for covered in closed):
            keep[position] = False
            for covered in closed:
                counts[covered] -= 1
    return frozenset(
        node for node, kept in zip(graph.nodes, keep) if kept
    )
