"""Synthetic graph families used by tests, examples and benchmarks.

All generators return simple undirected :class:`networkx.Graph` objects with
integer node labels ``0..n-1`` (the convention assumed by the LP formulation
and the simulator).  Each generator accepts a ``seed`` where randomness is
involved so that experiments are reproducible.

The :func:`graph_suite` helper returns the standard collection of graphs the
benchmarks sweep over; the :class:`GraphFamily` enumeration names them.
"""

from __future__ import annotations

import enum
import itertools
import math
import random
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.simulator.bulk import BulkGraph

from repro.graphs.unit_disk import random_unit_disk_graph
from repro.graphs.utils import relabel_to_integers, validate_simple_graph


class GraphFamily(str, enum.Enum):
    """Named graph families used by the experiment sweeps."""

    ERDOS_RENYI = "erdos_renyi"
    RANDOM_REGULAR = "random_regular"
    UNIT_DISK = "unit_disk"
    GRID = "grid"
    STAR = "star"
    PATH = "path"
    CYCLE = "cycle"
    CATERPILLAR = "caterpillar"
    POWER_LAW_TREE = "power_law_tree"
    BOUNDED_DEGREE = "bounded_degree"
    STAR_OF_CLIQUES = "star_of_cliques"
    BIPARTITE = "bipartite"


def erdos_renyi_graph(n: int, p: float, seed: int | None = None) -> nx.Graph:
    """Erdős–Rényi G(n, p) graph, with isolated vertices kept.

    Isolated vertices are legitimate inputs for dominating set (they must
    dominate themselves), so they are *not* removed.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    graph = nx.gnp_random_graph(n, p, seed=seed)
    return graph


def random_regular_graph(n: int, degree: int, seed: int | None = None) -> nx.Graph:
    """Random d-regular graph (requires ``n * degree`` even and degree < n)."""
    if degree < 0:
        raise ValueError("degree must be non-negative")
    if degree >= n:
        raise ValueError("degree must be smaller than n")
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even for a regular graph to exist")
    return nx.random_regular_graph(degree, n, seed=seed)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """A rows × cols grid graph relabelled to integers."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    grid = nx.grid_2d_graph(rows, cols)
    mapping = {node: index for index, node in enumerate(sorted(grid.nodes()))}
    return nx.relabel_nodes(grid, mapping)


def star_graph(leaves: int) -> nx.Graph:
    """A star with one hub (node 0) and ``leaves`` leaves."""
    if leaves < 0:
        raise ValueError("leaves must be non-negative")
    return nx.star_graph(leaves)


def path_graph(n: int) -> nx.Graph:
    """A simple path on n nodes."""
    if n <= 0:
        raise ValueError("n must be positive")
    return nx.path_graph(n)


def cycle_graph(n: int) -> nx.Graph:
    """A simple cycle on n ≥ 3 nodes."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 nodes")
    return nx.cycle_graph(n)


def caterpillar_graph(spine: int, legs_per_node: int) -> nx.Graph:
    """A caterpillar: a path of length ``spine`` with pendant legs.

    Caterpillars are a classical worst case for naive dominating-set
    heuristics: the optimal solution is (roughly) the spine, while degree
    heuristics can be lured onto the legs.
    """
    if spine <= 0:
        raise ValueError("spine must be positive")
    if legs_per_node < 0:
        raise ValueError("legs_per_node must be non-negative")
    graph = nx.path_graph(spine)
    next_label = spine
    for spine_node in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(spine_node, next_label)
            next_label += 1
    return graph


def power_law_tree(n: int, gamma: float = 3.0, seed: int | None = None) -> nx.Graph:
    """A random tree with a power-law degree sequence (heavy hubs).

    Falls back to a random tree when networkx cannot realise the requested
    power-law sequence for small n.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if n <= 2:
        return nx.path_graph(n)
    try:
        return nx.random_powerlaw_tree(n, gamma=gamma, seed=seed, tries=2000)
    except nx.NetworkXError:
        return nx.random_labeled_tree(n, seed=seed)


def bounded_degree_graph(
    n: int, max_degree: int, edge_probability: float = 0.5, seed: int | None = None
) -> nx.Graph:
    """A random graph whose maximum degree never exceeds ``max_degree``.

    Edges are sampled in random order and accepted only when both endpoints
    still have residual degree, which yields graphs with a controlled Δ --
    exactly the parameter the paper's bounds are stated in.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if max_degree < 0:
        raise ValueError("max_degree must be non-negative")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = random.Random(seed)
    graph = nx.empty_graph(n)
    candidate_edges = list(itertools.combinations(range(n), 2))
    rng.shuffle(candidate_edges)
    for u, v in candidate_edges:
        if rng.random() > edge_probability:
            continue
        if graph.degree(u) < max_degree and graph.degree(v) < max_degree:
            graph.add_edge(u, v)
    return graph


def clique_chain(cliques: int, clique_size: int) -> nx.Graph:
    """A chain of cliques joined by single edges.

    Each clique needs exactly one dominator, so |DS_OPT| = ``cliques``;
    this gives graphs with a known optimum for ratio experiments.
    """
    if cliques <= 0 or clique_size <= 0:
        raise ValueError("cliques and clique_size must be positive")
    graph = nx.Graph()
    for index in range(cliques):
        offset = index * clique_size
        members = range(offset, offset + clique_size)
        graph.add_nodes_from(members)
        graph.add_edges_from(itertools.combinations(members, 2))
        if index > 0:
            graph.add_edge(offset - clique_size, offset)
    return graph


def star_of_cliques(
    arms: int, clique_size: int, arm_length: int = 1
) -> nx.Graph:
    """The layered construction used for the Figure-1 cascade experiment.

    A central hub is connected to ``arms`` cliques of size ``clique_size``
    through paths of ``arm_length`` relay nodes.  The hub has high degree
    and each clique has locally high degree, so during Algorithm 2's inner
    loop the hub and the clique centres become active at different
    ``a(v)``-thresholds -- reproducing the cascade the paper's Figure 1
    illustrates.
    """
    if arms <= 0 or clique_size <= 0 or arm_length < 0:
        raise ValueError("arms, clique_size must be positive; arm_length >= 0")
    graph = nx.Graph()
    hub = 0
    graph.add_node(hub)
    next_label = 1
    for _ in range(arms):
        previous = hub
        for _ in range(arm_length):
            relay = next_label
            next_label += 1
            graph.add_edge(previous, relay)
            previous = relay
        members = list(range(next_label, next_label + clique_size))
        next_label += clique_size
        graph.add_nodes_from(members)
        graph.add_edges_from(itertools.combinations(members, 2))
        graph.add_edge(previous, members[0])
    return graph


def two_level_star(hub_fanout: int, leaf_fanout: int) -> nx.Graph:
    """A two-level star: a hub whose children are themselves star centres.

    |DS_OPT| equals ``hub_fanout`` (the middle layer, or hub + children
    depending on fanouts), which makes greedy-vs-LP comparisons sharp.
    """
    if hub_fanout <= 0 or leaf_fanout < 0:
        raise ValueError("hub_fanout must be positive, leaf_fanout non-negative")
    graph = nx.Graph()
    hub = 0
    next_label = 1
    for _ in range(hub_fanout):
        middle = next_label
        next_label += 1
        graph.add_edge(hub, middle)
        for _ in range(leaf_fanout):
            graph.add_edge(middle, next_label)
            next_label += 1
    return graph


def random_bipartite_graph(
    left: int, right: int, p: float, seed: int | None = None
) -> nx.Graph:
    """Random bipartite graph (the classical set-cover-style instance)."""
    if left <= 0 or right <= 0:
        raise ValueError("both sides must be non-empty")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    graph = nx.bipartite.random_graph(left, right, p, seed=seed)
    return nx.Graph(graph)


GeneratorFn = Callable[..., nx.Graph]


def graph_suite(
    scale: str = "small", seed: int = 0
) -> "dict[str, nx.Graph | BulkGraph]":
    """The standard graph collection swept by the benchmarks.

    Parameters
    ----------
    scale:
        ``"tiny"`` (n ≈ 20, used in unit tests), ``"small"`` (n ≈ 60-120,
        default for benchmarks with exact baselines), ``"medium"``
        (n ≈ 250-400, fractional baselines only), ``"large"``
        (n ≥ 2000, vectorized backend territory), ``"xlarge"``
        (n ≥ 20 000; CSR-native :class:`~repro.simulator.bulk.BulkGraph`
        instances that never materialise per-edge Python objects -- only
        usable with the bulk backends) or ``"huge"`` (n ≥ 10⁶, the
        sharded multiprocess engine's home turf).
    seed:
        Seed shared by all random generators in the suite.

    Returns
    -------
    dict[str, networkx.Graph]
        Mapping from a descriptive instance name to the graph (for
        ``"xlarge"`` and ``"huge"``, to a
        :class:`~repro.simulator.bulk.BulkGraph`).
    """
    if scale == "tiny":
        return {
            "erdos_renyi_n20": erdos_renyi_graph(20, 0.2, seed=seed),
            "unit_disk_n20": random_unit_disk_graph(20, radius=0.35, seed=seed),
            "grid_4x5": grid_graph(4, 5),
            "star_12": star_graph(12),
            "path_15": path_graph(15),
            "caterpillar_5x2": caterpillar_graph(5, 2),
        }
    if scale == "small":
        return {
            "erdos_renyi_n60": erdos_renyi_graph(60, 0.08, seed=seed),
            "erdos_renyi_n100": erdos_renyi_graph(100, 0.05, seed=seed + 1),
            "random_regular_n80_d6": random_regular_graph(80, 6, seed=seed),
            "unit_disk_n80": random_unit_disk_graph(80, radius=0.18, seed=seed),
            "grid_8x8": grid_graph(8, 8),
            "caterpillar_12x3": caterpillar_graph(12, 3),
            "clique_chain_6x8": clique_chain(6, 8),
            "two_level_star_8x6": two_level_star(8, 6),
        }
    if scale == "medium":
        return {
            "erdos_renyi_n250": erdos_renyi_graph(250, 0.03, seed=seed),
            "random_regular_n300_d8": random_regular_graph(300, 8, seed=seed),
            "unit_disk_n300": random_unit_disk_graph(300, radius=0.1, seed=seed),
            "grid_18x18": grid_graph(18, 18),
            "power_law_tree_n300": power_law_tree(300, seed=seed),
            "bounded_degree_n350_d10": bounded_degree_graph(
                350, 10, edge_probability=0.15, seed=seed
            ),
        }
    if scale == "large":
        return {
            "erdos_renyi_n2000": erdos_renyi_graph(2000, 0.004, seed=seed),
            "random_regular_n2000_d6": random_regular_graph(2000, 6, seed=seed),
            "grid_45x45": grid_graph(45, 45),
            "caterpillar_500x3": caterpillar_graph(500, 3),
            "clique_chain_100x20": clique_chain(100, 20),
        }
    if scale in ("xlarge", "huge"):
        from repro.graphs.bulk import bulk_graph_suite

        return bulk_graph_suite(scale, seed=seed)
    raise ValueError(
        f"unknown scale {scale!r}; expected 'tiny', 'small', 'medium', "
        "'large', 'xlarge' or 'huge'"
    )


def make_graph(family: GraphFamily | str, seed: int = 0, **params: object) -> nx.Graph:
    """Build one graph from a named family with explicit parameters.

    This is the programmatic entry point used by the CLI and the experiment
    runner; the parameters accepted per family match the generator functions
    above.
    """
    family = GraphFamily(family)
    builders: Mapping[GraphFamily, Callable[[], nx.Graph]] = {
        GraphFamily.ERDOS_RENYI: lambda: erdos_renyi_graph(
            int(params.get("n", 100)), float(params.get("p", 0.05)), seed=seed
        ),
        GraphFamily.RANDOM_REGULAR: lambda: random_regular_graph(
            int(params.get("n", 100)), int(params.get("degree", 6)), seed=seed
        ),
        GraphFamily.UNIT_DISK: lambda: random_unit_disk_graph(
            int(params.get("n", 100)), float(params.get("radius", 0.15)), seed=seed
        ),
        GraphFamily.GRID: lambda: grid_graph(
            int(params.get("rows", 10)), int(params.get("cols", 10))
        ),
        GraphFamily.STAR: lambda: star_graph(int(params.get("leaves", 20))),
        GraphFamily.PATH: lambda: path_graph(int(params.get("n", 20))),
        GraphFamily.CYCLE: lambda: cycle_graph(int(params.get("n", 20))),
        GraphFamily.CATERPILLAR: lambda: caterpillar_graph(
            int(params.get("spine", 10)), int(params.get("legs_per_node", 2))
        ),
        GraphFamily.POWER_LAW_TREE: lambda: power_law_tree(
            int(params.get("n", 100)), seed=seed
        ),
        GraphFamily.BOUNDED_DEGREE: lambda: bounded_degree_graph(
            int(params.get("n", 100)),
            int(params.get("max_degree", 8)),
            float(params.get("edge_probability", 0.2)),
            seed=seed,
        ),
        GraphFamily.STAR_OF_CLIQUES: lambda: star_of_cliques(
            int(params.get("arms", 4)),
            int(params.get("clique_size", 6)),
            int(params.get("arm_length", 1)),
        ),
        GraphFamily.BIPARTITE: lambda: random_bipartite_graph(
            int(params.get("left", 30)),
            int(params.get("right", 30)),
            float(params.get("p", 0.1)),
            seed=seed,
        ),
    }
    graph = builders[family]()
    validate_simple_graph(graph)
    return relabel_to_integers(graph)
