"""Graph substrate: generators and neighbourhood helpers.

The paper's algorithms run on arbitrary undirected graphs; their motivation
is wireless ad-hoc networks, which are conventionally modelled as unit disk
graphs.  This package provides:

* :mod:`~repro.graphs.generators` -- the synthetic graph families used by
  the test suite and the benchmarks (Erdős–Rényi, random regular, grids,
  stars/cliques, caterpillars, power-law trees, bounded-degree graphs, and
  the star-of-cliques construction used for the Figure-1 experiment).
* :mod:`~repro.graphs.unit_disk` -- unit disk graphs with controllable
  density, the canonical ad-hoc-network model.
* :mod:`~repro.graphs.mobility` -- a random-waypoint mobility model that
  produces a sequence of unit disk graphs (used by the dynamic-topology
  example).
* :mod:`~repro.graphs.utils` -- the paper's notation as code: δ_i, δ⁽¹⁾_i,
  δ⁽²⁾_i, closed neighbourhoods N_i, and the neighbourhood matrix N.
"""

from repro.graphs.generators import (
    GraphFamily,
    bounded_degree_graph,
    caterpillar_graph,
    clique_chain,
    cycle_graph,
    erdos_renyi_graph,
    graph_suite,
    grid_graph,
    path_graph,
    power_law_tree,
    random_bipartite_graph,
    random_regular_graph,
    star_graph,
    star_of_cliques,
    two_level_star,
)
from repro.graphs.bulk import (
    bulk_caterpillar_graph,
    bulk_erdos_renyi_graph,
    bulk_graph_suite,
    bulk_grid_graph,
    bulk_unit_disk_graph,
)
from repro.graphs.mobility import MobilityTrace, random_waypoint_trace
from repro.graphs.unit_disk import (
    random_unit_disk_graph,
    random_unit_disk_positions,
    unit_disk_edges,
    unit_disk_graph,
)
from repro.graphs.utils import (
    closed_neighborhood,
    closed_neighborhoods,
    degree_map,
    delta_one,
    delta_two,
    max_degree,
    neighborhood_matrix,
)

__all__ = [
    "GraphFamily",
    "MobilityTrace",
    "bounded_degree_graph",
    "bulk_caterpillar_graph",
    "bulk_erdos_renyi_graph",
    "bulk_graph_suite",
    "bulk_grid_graph",
    "bulk_unit_disk_graph",
    "caterpillar_graph",
    "clique_chain",
    "closed_neighborhood",
    "closed_neighborhoods",
    "cycle_graph",
    "degree_map",
    "delta_one",
    "delta_two",
    "erdos_renyi_graph",
    "graph_suite",
    "grid_graph",
    "max_degree",
    "neighborhood_matrix",
    "path_graph",
    "power_law_tree",
    "random_bipartite_graph",
    "random_regular_graph",
    "random_unit_disk_graph",
    "random_unit_disk_positions",
    "random_waypoint_trace",
    "star_graph",
    "star_of_cliques",
    "two_level_star",
    "unit_disk_edges",
    "unit_disk_graph",
]
