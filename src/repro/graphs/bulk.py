"""Direct-to-CSR graph generators for the large random families.

The networkx generators in :mod:`repro.graphs.generators` materialise one
Python object per node and per edge, which caps comfortable instance sizes
at a few thousand nodes.  The constructors here build
:class:`~repro.simulator.bulk.BulkGraph` CSR structures straight from edge
*arrays* -- no per-edge Python objects at any point -- so sweeps at
n ≥ 20 000 (the ``"xlarge"`` scale) become routine.

Random generators take explicit seeds and are deterministic per seed.
``bulk_unit_disk_graph`` places the *identical* points as
:func:`repro.graphs.unit_disk.random_unit_disk_graph` for the same seed, so
the two construction paths produce interchangeable graphs; the pure-array
families (``bulk_erdos_renyi_graph``) use numpy bit generators and define
their own edge distribution (same family, not the same sample as the
networkx generator).
"""

from __future__ import annotations

import numpy as np

from repro.simulator.bulk import BulkGraph
from repro.graphs.unit_disk import random_unit_disk_positions, unit_disk_edges


def bulk_unit_disk_graph(
    n: int, radius: float, seed: int | None = None
) -> BulkGraph:
    """A random unit disk graph built straight into CSR form.

    Point placement matches :func:`~repro.graphs.unit_disk.random_unit_disk_graph`
    draw for draw, and edge enumeration uses the grid-bucket spatial hash,
    so the resulting CSR equals ``BulkGraph.from_graph`` of the networkx
    generator at a fraction of the cost.  The placed points are exposed as
    the ``positions`` attribute ((n, 2) array).
    """
    points = random_unit_disk_positions(n, seed=seed)
    u, v = unit_disk_edges(points, radius)
    bulk = BulkGraph.from_edges(n, u, v)
    bulk.positions = points
    return bulk


def bulk_erdos_renyi_graph(n: int, p: float, seed: int | None = None) -> BulkGraph:
    """G(n, p) sampled directly into CSR form with geometric skipping.

    Instead of flipping one coin per pair, the generator draws the *gaps*
    between successive edges in the flattened upper-triangular pair order
    (each gap is geometric with success probability p), which costs
    O(expected edges) regardless of n.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    total_pairs = n * (n - 1) // 2
    if p == 0.0 or total_pairs == 0:
        return BulkGraph(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64))
    if p == 1.0:
        linear = np.arange(total_pairs, dtype=np.int64)
    else:
        rng = np.random.default_rng(seed)
        chunks: list[np.ndarray] = []
        position = -1
        # Expected edges ≈ p · total_pairs; draw gaps in batches until the
        # pair space is exhausted.
        batch = max(1024, int(1.1 * p * total_pairs) + 16)
        while position < total_pairs - 1:
            gaps = rng.geometric(p, size=batch)
            positions = position + np.cumsum(gaps)
            chunks.append(positions)
            position = int(positions[-1])
        linear = np.concatenate(chunks)
        linear = linear[linear < total_pairs]

    # Invert the triangular flattening: pair t belongs to row u with
    # offsets[u] ≤ t < offsets[u+1], then v = u + 1 + (t − offsets[u]).
    offsets = _row_offsets(n)
    u = np.searchsorted(offsets, linear, side="right") - 1
    v = linear - offsets[u] + u + 1
    return BulkGraph.from_edges(n, u, v)


def _row_offsets(n: int) -> np.ndarray:
    """Start offset of each row u in the flattened upper-triangular order."""
    counts = np.arange(n - 1, -1, -1, dtype=np.int64)  # row u has n-1-u pairs
    return np.concatenate(([0], np.cumsum(counts[:-1])))


def bulk_grid_graph(rows: int, cols: int) -> BulkGraph:
    """A rows × cols grid graph built straight into CSR form.

    Node labels follow :func:`repro.graphs.generators.grid_graph`'s
    row-major integer relabelling, so the CSR equals
    ``BulkGraph.from_graph(grid_graph(rows, cols))``.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    u = np.concatenate([ids[:, :-1].ravel(), ids[:-1, :].ravel()])
    v = np.concatenate([ids[:, 1:].ravel(), ids[1:, :].ravel()])
    return BulkGraph.from_edges(rows * cols, u, v)


def bulk_caterpillar_graph(spine: int, legs_per_node: int) -> BulkGraph:
    """A caterpillar (path + pendant legs) built straight into CSR form.

    Matches :func:`repro.graphs.generators.caterpillar_graph`'s labelling:
    spine nodes 0..spine-1, then legs in spine order.
    """
    if spine <= 0:
        raise ValueError("spine must be positive")
    if legs_per_node < 0:
        raise ValueError("legs_per_node must be non-negative")
    spine_u = np.arange(spine - 1, dtype=np.int64)
    spine_v = spine_u + 1
    leg_owner = np.repeat(np.arange(spine, dtype=np.int64), legs_per_node)
    leg_id = spine + np.arange(spine * legs_per_node, dtype=np.int64)
    u = np.concatenate([spine_u, leg_owner])
    v = np.concatenate([spine_v, leg_id])
    return BulkGraph.from_edges(spine + spine * legs_per_node, u, v)


def bulk_graph_suite(scale: str = "xlarge", seed: int = 0) -> dict[str, BulkGraph]:
    """CSR-native graph collections for vectorized-backend sweeps.

    ``"large"`` mirrors the sizes of ``graph_suite("large")``; ``"xlarge"``
    (n ≥ 20 000) and ``"huge"`` (n ≥ 10⁶, the sharded-engine scale) exist
    only here -- those instances are never materialised as networkx
    graphs.
    """
    if scale == "large":
        return {
            "erdos_renyi_n2000": bulk_erdos_renyi_graph(2000, 0.004, seed=seed),
            "unit_disk_n2000": bulk_unit_disk_graph(2000, radius=0.04, seed=seed),
            "grid_45x45": bulk_grid_graph(45, 45),
            "caterpillar_500x3": bulk_caterpillar_graph(500, 3),
        }
    if scale == "xlarge":
        return {
            "erdos_renyi_n20000": bulk_erdos_renyi_graph(20000, 4e-4, seed=seed),
            "unit_disk_n20000": bulk_unit_disk_graph(20000, radius=0.012, seed=seed),
            "grid_150x150": bulk_grid_graph(150, 150),
            "caterpillar_5000x3": bulk_caterpillar_graph(5000, 3),
        }
    if scale == "huge":
        # Expected mean degree ≈ 6 for the ER family (p = 6 / n) and ≈ 6
        # for the unit disk (π r² n ≈ 6); every instance clears n = 10⁶.
        return {
            "erdos_renyi_n1e6": bulk_erdos_renyi_graph(1_000_000, 6e-6, seed=seed),
            "unit_disk_n1e6": bulk_unit_disk_graph(
                1_000_000, radius=0.00138, seed=seed
            ),
            "grid_1000x1000": bulk_grid_graph(1000, 1000),
            "caterpillar_250000x3": bulk_caterpillar_graph(250_000, 3),
        }
    raise ValueError(
        f"unknown scale {scale!r}; expected 'large', 'xlarge' or 'huge'"
    )
