"""Unit disk graphs -- the canonical ad-hoc network model.

The paper motivates dominating sets by clustering in mobile ad-hoc networks.
The standard abstraction of such networks is the *unit disk graph* (UDG):
nodes are points in the plane and two nodes are adjacent exactly when their
Euclidean distance is at most a transmission radius r.

The generators here place points either explicitly (``unit_disk_graph``) or
uniformly at random in the unit square (``random_unit_disk_graph``) and
store the positions on the graph (``graph.nodes[v]["pos"]``) so the mobility
model and plotting code can reuse them.
"""

from __future__ import annotations

import math
import random
from typing import Mapping, Sequence

import networkx as nx


def unit_disk_graph(
    positions: Mapping[int, tuple[float, float]] | Sequence[tuple[float, float]],
    radius: float,
) -> nx.Graph:
    """Build the unit disk graph of explicit point positions.

    Parameters
    ----------
    positions:
        Either a mapping ``node -> (x, y)`` or a sequence of points (in which
        case nodes are numbered 0..n-1 in sequence order).
    radius:
        Transmission radius; two nodes are adjacent iff their Euclidean
        distance is ≤ ``radius``.

    Returns
    -------
    networkx.Graph
        Graph with a ``pos`` attribute on every node.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if not isinstance(positions, Mapping):
        positions = {index: point for index, point in enumerate(positions)}
    if len(positions) == 0:
        raise ValueError("at least one position is required")

    graph = nx.Graph()
    for node, point in positions.items():
        graph.add_node(node, pos=(float(point[0]), float(point[1])))

    nodes = sorted(positions)
    for i, u in enumerate(nodes):
        ux, uy = positions[u]
        for v in nodes[i + 1 :]:
            vx, vy = positions[v]
            if math.hypot(ux - vx, uy - vy) <= radius:
                graph.add_edge(u, v)
    return graph


def random_unit_disk_graph(
    n: int, radius: float, seed: int | None = None
) -> nx.Graph:
    """A unit disk graph on n points placed uniformly in the unit square.

    Parameters
    ----------
    n:
        Number of nodes.
    radius:
        Transmission radius (in unit-square coordinates).  Density, and hence
        Δ, grows roughly like ``n · π · radius²``.
    seed:
        Seed for point placement.

    Returns
    -------
    networkx.Graph
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    positions = {node: (rng.random(), rng.random()) for node in range(n)}
    return unit_disk_graph(positions, radius)


def positions_of(graph: nx.Graph) -> dict[int, tuple[float, float]]:
    """Extract the stored positions of a unit disk graph."""
    positions = {}
    for node, data in graph.nodes(data=True):
        if "pos" not in data:
            raise ValueError(f"node {node} has no position attribute")
        positions[node] = data["pos"]
    return positions
