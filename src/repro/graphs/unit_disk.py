"""Unit disk graphs -- the canonical ad-hoc network model.

The paper motivates dominating sets by clustering in mobile ad-hoc networks.
The standard abstraction of such networks is the *unit disk graph* (UDG):
nodes are points in the plane and two nodes are adjacent exactly when their
Euclidean distance is at most a transmission radius r.

The generators here place points either explicitly (``unit_disk_graph``) or
uniformly at random in the unit square (``random_unit_disk_graph``) and
store the positions on the graph (``graph.nodes[v]["pos"]``) so the mobility
model and plotting code can reuse them.

Edge enumeration uses grid-bucket spatial hashing (:func:`unit_disk_edges`):
points are binned into square cells of side slightly above r, and only the
points of each cell and its forward half-neighbourhood are compared --
O(n + candidate pairs) instead of the O(n²) all-pairs scan, while producing
the *identical* edge set (the adjacency predicate, including its exact
floating-point boundary behaviour, is ``math.hypot(dx, dy) <= r``).
"""

from __future__ import annotations

import math
import random
from typing import Mapping, Sequence

import networkx as nx
import numpy as np

#: Cell side = radius * _CELL_SLACK.  The slack keeps every pair at distance
#: ≤ r inside a 3×3 cell neighbourhood even when the computed quotients
#: ``x / cell`` carry a couple of ULPs of rounding error.
_CELL_SLACK = 1.0 + 1e-9


def _pairwise_edges(points: np.ndarray, radius: float) -> tuple[list[int], list[int]]:
    """Reference O(n²) edge enumeration (the pre-bucketing implementation).

    Kept as the ground truth for the property tests and the construction
    benchmark; the grid-bucket path must reproduce its edge set exactly.
    """
    n = points.shape[0]
    us: list[int] = []
    vs: list[int] = []
    for i in range(n):
        ux, uy = points[i]
        for j in range(i + 1, n):
            vx, vy = points[j]
            if math.hypot(ux - vx, uy - vy) <= radius:
                us.append(i)
                vs.append(j)
    return us, vs


def _block_cross_pairs(
    order: np.ndarray,
    a_starts: np.ndarray,
    a_counts: np.ndarray,
    b_starts: np.ndarray,
    b_counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """All (a, b) index pairs of matched cell blocks, fully vectorized.

    Block ``t`` contributes the cross product of ``order[a_starts[t]:...]``
    with ``order[b_starts[t]:...]``.
    """
    totals = a_counts * b_counts
    offsets = np.concatenate(([0], np.cumsum(totals)))
    pair_count = int(offsets[-1])
    if pair_count == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    block = np.repeat(np.arange(totals.size, dtype=np.int64), totals)
    local = np.arange(pair_count, dtype=np.int64) - offsets[block]
    a_local = local // b_counts[block]
    b_local = local - a_local * b_counts[block]
    return order[a_starts[block] + a_local], order[b_starts[block] + b_local]


def _candidate_pairs(points: np.ndarray, radius: float) -> tuple[np.ndarray, np.ndarray]:
    """Candidate index pairs from grid-bucket spatial hashing.

    Every pair at distance ≤ ``radius`` is guaranteed to be among the
    candidates; the caller applies the exact distance predicate.
    """
    n = points.shape[0]
    cell = radius * _CELL_SLACK
    ix = np.floor((points[:, 0] - points[:, 0].min()) / cell)
    iy = np.floor((points[:, 1] - points[:, 1].min()) / cell)
    width = ix.max() + 1.0
    if not (np.isfinite(width) and np.isfinite(iy.max())) or width * (
        iy.max() + 1.0
    ) > 2**62:
        # Degenerate geometry (astronomic coordinate spread vs. radius);
        # fall back to the always-correct quadratic scan.
        us, vs = _pairwise_edges(points, radius)
        return np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)

    stride = np.int64(width) + 2  # +2 so key ± 1 never wraps across rows
    keys = ix.astype(np.int64) * stride + iy.astype(np.int64)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    unique_keys, starts, counts = np.unique(
        sorted_keys, return_index=True, return_counts=True
    )

    u_chunks: list[np.ndarray] = []
    v_chunks: list[np.ndarray] = []

    # Within-cell pairs: cross each occupied cell with itself, upper half.
    a, b = _block_cross_pairs(order, starts, counts, starts, counts)
    mask = a < b
    u_chunks.append(a[mask])
    v_chunks.append(b[mask])

    # Cross-cell pairs: forward half-neighbourhood, so each unordered cell
    # pair is visited exactly once.
    for di, dj in ((0, 1), (1, -1), (1, 0), (1, 1)):
        neighbor = unique_keys + di * stride + dj
        pos = np.searchsorted(unique_keys, neighbor)
        pos_clipped = np.minimum(pos, unique_keys.size - 1)
        found = np.flatnonzero(unique_keys[pos_clipped] == neighbor)
        if found.size == 0:
            continue
        a, b = _block_cross_pairs(
            order,
            starts[found],
            counts[found],
            starts[pos_clipped[found]],
            counts[pos_clipped[found]],
        )
        u_chunks.append(a)
        v_chunks.append(b)

    return np.concatenate(u_chunks), np.concatenate(v_chunks)


def unit_disk_edges(
    points: np.ndarray, radius: float, method: str = "grid"
) -> tuple[np.ndarray, np.ndarray]:
    """Edge index arrays of the unit disk graph on an (n, 2) point array.

    Parameters
    ----------
    points:
        Point coordinates, one row per node.
    radius:
        Transmission radius; nodes ``i < j`` are adjacent iff
        ``math.hypot(dx, dy) <= radius``.
    method:
        ``"grid"`` (spatial hashing, near-linear for bounded density) or
        ``"pairwise"`` (the O(n²) reference scan).

    Returns
    -------
    (u, v)
        ``int64`` arrays with ``u[t] < v[t]`` for every edge ``t``.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    points = np.ascontiguousarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be an (n, 2) array")
    if points.shape[0] < 2:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if method == "pairwise":
        us, vs = _pairwise_edges(points, radius)
        return np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)
    if method != "grid":
        raise ValueError(f"unknown method {method!r}; expected 'grid' or 'pairwise'")

    if radius == 0.0:
        # Cells of side 0 are meaningless; adjacency degenerates to exact
        # coincidence, which is a grouping problem.
        _, inverse, counts = np.unique(
            points, axis=0, return_inverse=True, return_counts=True
        )
        if counts.max(initial=0) <= 1:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        order = np.argsort(inverse, kind="stable")
        starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
        a, b = _block_cross_pairs(order, starts, counts, starts, counts)
        mask = a < b
        return a[mask], b[mask]

    u, v = _candidate_pairs(points, radius)
    if u.size == 0:
        return u, v
    dx = points[u, 0] - points[v, 0]
    dy = points[u, 1] - points[v, 1]
    distance = np.hypot(dx, dy)
    inside = distance <= radius
    # np.hypot (the platform's C hypot) and math.hypot (CPython's correctly
    # rounded implementation) can disagree by an ULP.  Pairs within a few
    # ULPs of the radius are re-decided with math.hypot -- the predicate the
    # pairwise reference uses -- so the edge set is reproduced exactly even
    # for boundary-distance point sets.
    band = np.flatnonzero(np.abs(distance - radius) <= 8.0 * np.spacing(radius))
    for t in band:
        inside[t] = math.hypot(float(dx[t]), float(dy[t])) <= radius
    u, v = u[inside], v[inside]
    swap = u > v
    u[swap], v[swap] = v[swap], u[swap]
    return u, v


def unit_disk_graph(
    positions: Mapping[int, tuple[float, float]] | Sequence[tuple[float, float]],
    radius: float,
    method: str = "grid",
) -> nx.Graph:
    """Build the unit disk graph of explicit point positions.

    Parameters
    ----------
    positions:
        Either a mapping ``node -> (x, y)`` or a sequence of points (in which
        case nodes are numbered 0..n-1 in sequence order).
    radius:
        Transmission radius; two nodes are adjacent iff their Euclidean
        distance is ≤ ``radius``.
    method:
        Edge enumeration strategy (see :func:`unit_disk_edges`); the default
        grid bucketing produces the identical edge set at a fraction of the
        cost.

    Returns
    -------
    networkx.Graph
        Graph with a ``pos`` attribute on every node.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if not isinstance(positions, Mapping):
        positions = {index: point for index, point in enumerate(positions)}
    if len(positions) == 0:
        raise ValueError("at least one position is required")

    graph = nx.Graph()
    for node, point in positions.items():
        graph.add_node(node, pos=(float(point[0]), float(point[1])))

    nodes = sorted(positions)
    points = np.array(
        [(float(positions[node][0]), float(positions[node][1])) for node in nodes],
        dtype=np.float64,
    )
    u, v = unit_disk_edges(points, radius, method=method)
    graph.add_edges_from((nodes[int(a)], nodes[int(b)]) for a, b in zip(u, v))
    return graph


def random_unit_disk_positions(n: int, seed: int | None = None) -> np.ndarray:
    """n points placed uniformly in the unit square, as an (n, 2) array.

    Uses ``random.Random(seed)`` with one (x, y) draw per ascending node id,
    so :func:`random_unit_disk_graph` and the direct-to-CSR generator in
    :mod:`repro.graphs.bulk` place identical points for identical seeds.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    return np.array([(rng.random(), rng.random()) for _ in range(n)], dtype=np.float64)


def random_unit_disk_graph(
    n: int, radius: float, seed: int | None = None
) -> nx.Graph:
    """A unit disk graph on n points placed uniformly in the unit square.

    Parameters
    ----------
    n:
        Number of nodes.
    radius:
        Transmission radius (in unit-square coordinates).  Density, and hence
        Δ, grows roughly like ``n · π · radius²``.
    seed:
        Seed for point placement.

    Returns
    -------
    networkx.Graph
    """
    points = random_unit_disk_positions(n, seed=seed)
    return unit_disk_graph({node: tuple(point) for node, point in enumerate(points)}, radius)


def positions_of(graph: nx.Graph) -> dict[int, tuple[float, float]]:
    """Extract the stored positions of a unit disk graph."""
    positions = {}
    for node, data in graph.nodes(data=True):
        if "pos" not in data:
            raise ValueError(f"node {node} has no position attribute")
        positions[node] = data["pos"]
    return positions
