"""The paper's graph notation as code.

Section 3 of the paper defines, for a graph G = (V, E) with nodes
v_1, ..., v_n:

* ``N_i`` -- the *closed* neighbourhood of v_i (v_i plus its neighbours),
* ``δ_i`` -- the degree of v_i,
* ``δ⁽¹⁾_i = max_{j ∈ N_i} δ_j`` -- the maximum degree in N_i,
* ``δ⁽²⁾_i = max_{j ∈ N_i} δ⁽¹⁾_j`` -- the maximum degree within distance 2,
* ``Δ`` -- the maximum degree of the graph, and
* the *neighbourhood matrix* ``N`` -- the adjacency matrix plus the identity.

These helpers are used by the LP formulations, the centralized baselines and
the validation utilities.  The distributed algorithms never call them: they
compute the same quantities via messages, as the paper requires.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

import networkx as nx
import numpy as np


def degree_map(graph: nx.Graph) -> dict[Hashable, int]:
    """Map every node to its degree δ_i."""
    return {node: degree for node, degree in graph.degree()}


def is_bulk_graph(graph: object) -> bool:
    """Whether ``graph`` is a CSR :class:`~repro.simulator.bulk.BulkGraph`."""
    from repro.simulator.bulk import BulkGraph

    return isinstance(graph, BulkGraph)


def max_degree(graph: nx.Graph) -> int:
    """The maximum degree Δ of the graph (0 for an edgeless graph).

    Accepts both networkx graphs and CSR
    :class:`~repro.simulator.bulk.BulkGraph` instances.
    """
    if is_bulk_graph(graph):
        return graph.max_degree
    if graph.number_of_nodes() == 0:
        raise ValueError("graph has no nodes")
    return max(degree for _, degree in graph.degree())


def closed_neighborhood(graph: nx.Graph, node: Hashable) -> frozenset:
    """The closed neighbourhood N_i = {v_i} ∪ neighbours of ``node``."""
    return frozenset((node, *graph.neighbors(node)))


def closed_neighborhoods(graph: nx.Graph) -> dict[Hashable, frozenset]:
    """Closed neighbourhoods of every node."""
    return {node: closed_neighborhood(graph, node) for node in graph.nodes()}


def delta_one(graph: nx.Graph) -> dict[Hashable, int]:
    """δ⁽¹⁾_i = max degree over the closed neighbourhood of each node."""
    degrees = degree_map(graph)
    return {
        node: max(degrees[neighbor] for neighbor in closed_neighborhood(graph, node))
        for node in graph.nodes()
    }


def delta_two(graph: nx.Graph) -> dict[Hashable, int]:
    """δ⁽²⁾_i = max degree over all nodes within distance 2 of each node.

    Computed exactly as in the paper's remark below Algorithm 1:
    δ⁽²⁾_i = max_{j ∈ N_i} δ⁽¹⁾_j.
    """
    first_level = delta_one(graph)
    return {
        node: max(
            first_level[neighbor] for neighbor in closed_neighborhood(graph, node)
        )
        for node in graph.nodes()
    }


def neighborhood_matrix(
    graph: nx.Graph, nodelist: Sequence[Hashable] | None = None
) -> np.ndarray:
    """The neighbourhood matrix N = A + I (adjacency plus identity).

    ``N · x ≥ 1`` is exactly the domination constraint of the paper's
    integer program IP_MDS and of its LP relaxation LP_MDS.

    Parameters
    ----------
    graph:
        The input graph.
    nodelist:
        Row/column ordering.  Defaults to ``sorted(graph.nodes())``.

    Returns
    -------
    numpy.ndarray
        A dense ``n × n`` 0/1 matrix with ones on the diagonal.
    """
    if nodelist is None:
        nodelist = sorted(graph.nodes())
    adjacency = nx.to_numpy_array(graph, nodelist=nodelist, dtype=float)
    return adjacency + np.eye(len(nodelist))


def node_index(graph: nx.Graph) -> dict[Hashable, int]:
    """Map nodes to their row index in the canonical (sorted) ordering."""
    return {node: index for index, node in enumerate(sorted(graph.nodes()))}


def coverage(
    graph: nx.Graph, values: Mapping[Hashable, float]
) -> dict[Hashable, float]:
    """For every node, the sum of ``values`` over its closed neighbourhood.

    This is the quantity ``Σ_{j ∈ N_i} x_j`` that appears in the feasibility
    condition of LP_MDS and in the gray/white colouring rule of the
    distributed algorithms.
    """
    return {
        node: sum(values.get(neighbor, 0.0) for neighbor in closed_neighborhood(graph, node))
        for node in graph.nodes()
    }


def validate_simple_graph(graph: nx.Graph) -> None:
    """Raise ``ValueError`` for graphs the simulator cannot execute."""
    if graph.number_of_nodes() == 0:
        raise ValueError("graph has no nodes")
    if graph.is_directed():
        raise ValueError("graph must be undirected")
    if any(u == v for u, v in graph.edges()):
        raise ValueError("graph must not contain self loops")


def relabel_to_integers(graph: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 preserving sorted order of the originals."""
    mapping = {node: index for index, node in enumerate(sorted(graph.nodes()))}
    return nx.relabel_nodes(graph, mapping, copy=True)
