"""Random-waypoint mobility for dynamic-topology experiments.

Ad-hoc network topologies change as nodes move.  The random-waypoint model
is the standard synthetic mobility model: each node repeatedly picks a
random destination in the unit square and moves towards it at a random
speed.  Sampling the node positions at regular intervals yields a sequence
of unit disk graphs ("snapshots"); the dynamic-topology example recomputes
a dominating set on each snapshot and measures how much the cluster-head
set churns.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import networkx as nx

from repro.graphs.unit_disk import unit_disk_graph


@dataclass
class MobilityTrace:
    """A sequence of topology snapshots produced by a mobility model.

    Attributes
    ----------
    snapshots:
        Unit disk graphs sampled at consecutive time steps.  All snapshots
        share the same node set.
    positions:
        Node positions per snapshot (parallel to ``snapshots``).
    radius:
        The transmission radius used to build every snapshot.
    """

    snapshots: list[nx.Graph] = field(default_factory=list)
    positions: list[dict[int, tuple[float, float]]] = field(default_factory=list)
    radius: float = 0.0

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[nx.Graph]:
        return iter(self.snapshots)

    def churn(self, sets: Sequence[frozenset[int]]) -> list[float]:
        """Fraction of cluster heads replaced between consecutive snapshots.

        ``sets[t]`` is the dominating set computed on ``snapshots[t]``.
        Churn at step t is ``|sets[t] Δ sets[t-1]| / max(1, |sets[t-1]|)``
        (symmetric difference normalised by the previous set size).
        """
        if len(sets) != len(self.snapshots):
            raise ValueError("one dominating set per snapshot is required")
        churn_values = []
        for previous, current in zip(sets, sets[1:]):
            symmetric = len(previous.symmetric_difference(current))
            churn_values.append(symmetric / max(1, len(previous)))
        return churn_values


def random_waypoint_trace(
    n: int,
    radius: float,
    steps: int,
    speed_range: tuple[float, float] = (0.01, 0.05),
    pause_probability: float = 0.1,
    seed: int | None = None,
) -> MobilityTrace:
    """Generate a random-waypoint mobility trace of unit disk snapshots.

    Parameters
    ----------
    n:
        Number of mobile nodes.
    radius:
        Transmission radius used for every snapshot.
    steps:
        Number of snapshots to produce.
    speed_range:
        (min, max) distance a node travels per step while moving.
    pause_probability:
        Probability per step that a node pauses instead of moving.
    seed:
        Randomness seed.

    Returns
    -------
    MobilityTrace
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if steps <= 0:
        raise ValueError("steps must be positive")
    if not 0.0 <= pause_probability <= 1.0:
        raise ValueError("pause_probability must be in [0, 1]")
    low_speed, high_speed = speed_range
    if low_speed < 0 or high_speed < low_speed:
        raise ValueError("speed_range must satisfy 0 <= min <= max")

    rng = random.Random(seed)
    positions = {node: (rng.random(), rng.random()) for node in range(n)}
    waypoints = {node: (rng.random(), rng.random()) for node in range(n)}
    speeds = {node: rng.uniform(low_speed, high_speed) for node in range(n)}

    trace = MobilityTrace(radius=radius)
    for _ in range(steps):
        trace.snapshots.append(unit_disk_graph(positions, radius))
        trace.positions.append(dict(positions))

        for node in range(n):
            if rng.random() < pause_probability:
                continue
            x, y = positions[node]
            wx, wy = waypoints[node]
            dx, dy = wx - x, wy - y
            distance = math.hypot(dx, dy)
            step = speeds[node]
            if distance <= step:
                # Waypoint reached: pick a new destination and speed.
                positions[node] = (wx, wy)
                waypoints[node] = (rng.random(), rng.random())
                speeds[node] = rng.uniform(low_speed, high_speed)
            else:
                positions[node] = (x + dx / distance * step, y + dy / distance * step)
    return trace
