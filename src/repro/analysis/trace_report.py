"""Per-phase observability reports computed from execution traces.

A *phase* is one outer-loop iteration ℓ of Algorithm 2/3 (k phases in
total, counting down from k-1 to 0).  The paper's analysis is phrased
per phase -- the dynamic-degree bound of Lemmas 2/5 shrinks with ℓ, the
active-set bound of Lemmas 3/6 shrinks within the phase -- so this module
aggregates a trace into the per-phase quantities worth eyeballing:

* the distribution of dynamic degrees at the start of the phase
  (mean / P95 / P99 / max -- directly comparable to the Lemma 2 bound),
* coverage growth: how many nodes are already gray when the phase starts
  and how many turn gray in each inner iteration,
* active-node counts per inner iteration (the quantity Lemmas 3/6 bound),
* the total fractional mass Σx at the end of the phase, and
* optionally the per-round message histogram (from
  :class:`~repro.simulator.metrics.ExecutionMetrics`) and per-round
  message-drop counters (recorded by the simulator under fault models).

Everything is computed by array reductions over a
:class:`~repro.simulator.columnar.ColumnarTrace`; event-based
:class:`~repro.simulator.trace.ExecutionTrace` inputs are converted first,
so both backends' traces produce the same report for the same run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.simulator.columnar import ColumnarTrace
from repro.simulator.metrics import ExecutionMetrics
from repro.simulator.trace import ExecutionTrace

__all__ = ["PhaseReport", "TraceReport", "trace_report"]


@dataclass(frozen=True)
class PhaseReport:
    """Aggregates for one outer-loop iteration (phase) ℓ."""

    ell: int
    #: Nodes that reported an ``outer-loop-start`` event for this phase.
    nodes: int
    #: White / gray split at the start of the phase.
    white_at_start: int
    gray_at_start: int
    #: Dynamic-degree distribution at the start of the phase.
    dynamic_degree_mean: float
    dynamic_degree_p95: float
    dynamic_degree_p99: float
    dynamic_degree_max: float
    #: Active-node count per inner iteration, in execution order (m = k-1..0).
    active_counts: tuple[int, ...]
    #: Nodes newly coloured gray per inner iteration, in execution order.
    newly_gray: tuple[int, ...]
    #: Total fractional mass Σ x_i after the phase's last inner iteration.
    x_mass_end: float

    def to_dict(self) -> dict[str, Any]:
        """Flat dictionary form (JSON-serialisable)."""
        return {
            "ell": self.ell,
            "nodes": self.nodes,
            "white_at_start": self.white_at_start,
            "gray_at_start": self.gray_at_start,
            "dynamic_degree_mean": self.dynamic_degree_mean,
            "dynamic_degree_p95": self.dynamic_degree_p95,
            "dynamic_degree_p99": self.dynamic_degree_p99,
            "dynamic_degree_max": self.dynamic_degree_max,
            "active_counts": list(self.active_counts),
            "newly_gray": list(self.newly_gray),
            "x_mass_end": self.x_mass_end,
        }


@dataclass(frozen=True)
class TraceReport:
    """Per-phase metrics plus whole-execution histograms."""

    phases: tuple[PhaseReport, ...]
    #: Gray fraction at the start of each phase, in phase order.
    coverage_growth: tuple[float, ...]
    #: Messages sent per round (empty when no metrics were supplied).
    round_messages: tuple[int, ...]
    #: Per-round (dropped, delivered) counters when the trace recorded
    #: ``message-drops`` events (simulator under a fault model), else ().
    round_drops: tuple[tuple[int, int], ...]

    @property
    def total_dropped(self) -> int:
        """Messages dropped over the whole execution."""
        return sum(dropped for dropped, _ in self.round_drops)

    def to_dict(self) -> dict[str, Any]:
        """Flat dictionary form (JSON-serialisable)."""
        return {
            "phases": [phase.to_dict() for phase in self.phases],
            "coverage_growth": list(self.coverage_growth),
            "round_messages": list(self.round_messages),
            "round_drops": [list(pair) for pair in self.round_drops],
        }

    def render(self) -> str:
        """Human-readable multi-line summary (used by ``repro trace``)."""
        lines = []
        header = (
            f"{'ell':>4} {'nodes':>7} {'gray%':>7} {'deg~mean':>9} "
            f"{'deg~p95':>8} {'deg~p99':>8} {'deg~max':>8} "
            f"{'active (per m)':>18}  {'newly gray':>12} {'sum(x)':>9}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for phase, gray_fraction in zip(self.phases, self.coverage_growth):
            active = ",".join(str(count) for count in phase.active_counts)
            gray = ",".join(str(count) for count in phase.newly_gray)
            lines.append(
                f"{phase.ell:>4} {phase.nodes:>7} {100.0 * gray_fraction:>6.1f}% "
                f"{phase.dynamic_degree_mean:>9.2f} "
                f"{phase.dynamic_degree_p95:>8.2f} {phase.dynamic_degree_p99:>8.2f} "
                f"{phase.dynamic_degree_max:>8.0f} "
                f"{active:>18}  {gray:>12} {phase.x_mass_end:>9.4f}"
            )
        if self.round_messages:
            total = sum(self.round_messages)
            peak = max(self.round_messages)
            lines.append(
                f"messages: {total} over {len(self.round_messages)} rounds "
                f"(peak {peak}/round)"
            )
        if self.round_drops:
            delivered = sum(count for _, count in self.round_drops)
            lines.append(
                f"faults: {self.total_dropped} dropped / {delivered} delivered"
            )
        return "\n".join(lines)


def _percentile(values: np.ndarray, q: float) -> float:
    if values.size == 0:
        return 0.0
    return float(np.percentile(values, q))


def trace_report(
    trace: ExecutionTrace | ColumnarTrace,
    metrics: ExecutionMetrics | None = None,
) -> TraceReport:
    """Build a :class:`TraceReport` from an execution trace.

    Parameters
    ----------
    trace:
        An event-based or columnar trace of Algorithm 2/3 (or the weighted
        variant).  Event traces are converted to columnar form first, so
        both produce identical reports for the same run.
    metrics:
        Optional :class:`~repro.simulator.metrics.ExecutionMetrics` whose
        per-round message counts become the report's message histogram.
    """
    if isinstance(trace, ExecutionTrace):
        trace = trace.to_columnar()

    phases: list[PhaseReport] = []
    coverage: list[float] = []

    outer_ells = trace.column("outer-loop-start", "ell")
    outer_nodes_total = int(outer_ells.size)
    if outer_nodes_total:
        outer_degrees = trace.column("outer-loop-start", "dynamic_degree").astype(
            np.float64
        )
        outer_colors = trace.column("outer-loop-start", "color")
        inner_ells = trace.column("inner-loop", "ell")
        inner_ms = trace.column("inner-loop", "m")
        inner_active = trace.column("inner-loop", "active")
        inner_x = trace.column("inner-loop", "x")
        gray_ells = trace.column("colored-gray", "ell")
        gray_ms = trace.column("colored-gray", "m")

        seen = np.unique(outer_ells)
        # Phases execute in descending ell order.
        for ell in sorted((int(value) for value in seen), reverse=True):
            outer_mask = outer_ells == ell
            degrees = outer_degrees[outer_mask]
            white = int(np.count_nonzero(outer_colors[outer_mask] == "white"))
            nodes = int(np.count_nonzero(outer_mask))
            gray = nodes - white

            active_counts: list[int] = []
            newly_gray: list[int] = []
            x_mass = 0.0
            phase_ms = inner_ms[inner_ells == ell]
            for m in sorted((int(value) for value in np.unique(phase_ms)), reverse=True):
                inner_mask = (inner_ells == ell) & (inner_ms == m)
                active_counts.append(int(np.count_nonzero(inner_active[inner_mask])))
                newly_gray.append(
                    int(np.count_nonzero((gray_ells == ell) & (gray_ms == m)))
                )
                x_mass = float(np.sum(inner_x[inner_mask]))

            phases.append(
                PhaseReport(
                    ell=ell,
                    nodes=nodes,
                    white_at_start=white,
                    gray_at_start=gray,
                    dynamic_degree_mean=float(degrees.mean()) if degrees.size else 0.0,
                    dynamic_degree_p95=_percentile(degrees, 95.0),
                    dynamic_degree_p99=_percentile(degrees, 99.0),
                    dynamic_degree_max=float(degrees.max()) if degrees.size else 0.0,
                    active_counts=tuple(active_counts),
                    newly_gray=tuple(newly_gray),
                    x_mass_end=x_mass,
                )
            )
            coverage.append(gray / nodes if nodes else 0.0)

    round_messages: tuple[int, ...] = ()
    if metrics is not None:
        round_messages = tuple(
            round_metrics.messages_sent for round_metrics in metrics.rounds
        )

    round_drops: tuple[tuple[int, int], ...] = ()
    if "message-drops" in trace.kinds():
        dropped = trace.column("message-drops", "dropped")
        delivered = trace.column("message-drops", "delivered")
        round_drops = tuple(
            (int(d), int(s)) for d, s in zip(dropped.tolist(), delivered.tolist())
        )

    return TraceReport(
        phases=tuple(phases),
        coverage_growth=tuple(coverage),
        round_messages=round_messages,
        round_drops=round_drops,
    )
