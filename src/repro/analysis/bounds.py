"""Closed-form theoretical bounds from the paper.

Every theorem of the paper states a bound as a function of the locality
parameter k and the maximum degree Δ.  The benchmarks print measured values
next to these formulas so EXPERIMENTS.md can record "claimed vs. measured"
for each experiment.

All formulas use the *explicit constants* from the theorem statements (not
the O(·) forms), so a measured value exceeding the formula indicates a real
bug rather than an unlucky constant.
"""

from __future__ import annotations

import math


def _validate(k: int, delta: int) -> None:
    if k < 1:
        raise ValueError("k must be at least 1")
    if delta < 0:
        raise ValueError("delta must be non-negative")


def algorithm2_approximation_bound(k: int, delta: int) -> float:
    """Theorem 4: Algorithm 2 is a k·(Δ+1)^{2/k} approximation of LP_MDS."""
    _validate(k, delta)
    return k * (delta + 1.0) ** (2.0 / k)


def algorithm2_round_bound(k: int) -> int:
    """Theorem 4: Algorithm 2 terminates after 2k² rounds."""
    if k < 1:
        raise ValueError("k must be at least 1")
    return 2 * k * k


def algorithm3_approximation_bound(k: int, delta: int) -> float:
    """Theorem 5: Algorithm 3 is a k((Δ+1)^{1/k} + (Δ+1)^{2/k}) approximation."""
    _validate(k, delta)
    base = delta + 1.0
    return k * (base ** (1.0 / k) + base ** (2.0 / k))


def algorithm3_round_bound(k: int) -> int:
    """Theorem 5: Algorithm 3 terminates after 4k² + O(k) rounds.

    The implementation uses exactly 4k² inner-loop rounds, 2k outer-loop
    rounds and 3 setup/teardown rounds; the formula mirrors that constant so
    benchmarks can assert measured ≤ bound.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    return 4 * k * k + 2 * k + 3


def rounding_expectation_bound(alpha: float, delta: int) -> float:
    """Theorem 3: E[|DS|] ≤ (1 + α·ln(Δ+1)) · |DS_OPT| (as a ratio)."""
    if alpha < 1.0:
        raise ValueError("alpha must be at least 1 (it is an approximation ratio)")
    if delta < 0:
        raise ValueError("delta must be non-negative")
    return 1.0 + alpha * math.log(delta + 1.0)


def rounding_expectation_bound_alternative(alpha: float, delta: int) -> float:
    """Remark after Theorem 3: 2α(ln(Δ+1) − ln ln(Δ+1)) · |DS_OPT| (as a ratio)."""
    if alpha < 1.0:
        raise ValueError("alpha must be at least 1")
    if delta < 0:
        raise ValueError("delta must be non-negative")
    log_term = math.log(delta + 1.0)
    correction = math.log(log_term) if log_term > 1.0 else 0.0
    return max(2.0 * alpha * (log_term - correction), 1.0)


def pipeline_expected_ratio_bound(k: int, delta: int) -> float:
    """Theorem 6: expected ratio of the full pipeline (Algorithm 3 + 1).

    Composes Theorem 5's α with Theorem 3's rounding factor:
    1 + k((Δ+1)^{1/k} + (Δ+1)^{2/k}) · ln(Δ+1).
    """
    _validate(k, delta)
    alpha = algorithm3_approximation_bound(k, delta)
    return rounding_expectation_bound(alpha, delta)


def pipeline_round_bound(k: int) -> int:
    """Theorem 6: total rounds of the pipeline (Algorithm 3 + Algorithm 1).

    Algorithm 1 needs two rounds for δ⁽²⁾, one round to announce membership
    and one round to evaluate the fallback rule.
    """
    return algorithm3_round_bound(k) + 4


def weighted_approximation_bound(k: int, delta: int, c_max: float) -> float:
    """Remark after Theorem 4: weighted ratio k(Δ+1)^{1/k}[c_max(Δ+1)]^{1/k}."""
    _validate(k, delta)
    if c_max < 1.0:
        raise ValueError("c_max must be at least 1")
    base = delta + 1.0
    return k * base ** (1.0 / k) * (c_max * base) ** (1.0 / k)


def messages_per_node_bound(k: int, delta: int) -> int:
    """Abstract: each node sends O(k²Δ) messages.

    The implementation sends at most one message per neighbour per round, so
    the explicit bound is (rounds) × Δ with the Algorithm 3 round constant.
    """
    _validate(k, delta)
    return algorithm3_round_bound(k) * max(delta, 1)


def message_size_bound_bits(delta: int, float_bits: int = 32) -> int:
    """Abstract: messages have size O(log Δ) bits.

    The implementation's largest payloads are (a) integer degree/counter
    values of magnitude ≤ Δ + 1, needing ⌈log₂(Δ+2)⌉ + 1 bits, and (b)
    x-values charged at a constant ``float_bits`` by the accounting model in
    :mod:`repro.simulator.message`.  The bound is the maximum of the two.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    integer_bits = math.ceil(math.log2(delta + 2)) + 1
    return max(integer_bits, float_bits)


def kmw_lower_bound(k: int, delta: int, constant: float = 1.0) -> float:
    """The Ω(Δ^{1/k}/k) lower bound from Kuhn, Moscibroda & Wattenhofer [14].

    The constant hidden in the Ω(·) is not specified by the citation; the
    default of 1 makes the returned value a *shape* reference for the
    trade-off plots rather than a certified bound.
    """
    _validate(k, delta)
    if constant <= 0:
        raise ValueError("constant must be positive")
    return constant * (delta ** (1.0 / k)) / k


def log_squared_delta_bound(delta: int) -> float:
    """Final remark: with k = Θ(log Δ) the ratio becomes O(log² Δ).

    Returned with an explicit constant of 4·e (from substituting
    k = ⌈ln(Δ+1)⌉ into Theorem 6's expression), so measured values can be
    compared against a concrete number.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    log_term = math.log(delta + 1.0)
    if log_term <= 1.0:
        return 4.0 * math.e
    return 4.0 * math.e * log_term * log_term
