"""ASCII tables and series rendering for benchmark output.

The benchmarks print the rows/series the paper's claims correspond to;
these helpers keep that output consistent (fixed-width columns, stable
number formatting) so EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence


def format_value(value: Any, precision: int = 3) -> str:
    """Render one cell: floats get fixed precision, everything else ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{precision}f}"
    if value is None:
        return "-"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render a list of record dictionaries as a fixed-width ASCII table.

    Parameters
    ----------
    rows:
        Record dictionaries (all values must be renderable by
        :func:`format_value`).
    columns:
        Column order; defaults to the keys of the first row.
    precision:
        Decimal places for floats.
    title:
        Optional title line printed above the table.

    Returns
    -------
    str
        The rendered table (no trailing newline).
    """
    if not rows:
        return title or "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    rendered_rows = [
        [format_value(row.get(column), precision) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]

    def render_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    header = render_line([str(column) for column in columns])
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(render_line(rendered) for rendered in rendered_rows)
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, separator, body])
    return "\n".join(parts)


def render_series(
    series: Mapping[Any, float], label: str = "value", precision: int = 3
) -> str:
    """Render a one-dimensional series (e.g. ratio vs. k) as aligned rows."""
    rows = [
        {"key": key, label: value} for key, value in series.items()
    ]
    return render_table(rows, columns=["key", label], precision=precision)


def records_to_csv(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render records as CSV text (used by the CLI's ``--csv`` flag)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(str(column) for column in columns)]
    for row in rows:
        lines.append(",".join(format_value(row.get(column), precision=6) for column in columns))
    return "\n".join(lines)
