"""Trial statistics for randomized experiments.

Theorem 3 and Theorem 6 are statements about *expected* dominating set
sizes, so their reproduction averages over repeated rounding trials.  This
module provides the small statistical toolkit the benchmarks use: means,
sample standard deviations, normal-approximation confidence intervals, and a
``summarize`` helper that turns a list of observations into a compact
record.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class SummaryStatistics:
    """Summary of one sample of repeated measurements.

    Attributes
    ----------
    count:
        Number of observations.
    mean:
        Sample mean.
    std:
        Sample standard deviation (ddof = 1; 0 for a single observation).
    minimum, maximum:
        Extremes of the sample.
    ci_low, ci_high:
        Normal-approximation 95% confidence interval for the mean.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    values = list(values)
    if not values:
        raise ValueError("cannot average an empty sample")
    return float(sum(values) / len(values))


def sample_std(values: Sequence[float]) -> float:
    """Sample standard deviation with ddof = 1 (0 for single observations)."""
    values = list(values)
    if not values:
        raise ValueError("cannot compute the deviation of an empty sample")
    if len(values) == 1:
        return 0.0
    sample_mean = mean(values)
    variance = sum((value - sample_mean) ** 2 for value in values) / (len(values) - 1)
    return math.sqrt(variance)


def confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> tuple[float, float]:
    """Normal-approximation confidence interval for the mean.

    Parameters
    ----------
    values:
        The sample.
    z:
        Critical value (1.96 for a 95% interval).

    Returns
    -------
    tuple[float, float]
        (low, high); degenerate (mean, mean) for single observations.
    """
    values = list(values)
    sample_mean = mean(values)
    if len(values) == 1:
        return (sample_mean, sample_mean)
    half_width = z * sample_std(values) / math.sqrt(len(values))
    return (sample_mean - half_width, sample_mean + half_width)


def summarize(values: Iterable[float]) -> SummaryStatistics:
    """Build a :class:`SummaryStatistics` record from raw observations."""
    values = [float(value) for value in values]
    if not values:
        raise ValueError("cannot summarize an empty sample")
    low, high = confidence_interval(values)
    return SummaryStatistics(
        count=len(values),
        mean=mean(values),
        std=sample_std(values),
        minimum=min(values),
        maximum=max(values),
        ci_low=low,
        ci_high=high,
    )


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation.

    Matches ``numpy.percentile``'s default (``linear``) method, so the
    service layer's p50/p99 latency figures are directly comparable to
    NumPy-computed references without pulling latency arrays through
    NumPy.  Raises on an empty sample.
    """
    values = sorted(float(value) for value in values)
    if not values:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if len(values) == 1:
        return values[0]
    rank = (q / 100.0) * (len(values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return values[low]
    fraction = rank - low
    return values[low] * (1.0 - fraction) + values[high] * fraction


def latency_summary(latencies_s: Sequence[float]) -> dict:
    """The service layer's standard latency digest (count/mean/p50/p99/max).

    An empty sample yields ``None`` entries rather than raising, so idle
    services can still render their stats tables.
    """
    values = [float(value) for value in latencies_s]
    if not values:
        return {
            "count": 0,
            "mean_s": None,
            "p50_s": None,
            "p99_s": None,
            "max_s": None,
        }
    return {
        "count": len(values),
        "mean_s": mean(values),
        "p50_s": percentile(values, 50.0),
        "p99_s": percentile(values, 99.0),
        "max_s": max(values),
    }


def ratio_of_means(numerators: Sequence[float], denominators: Sequence[float]) -> float:
    """mean(numerators) / mean(denominators), the standard ratio estimator.

    Used for approximation ratios averaged over instances: averaging ratios
    directly over-weights tiny instances, while the ratio of means matches
    how the paper's aggregate guarantees are stated.
    """
    if len(numerators) != len(denominators):
        raise ValueError("samples must have equal length")
    denominator_mean = mean(denominators)
    if denominator_mean == 0:
        raise ValueError("denominator mean is zero")
    return mean(numerators) / denominator_mean
