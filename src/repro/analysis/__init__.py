"""Analysis toolkit: theoretical bounds, sweeps, statistics and tables.

* :mod:`~repro.analysis.bounds` -- the paper's theorem bounds as explicit
  formulas (Theorems 3-6, the weighted remark, the message-complexity
  claims, and the KMW lower-bound reference curve).
* :mod:`~repro.analysis.experiment` -- the sweep machinery shared by the
  benchmarks and the CLI.
* :mod:`~repro.analysis.stats` -- trial statistics (means, confidence
  intervals) for the randomized components.
* :mod:`~repro.analysis.tables` -- ASCII table / CSV rendering of records.
* :mod:`~repro.analysis.trace_report` -- per-phase observability reports
  (degree distributions, coverage growth, message histograms) computed by
  array reductions over execution traces.
"""

from repro.analysis.bounds import (
    algorithm2_approximation_bound,
    algorithm2_round_bound,
    algorithm3_approximation_bound,
    algorithm3_round_bound,
    kmw_lower_bound,
    log_squared_delta_bound,
    message_size_bound_bits,
    messages_per_node_bound,
    pipeline_expected_ratio_bound,
    pipeline_round_bound,
    rounding_expectation_bound,
    rounding_expectation_bound_alternative,
    weighted_approximation_bound,
)
from repro.analysis.experiment import (
    ExperimentRecord,
    GraphInstance,
    as_instances,
    compare_algorithms,
    sweep_cds,
    sweep_fractional,
    sweep_pipeline,
    sweep_tradeoff,
)
from repro.analysis.stats import (
    SummaryStatistics,
    confidence_interval,
    mean,
    ratio_of_means,
    sample_std,
    summarize,
)
from repro.analysis.tables import format_value, records_to_csv, render_series, render_table
from repro.analysis.trace_report import PhaseReport, TraceReport, trace_report

__all__ = [
    "ExperimentRecord",
    "GraphInstance",
    "PhaseReport",
    "SummaryStatistics",
    "TraceReport",
    "algorithm2_approximation_bound",
    "algorithm2_round_bound",
    "algorithm3_approximation_bound",
    "algorithm3_round_bound",
    "as_instances",
    "compare_algorithms",
    "confidence_interval",
    "format_value",
    "kmw_lower_bound",
    "log_squared_delta_bound",
    "mean",
    "message_size_bound_bits",
    "messages_per_node_bound",
    "pipeline_expected_ratio_bound",
    "pipeline_round_bound",
    "ratio_of_means",
    "records_to_csv",
    "render_series",
    "render_table",
    "rounding_expectation_bound",
    "rounding_expectation_bound_alternative",
    "sample_std",
    "summarize",
    "sweep_cds",
    "sweep_fractional",
    "sweep_pipeline",
    "sweep_tradeoff",
    "trace_report",
    "weighted_approximation_bound",
]
