"""Experiment runner: parameter sweeps shared by benchmarks, CLI and examples.

The benchmarks all have the same shape -- run one or more algorithms over a
collection of graphs (and a range of k values, and several random trials),
collect per-run records, and aggregate them into the rows the paper's claims
correspond to.  This module centralises that machinery so every benchmark
file stays a thin declaration of *what* to measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import networkx as nx

from repro.analysis.bounds import (
    algorithm2_approximation_bound,
    algorithm3_approximation_bound,
    pipeline_expected_ratio_bound,
)
from repro.analysis.stats import summarize
from repro.core.fractional import approximate_fractional_mds
from repro.core.fractional_unknown import approximate_fractional_mds_unknown_delta
from repro.core.kuhn_wattenhofer import (
    FractionalVariant,
    kuhn_wattenhofer_dominating_set,
)
from repro.core.vectorized import SIMULATED, VECTORIZED
from repro.simulator.bulk import BulkGraph
from repro.domset.validation import is_dominating_set
from repro.graphs.utils import max_degree
from repro.lp.duality import lemma1_lower_bound
from repro.lp.solver import solve_fractional_mds


@dataclass(frozen=True)
class GraphInstance:
    """One named graph instance in a sweep."""

    name: str
    graph: nx.Graph

    @property
    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def max_degree(self) -> int:
        return max_degree(self.graph)


def as_instances(graphs: Mapping[str, nx.Graph]) -> list[GraphInstance]:
    """Wrap a name -> graph mapping into :class:`GraphInstance` objects."""
    return [GraphInstance(name=name, graph=graph) for name, graph in graphs.items()]


@dataclass
class ExperimentRecord:
    """One measurement row produced by a sweep."""

    instance: str
    algorithm: str
    parameters: dict[str, Any] = field(default_factory=dict)
    measurements: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict[str, Any]:
        """Flatten into a single dictionary suitable for table rendering."""
        row: dict[str, Any] = {"instance": self.instance, "algorithm": self.algorithm}
        row.update(self.parameters)
        row.update(self.measurements)
        return row


def sweep_fractional(
    instances: Sequence[GraphInstance],
    k_values: Sequence[int],
    variant: FractionalVariant = FractionalVariant.KNOWN_DELTA,
    seed: int = 0,
    backend: str = SIMULATED,
) -> list[ExperimentRecord]:
    """Run a fractional algorithm over instances × k and record quality.

    Every record contains the measured fractional objective, the LP optimum,
    the measured/optimal ratio, the theorem's bound for that (k, Δ), the
    number of rounds used and the per-node message maxima.  ``backend``
    selects the execution engine; both produce identical records (the
    vectorized engine models its message counts).
    """
    records: list[ExperimentRecord] = []
    for instance in instances:
        lp_optimum = solve_fractional_mds(instance.graph).objective
        delta = instance.max_degree
        # One CSR build per instance, reused across the whole k sweep.
        bulk = (
            BulkGraph.from_graph(instance.graph) if backend == VECTORIZED else None
        )
        for k in k_values:
            if variant is FractionalVariant.KNOWN_DELTA:
                result = approximate_fractional_mds(
                    instance.graph, k=k, seed=seed, backend=backend, _bulk=bulk
                )
                bound = algorithm2_approximation_bound(k, delta)
            else:
                result = approximate_fractional_mds_unknown_delta(
                    instance.graph, k=k, seed=seed, backend=backend, _bulk=bulk
                )
                bound = algorithm3_approximation_bound(k, delta)
            ratio = result.objective / lp_optimum if lp_optimum > 0 else float("nan")
            records.append(
                ExperimentRecord(
                    instance=instance.name,
                    algorithm=f"fractional[{variant.value}]",
                    parameters={"k": k, "n": instance.node_count, "delta": delta},
                    measurements={
                        "objective": result.objective,
                        "lp_optimum": lp_optimum,
                        "ratio": ratio,
                        "bound": bound,
                        "rounds": result.rounds,
                        "max_messages_per_node": result.metrics.max_messages_per_node,
                        "max_message_bits": result.metrics.max_message_bits,
                    },
                )
            )
    return records


def sweep_pipeline(
    instances: Sequence[GraphInstance],
    k_values: Sequence[int],
    trials: int = 5,
    variant: FractionalVariant = FractionalVariant.UNKNOWN_DELTA,
    seed: int = 0,
    backend: str = SIMULATED,
) -> list[ExperimentRecord]:
    """Run the full pipeline over instances × k, averaging over trials.

    The expected-size guarantee of Theorem 6 is about the mean over the
    rounding randomness, so each (instance, k) cell aggregates ``trials``
    independent executions.  ``backend`` selects the execution engine for
    both pipeline phases; seeds produce the same sets on either engine.
    """
    records: list[ExperimentRecord] = []
    for instance in instances:
        lower_bound = lemma1_lower_bound(instance.graph)
        lp_optimum = solve_fractional_mds(instance.graph).objective
        delta = instance.max_degree
        # One CSR build per instance, reused across all (k, trial) cells.
        bulk = (
            BulkGraph.from_graph(instance.graph) if backend == VECTORIZED else None
        )
        for k in k_values:
            sizes = []
            rounds = []
            for trial in range(trials):
                result = kuhn_wattenhofer_dominating_set(
                    instance.graph,
                    k=k,
                    seed=seed + trial,
                    variant=variant,
                    backend=backend,
                    _bulk=bulk,
                )
                if not is_dominating_set(instance.graph, result.dominating_set):
                    raise RuntimeError(
                        f"pipeline produced a non-dominating set on {instance.name}"
                    )
                sizes.append(float(result.size))
                rounds.append(float(result.total_rounds))
            size_summary = summarize(sizes)
            records.append(
                ExperimentRecord(
                    instance=instance.name,
                    algorithm=f"kuhn-wattenhofer[{variant.value}]",
                    parameters={"k": k, "n": instance.node_count, "delta": delta},
                    measurements={
                        "mean_size": size_summary.mean,
                        "std_size": size_summary.std,
                        "lp_optimum": lp_optimum,
                        "dual_lower_bound": lower_bound,
                        "mean_ratio_vs_lp": size_summary.mean / lp_optimum
                        if lp_optimum > 0
                        else float("nan"),
                        "bound": pipeline_expected_ratio_bound(k, delta),
                        "mean_rounds": sum(rounds) / len(rounds),
                        "trials": float(trials),
                    },
                )
            )
    return records


def compare_algorithms(
    instances: Sequence[GraphInstance],
    algorithms: Mapping[str, Callable[[nx.Graph, int], Iterable]],
    trials: int = 3,
    seed: int = 0,
) -> list[ExperimentRecord]:
    """Run arbitrary set-producing algorithms over instances and record sizes.

    Parameters
    ----------
    instances:
        Graphs to evaluate on.
    algorithms:
        Mapping from algorithm name to a callable ``(graph, seed) -> set``
        returning a dominating set.
    trials:
        Number of seeds per (instance, algorithm) pair -- deterministic
        algorithms simply produce identical rows.
    seed:
        Base seed.

    Returns
    -------
    list[ExperimentRecord]
    """
    records: list[ExperimentRecord] = []
    for instance in instances:
        lp_optimum = solve_fractional_mds(instance.graph).objective
        delta = instance.max_degree
        for name, algorithm in algorithms.items():
            sizes = []
            for trial in range(trials):
                candidate = frozenset(algorithm(instance.graph, seed + trial))
                if not is_dominating_set(instance.graph, candidate):
                    raise RuntimeError(
                        f"algorithm {name!r} returned a non-dominating set "
                        f"on {instance.name}"
                    )
                sizes.append(float(len(candidate)))
            summary = summarize(sizes)
            records.append(
                ExperimentRecord(
                    instance=instance.name,
                    algorithm=name,
                    parameters={"n": instance.node_count, "delta": delta},
                    measurements={
                        "mean_size": summary.mean,
                        "min_size": summary.minimum,
                        "max_size": summary.maximum,
                        "lp_optimum": lp_optimum,
                        "mean_ratio_vs_lp": summary.mean / lp_optimum
                        if lp_optimum > 0
                        else float("nan"),
                    },
                )
            )
    return records
