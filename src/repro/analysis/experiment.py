"""Experiment runner: parameter sweeps shared by benchmarks, CLI and examples.

The benchmarks all have the same shape -- run one or more algorithms over a
collection of graphs (and a range of k values, and several random trials),
collect per-run records, and aggregate them into the rows the paper's claims
correspond to.  This module centralises that machinery so every benchmark
file stays a thin declaration of *what* to measure.

Two scaling features let sweeps run far past the networkx comfort zone:

* instances may wrap CSR :class:`~repro.simulator.bulk.BulkGraph` objects
  (e.g. from ``graph_suite("xlarge")``); those sweep with the vectorized
  backend and skip the (dense, centralized) LP reference columns, and
* every sweep accepts ``jobs=N`` to parallelize across graph instances
  with a process pool -- instances are independent, so records are simply
  computed in worker processes and concatenated in instance order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable, Mapping, Sequence

import networkx as nx

from repro.analysis.bounds import (
    algorithm2_approximation_bound,
    algorithm3_approximation_bound,
    pipeline_expected_ratio_bound,
)
from repro.analysis.stats import summarize
from repro.core.fractional import approximate_fractional_mds
from repro.core.fractional_unknown import approximate_fractional_mds_unknown_delta
from repro.core.kuhn_wattenhofer import FractionalVariant
from repro.core.rounding import round_fractional_solution_batched
from repro.core.vectorized import SIMULATED, VECTORIZED
from repro.simulator.bulk import BulkGraph
from repro.domset.validation import is_dominating_set
from repro.graphs.utils import max_degree
from repro.lp.duality import lemma1_lower_bound
from repro.lp.solver import solve_fractional_mds


@dataclass(frozen=True)
class GraphInstance:
    """One named graph instance in a sweep.

    ``graph`` is either a networkx graph or a CSR
    :class:`~repro.simulator.bulk.BulkGraph` (the ``"xlarge"`` suite);
    bulk instances require the vectorized backend and report ``NaN`` for
    the centralized LP reference columns, which are not computed at that
    scale.
    """

    name: str
    graph: nx.Graph | BulkGraph

    @property
    def is_bulk(self) -> bool:
        return isinstance(self.graph, BulkGraph)

    @property
    def node_count(self) -> int:
        if self.is_bulk:
            return self.graph.n
        return self.graph.number_of_nodes()

    @property
    def max_degree(self) -> int:
        return max_degree(self.graph)


def as_instances(graphs: Mapping[str, nx.Graph]) -> list[GraphInstance]:
    """Wrap a name -> graph mapping into :class:`GraphInstance` objects."""
    return [GraphInstance(name=name, graph=graph) for name, graph in graphs.items()]


@dataclass
class ExperimentRecord:
    """One measurement row produced by a sweep."""

    instance: str
    algorithm: str
    parameters: dict[str, Any] = field(default_factory=dict)
    measurements: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict[str, Any]:
        """Flatten into a single dictionary suitable for table rendering."""
        row: dict[str, Any] = {"instance": self.instance, "algorithm": self.algorithm}
        row.update(self.parameters)
        row.update(self.measurements)
        return row


def _check_backend_for_instance(instance: GraphInstance, backend: str) -> None:
    if instance.is_bulk and backend != VECTORIZED:
        raise ValueError(
            f"instance {instance.name!r} is a CSR BulkGraph and requires "
            "backend='vectorized'"
        )


def _lp_reference(instance: GraphInstance) -> float:
    """The centralized LP optimum, or NaN for CSR instances (not computed
    at that scale -- the dense solve is the very cost the bulk path avoids)."""
    if instance.is_bulk:
        return float("nan")
    return solve_fractional_mds(instance.graph).objective


def _prebuild_bulk(instance: GraphInstance, backend: str) -> BulkGraph | None:
    """One CSR build per instance for vectorized sweeps (None otherwise)."""
    if backend == VECTORIZED and not instance.is_bulk:
        return BulkGraph.from_graph(instance.graph)
    return None


def _map_instances(
    worker: Callable[[GraphInstance], list[ExperimentRecord]],
    instances: Sequence[GraphInstance],
    jobs: int,
) -> list[ExperimentRecord]:
    """Run a per-instance worker, optionally on a process pool.

    Results are concatenated in instance order regardless of completion
    order, so ``jobs`` never changes the produced records -- only the
    wall-clock.  ``worker`` (and everything it closes over) must be
    picklable when ``jobs > 1``.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if jobs == 1 or len(instances) <= 1:
        per_instance = [worker(instance) for instance in instances]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(instances))) as pool:
            per_instance = list(pool.map(worker, instances))
    return [record for records in per_instance for record in records]


# ---------------------------------------------------------------------- #
# Fractional sweep                                                        #
# ---------------------------------------------------------------------- #


def _sweep_fractional_instance(
    instance: GraphInstance,
    k_values: Sequence[int],
    variant: FractionalVariant,
    seed: int,
    backend: str,
) -> list[ExperimentRecord]:
    """All fractional records of one instance (one process-pool work unit)."""
    _check_backend_for_instance(instance, backend)
    records: list[ExperimentRecord] = []
    lp_optimum = _lp_reference(instance)
    delta = instance.max_degree
    # One CSR build per instance, reused across the whole k sweep.
    bulk = _prebuild_bulk(instance, backend)
    for k in k_values:
        if variant is FractionalVariant.KNOWN_DELTA:
            result = approximate_fractional_mds(
                instance.graph, k=k, seed=seed, backend=backend, _bulk=bulk
            )
            bound = algorithm2_approximation_bound(k, delta)
        else:
            result = approximate_fractional_mds_unknown_delta(
                instance.graph, k=k, seed=seed, backend=backend, _bulk=bulk
            )
            bound = algorithm3_approximation_bound(k, delta)
        ratio = result.objective / lp_optimum if lp_optimum > 0 else float("nan")
        records.append(
            ExperimentRecord(
                instance=instance.name,
                algorithm=f"fractional[{variant.value}]",
                parameters={"k": k, "n": instance.node_count, "delta": delta},
                measurements={
                    "objective": result.objective,
                    "lp_optimum": lp_optimum,
                    "ratio": ratio,
                    "bound": bound,
                    "rounds": result.rounds,
                    "max_messages_per_node": result.metrics.max_messages_per_node,
                    "max_message_bits": result.metrics.max_message_bits,
                },
            )
        )
    return records


def sweep_fractional(
    instances: Sequence[GraphInstance],
    k_values: Sequence[int],
    variant: FractionalVariant = FractionalVariant.KNOWN_DELTA,
    seed: int = 0,
    backend: str = SIMULATED,
    jobs: int = 1,
) -> list[ExperimentRecord]:
    """Run a fractional algorithm over instances × k and record quality.

    Every record contains the measured fractional objective, the LP optimum,
    the measured/optimal ratio, the theorem's bound for that (k, Δ), the
    number of rounds used and the per-node message maxima.  ``backend``
    selects the execution engine; both produce identical records (the
    vectorized engine models its message counts).  ``jobs`` parallelizes
    across instances with a process pool (identical records, any order of
    execution).
    """
    worker = partial(
        _sweep_fractional_instance,
        k_values=tuple(k_values),
        variant=variant,
        seed=seed,
        backend=backend,
    )
    return _map_instances(worker, instances, jobs)


# ---------------------------------------------------------------------- #
# Pipeline sweep                                                          #
# ---------------------------------------------------------------------- #


def _sweep_pipeline_instance(
    instance: GraphInstance,
    k_values: Sequence[int],
    trials: int,
    variant: FractionalVariant,
    seed: int,
    backend: str,
) -> list[ExperimentRecord]:
    """All pipeline records of one instance (one process-pool work unit).

    The fractional phase is deterministic (its seed is bookkeeping only),
    so it -- and its feasibility check -- runs *once* per (instance, k);
    the per-trial loop only redraws the rounding coins, through the batched
    rounding entry point.  Record values are identical to running the full
    pipeline once per trial, just without re-paying the seed-independent
    phases.
    """
    _check_backend_for_instance(instance, backend)
    records: list[ExperimentRecord] = []
    lower_bound = (
        float("nan") if instance.is_bulk else lemma1_lower_bound(instance.graph)
    )
    lp_optimum = _lp_reference(instance)
    delta = instance.max_degree
    # One CSR build per instance, reused across all (k, trial) cells.
    bulk = _prebuild_bulk(instance, backend)
    for k in k_values:
        if variant is FractionalVariant.KNOWN_DELTA:
            fractional = approximate_fractional_mds(
                instance.graph, k=k, seed=seed, backend=backend, _bulk=bulk
            )
        else:
            fractional = approximate_fractional_mds_unknown_delta(
                instance.graph, k=k, seed=seed, backend=backend, _bulk=bulk
            )
        roundings = round_fractional_solution_batched(
            instance.graph,
            fractional.x,
            seeds=[seed + trial for trial in range(trials)],
            require_feasible=True,  # the per-trial pipelines checked this too
            backend=backend,
            _bulk=bulk,
        )
        sizes = []
        rounds = []
        for rounding in roundings:
            if not is_dominating_set(instance.graph, rounding.dominating_set):
                raise RuntimeError(
                    f"pipeline produced a non-dominating set on {instance.name}"
                )
            sizes.append(float(len(rounding.dominating_set)))
            rounds.append(float(fractional.rounds + rounding.rounds))
        size_summary = summarize(sizes)
        records.append(
            ExperimentRecord(
                instance=instance.name,
                algorithm=f"kuhn-wattenhofer[{variant.value}]",
                parameters={"k": k, "n": instance.node_count, "delta": delta},
                measurements={
                    "mean_size": size_summary.mean,
                    "std_size": size_summary.std,
                    "lp_optimum": lp_optimum,
                    "dual_lower_bound": lower_bound,
                    "mean_ratio_vs_lp": size_summary.mean / lp_optimum
                    if lp_optimum > 0
                    else float("nan"),
                    "bound": pipeline_expected_ratio_bound(k, delta),
                    "mean_rounds": sum(rounds) / len(rounds),
                    "trials": float(trials),
                },
            )
        )
    return records


def sweep_pipeline(
    instances: Sequence[GraphInstance],
    k_values: Sequence[int],
    trials: int = 5,
    variant: FractionalVariant = FractionalVariant.UNKNOWN_DELTA,
    seed: int = 0,
    backend: str = SIMULATED,
    jobs: int = 1,
) -> list[ExperimentRecord]:
    """Run the full pipeline over instances × k, averaging over trials.

    The expected-size guarantee of Theorem 6 is about the mean over the
    rounding randomness, so each (instance, k) cell aggregates ``trials``
    independent executions.  Only the rounding coins depend on the trial:
    the deterministic fractional phase is solved once per (instance, k) and
    its solution is rounded under ``trials`` seeds in one batch.
    ``backend`` selects the execution engine for both pipeline phases;
    seeds produce the same sets on either engine.  ``jobs`` parallelizes
    across instances with a process pool.
    """
    worker = partial(
        _sweep_pipeline_instance,
        k_values=tuple(k_values),
        trials=trials,
        variant=variant,
        seed=seed,
        backend=backend,
    )
    return _map_instances(worker, instances, jobs)


# ---------------------------------------------------------------------- #
# Algorithm comparison                                                    #
# ---------------------------------------------------------------------- #


def _compare_instance(
    instance: GraphInstance,
    algorithms: Mapping[str, Callable[[nx.Graph, int], Iterable]],
    trials: int,
    seed: int,
) -> list[ExperimentRecord]:
    """All comparison records of one instance (one process-pool work unit)."""
    records: list[ExperimentRecord] = []
    lp_optimum = _lp_reference(instance)
    delta = instance.max_degree
    for name, algorithm in algorithms.items():
        sizes = []
        for trial in range(trials):
            candidate = frozenset(algorithm(instance.graph, seed + trial))
            if not is_dominating_set(instance.graph, candidate):
                raise RuntimeError(
                    f"algorithm {name!r} returned a non-dominating set "
                    f"on {instance.name}"
                )
            sizes.append(float(len(candidate)))
        summary = summarize(sizes)
        records.append(
            ExperimentRecord(
                instance=instance.name,
                algorithm=name,
                parameters={"n": instance.node_count, "delta": delta},
                measurements={
                    "mean_size": summary.mean,
                    "min_size": summary.minimum,
                    "max_size": summary.maximum,
                    "lp_optimum": lp_optimum,
                    "mean_ratio_vs_lp": summary.mean / lp_optimum
                    if lp_optimum > 0
                    else float("nan"),
                },
            )
        )
    return records


def compare_algorithms(
    instances: Sequence[GraphInstance],
    algorithms: Mapping[str, Callable[[nx.Graph, int], Iterable]],
    trials: int = 3,
    seed: int = 0,
    jobs: int = 1,
) -> list[ExperimentRecord]:
    """Run arbitrary set-producing algorithms over instances and record sizes.

    Parameters
    ----------
    instances:
        Graphs to evaluate on.  Bulk (CSR) instances work as long as every
        algorithm callable accepts a BulkGraph; the LP reference column is
        skipped for them.
    algorithms:
        Mapping from algorithm name to a callable ``(graph, seed) -> set``
        returning a dominating set.  With ``jobs > 1`` the callables must
        be picklable (module-level functions or ``functools.partial`` of
        them -- not lambdas).
    trials:
        Number of seeds per (instance, algorithm) pair -- deterministic
        algorithms simply produce identical rows.
    seed:
        Base seed.
    jobs:
        Process-pool width across instances.

    Returns
    -------
    list[ExperimentRecord]
    """
    worker = partial(
        _compare_instance, algorithms=dict(algorithms), trials=trials, seed=seed
    )
    return _map_instances(worker, instances, jobs)
