"""Experiment runner: parameter sweeps shared by benchmarks, CLI and examples.

The benchmarks all have the same shape -- run one or more algorithms over a
collection of graphs (and a range of k values, and several random trials),
collect per-run records, and aggregate them into the rows the paper's claims
correspond to.  This module centralises that machinery so every benchmark
file stays a thin declaration of *what* to measure.

Two scaling features let sweeps run far past the networkx comfort zone:

* instances may wrap CSR :class:`~repro.simulator.bulk.BulkGraph` objects
  (e.g. from ``graph_suite("xlarge")``); those sweep with the vectorized
  backend and skip the (dense, centralized) LP reference columns, and
* every sweep accepts ``jobs=N`` to parallelize across graph instances
  with a process pool -- instances are independent, so records are simply
  computed in worker processes and concatenated in instance order.

Backend selection is capability-based: every sweep accepts
``backend="auto"`` (the default) and resolves the execution engine per
instance through the :mod:`repro.api` registry -- CSR instances and large
graphs go to the vectorized engine, small graphs to the simulated one,
and impossible combinations raise the registry's single
:class:`~repro.core.vectorized.CapabilityError`.  The algorithm
comparison (:func:`compare_algorithms`) enumerates the registry by
default, so newly registered algorithms join every comparison (and the
CLI ``compare`` sub-command) without touching this module.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterable, Mapping, Sequence

import networkx as nx

from repro.analysis.bounds import (
    algorithm2_approximation_bound,
    algorithm3_approximation_bound,
    kmw_lower_bound,
    pipeline_expected_ratio_bound,
    pipeline_round_bound,
)
from repro.analysis.stats import summarize
from repro.core.fractional import (
    approximate_fractional_mds,
    approximate_fractional_mds_multi_k,
)
from repro.core.fractional_unknown import (
    approximate_fractional_mds_unknown_delta,
    approximate_fractional_mds_unknown_delta_multi_k,
)
from repro.core.kuhn_wattenhofer import FractionalVariant
from repro.core.rounding import round_fractional_solution_batched
from repro.core.vectorized import SHARDED, VECTORIZED
from repro.simulator.bulk import BulkGraph
from repro.domset.validation import is_dominating_set
from repro.graphs.utils import max_degree
from repro.lp.duality import lemma1_lower_bound
from repro.lp.solver import solve_fractional_mds


@dataclass(frozen=True)
class GraphInstance:
    """One named graph instance in a sweep.

    ``graph`` is either a networkx graph or a CSR
    :class:`~repro.simulator.bulk.BulkGraph` (the ``"xlarge"`` suite);
    bulk instances require the vectorized backend and report ``NaN`` for
    the centralized LP reference columns, which are not computed at that
    scale.
    """

    name: str
    graph: nx.Graph | BulkGraph

    @property
    def is_bulk(self) -> bool:
        return isinstance(self.graph, BulkGraph)

    @property
    def node_count(self) -> int:
        if self.is_bulk:
            return self.graph.n
        return self.graph.number_of_nodes()

    @property
    def max_degree(self) -> int:
        return max_degree(self.graph)


def as_instances(graphs: Mapping[str, nx.Graph]) -> list[GraphInstance]:
    """Wrap a name -> graph mapping into :class:`GraphInstance` objects."""
    return [GraphInstance(name=name, graph=graph) for name, graph in graphs.items()]


@dataclass
class ExperimentRecord:
    """One measurement row produced by a sweep."""

    instance: str
    algorithm: str
    parameters: dict[str, Any] = field(default_factory=dict)
    measurements: dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict[str, Any]:
        """Flatten into a single dictionary suitable for table rendering."""
        row: dict[str, Any] = {"instance": self.instance, "algorithm": self.algorithm}
        row.update(self.parameters)
        row.update(self.measurements)
        return row


def _resolve_instance_backend(
    instance: GraphInstance,
    backend: str,
    algorithm: str = "kuhn-wattenhofer",
    shards: int | None = None,
) -> str:
    """Capability-based backend resolution for one sweep instance.

    Delegates to the :mod:`repro.api` registry: ``"auto"`` resolves to the
    vectorized engine for CSR instances and large graphs, and impossible
    combinations (a ``BulkGraph`` under ``backend="simulated"``, ...)
    raise the registry's single
    :class:`~repro.core.vectorized.CapabilityError`.  Imported lazily so
    process-pool workers only pay for the registry when a sweep runs.
    """
    from repro.api import get_spec, resolve_backend

    return resolve_backend(
        get_spec(algorithm), instance.graph, backend=backend, shards=shards
    )


def _lp_reference(
    instance: GraphInstance,
    sparse_for_bulk: bool = False,
    lp_method: str = "highs",
    lp_tol: float = 1e-3,
) -> float:
    """The centralized LP optimum reference for one instance.

    CSR instances report NaN by default (the dense solve is the very cost
    the bulk path avoids); with ``sparse_for_bulk`` they are solved through
    :func:`~repro.lp.solver.solve_fractional_mds_sparse` instead -- exact,
    O(n + m) memory, but tens of seconds at n = 20 000, so sweeps only opt
    in when the caller asks for the LP ratio column at that scale.
    ``lp_method="pdhg"`` / ``"mwu"`` swap the exact solve for a certified
    first-order one (relative gap ≤ ``lp_tol``): the right trade on
    solver-bound instances, where HiGHS -- not the formulation -- is the
    bottleneck.
    """
    if instance.is_bulk:
        if sparse_for_bulk:
            from repro.lp.solver import solve_fractional_mds_sparse

            return solve_fractional_mds_sparse(
                instance.graph, method=lp_method, tol=lp_tol
            ).objective
        return float("nan")
    return solve_fractional_mds(
        instance.graph, method=lp_method, tol=lp_tol
    ).objective


def _prebuild_bulk(instance: GraphInstance, backend: str) -> BulkGraph | None:
    """One CSR build per instance for bulk-engine sweeps (None otherwise)."""
    if backend in (VECTORIZED, SHARDED) and not instance.is_bulk:
        return BulkGraph.from_graph(instance.graph)
    return None


def _instance_executor(
    instance: GraphInstance,
    backend: str,
    bulk: BulkGraph | None,
    shards: int | None,
):
    """One shard pool per instance for sharded sweeps (None otherwise).

    Forking, sharing the CSR and partitioning are paid once; the whole
    k sweep (fractional snapshots + every rounding batch) then reuses the
    resident workers.  Callers must close the returned driver.
    """
    if backend != SHARDED:
        return None
    from repro.simulator.sharded import ShardedDriver

    return ShardedDriver(bulk if bulk is not None else instance.graph, shards)


def _fractional_sweep(
    instance: GraphInstance,
    k_values: Sequence[int],
    variant: FractionalVariant,
    seed: int,
    backend: str,
    bulk: BulkGraph | None,
    executor=None,
):
    """One multi-k fractional execution covering the whole k sweep.

    On the bulk backends the snapshot engine runs the entire sweep in
    a single engine invocation (per-k results bitwise equal to independent
    runs); on the simulated backend the entry point loops per k.  Either
    way every (instance, k) cell comes from *one* call here.
    """
    if variant is FractionalVariant.KNOWN_DELTA:
        return approximate_fractional_mds_multi_k(
            instance.graph,
            k_values,
            seed=seed,
            backend=backend,
            _bulk=bulk,
            _executor=executor,
        )
    return approximate_fractional_mds_unknown_delta_multi_k(
        instance.graph,
        k_values,
        seed=seed,
        backend=backend,
        _bulk=bulk,
        _executor=executor,
    )


def _map_instances(
    worker: Callable[[GraphInstance], list[ExperimentRecord]],
    instances: Sequence[GraphInstance],
    jobs: int,
) -> list[ExperimentRecord]:
    """Run a per-instance worker, optionally on a process pool.

    Results are concatenated in instance order regardless of completion
    order, so ``jobs`` never changes the produced records -- only the
    wall-clock.  ``worker`` (and everything it closes over) must be
    picklable when ``jobs > 1``.

    The pool is never wider than the CPUs this process may actually use
    (``os.process_cpu_count`` where available, affinity-blind
    ``os.cpu_count`` otherwise), and a worker failure is re-raised with
    the failing instance's name attached -- a sweep over fifty graphs
    should say *which* one died.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if jobs == 1 or len(instances) <= 1:
        per_instance = [worker(instance) for instance in instances]
    else:
        cpus = getattr(os, "process_cpu_count", os.cpu_count)() or 1
        workers = max(1, min(jobs, len(instances), cpus))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(worker, instance) for instance in instances]
            per_instance = []
            for instance, future in zip(instances, futures):
                try:
                    per_instance.append(future.result())
                except Exception as error:
                    error.args = (
                        f"sweep worker failed on instance {instance.name!r}: "
                        + ", ".join(str(arg) for arg in error.args),
                    )
                    raise
    return [record for records in per_instance for record in records]


# ---------------------------------------------------------------------- #
# Fractional sweep                                                        #
# ---------------------------------------------------------------------- #


def _sweep_fractional_instance(
    instance: GraphInstance,
    k_values: Sequence[int],
    variant: FractionalVariant,
    seed: int,
    backend: str,
    shards: int | None = None,
) -> list[ExperimentRecord]:
    """All fractional records of one instance (one process-pool work unit)."""
    backend = _resolve_instance_backend(instance, backend, shards=shards)
    records: list[ExperimentRecord] = []
    lp_optimum = _lp_reference(instance)
    delta = instance.max_degree
    # One CSR build per instance; the whole k sweep runs as one fractional
    # execution through the snapshot engine.
    bulk = _prebuild_bulk(instance, backend)
    executor = _instance_executor(instance, backend, bulk, shards)
    try:
        fractional_by_k = _fractional_sweep(
            instance, k_values, variant, seed, backend, bulk, executor
        )
    finally:
        if executor is not None:
            executor.close()
    for k in k_values:
        result = fractional_by_k[k]
        if variant is FractionalVariant.KNOWN_DELTA:
            bound = algorithm2_approximation_bound(k, delta)
        else:
            bound = algorithm3_approximation_bound(k, delta)
        ratio = result.objective / lp_optimum if lp_optimum > 0 else float("nan")
        records.append(
            ExperimentRecord(
                instance=instance.name,
                algorithm=f"fractional[{variant.value}]",
                parameters={"k": k, "n": instance.node_count, "delta": delta},
                measurements={
                    "objective": result.objective,
                    "lp_optimum": lp_optimum,
                    "ratio": ratio,
                    "bound": bound,
                    "rounds": result.rounds,
                    "max_messages_per_node": result.metrics.max_messages_per_node,
                    "max_message_bits": result.metrics.max_message_bits,
                },
            )
        )
    return records


def sweep_fractional(
    instances: Sequence[GraphInstance],
    k_values: Sequence[int],
    variant: FractionalVariant = FractionalVariant.KNOWN_DELTA,
    seed: int = 0,
    backend: str = "auto",
    jobs: int = 1,
    shards: int | None = None,
) -> list[ExperimentRecord]:
    """Run a fractional algorithm over instances × k and record quality.

    Every record contains the measured fractional objective, the LP optimum,
    the measured/optimal ratio, the theorem's bound for that (k, Δ), the
    number of rounds used and the per-node message maxima.  ``backend``
    selects the execution engine; all produce identical records (the bulk
    engines model their message counts).  ``jobs`` parallelizes across
    instances with a process pool (identical records, any order of
    execution); ``shards=N`` pins the sharded engine per instance (one
    resident shard pool serves an instance's whole k sweep).
    """
    worker = partial(
        _sweep_fractional_instance,
        k_values=tuple(k_values),
        variant=variant,
        seed=seed,
        backend=backend,
        shards=shards,
    )
    return _map_instances(worker, instances, jobs)


# ---------------------------------------------------------------------- #
# Pipeline sweep                                                          #
# ---------------------------------------------------------------------- #


def _sweep_pipeline_instance(
    instance: GraphInstance,
    k_values: Sequence[int],
    trials: int,
    variant: FractionalVariant,
    seed: int,
    backend: str,
    shards: int | None = None,
) -> list[ExperimentRecord]:
    """All pipeline records of one instance (one process-pool work unit).

    The fractional phase is deterministic (its seed is bookkeeping only),
    so it -- and its feasibility check -- runs *once* per (instance, k);
    the per-trial loop only redraws the rounding coins, through the batched
    rounding entry point.  Record values are identical to running the full
    pipeline once per trial, just without re-paying the seed-independent
    phases.
    """
    backend = _resolve_instance_backend(instance, backend, shards=shards)
    records: list[ExperimentRecord] = []
    lower_bound = lemma1_lower_bound(instance.graph)
    lp_optimum = _lp_reference(instance)
    delta = instance.max_degree
    # One CSR build per instance; the deterministic fractional phase of the
    # whole k sweep is one snapshot-engine execution, and each k's solution
    # is rounded under all trial seeds in one batch.  On the sharded
    # backend one resident shard pool serves all of it.
    bulk = _prebuild_bulk(instance, backend)
    executor = _instance_executor(instance, backend, bulk, shards)
    try:
        fractional_by_k = _fractional_sweep(
            instance, k_values, variant, seed, backend, bulk, executor
        )
        roundings_by_k = {
            k: round_fractional_solution_batched(
                instance.graph,
                fractional_by_k[k].x,
                seeds=[seed + trial for trial in range(trials)],
                require_feasible=True,  # the per-trial pipelines checked this
                backend=backend,
                _bulk=bulk,
                _executor=executor,
            )
            for k in k_values
        }
    finally:
        if executor is not None:
            executor.close()
    for k in k_values:
        fractional = fractional_by_k[k]
        roundings = roundings_by_k[k]
        sizes = []
        rounds = []
        for rounding in roundings:
            if not is_dominating_set(instance.graph, rounding.dominating_set):
                raise RuntimeError(
                    f"pipeline produced a non-dominating set on {instance.name}"
                )
            sizes.append(float(len(rounding.dominating_set)))
            rounds.append(float(fractional.rounds + rounding.rounds))
        size_summary = summarize(sizes)
        records.append(
            ExperimentRecord(
                instance=instance.name,
                algorithm=f"kuhn-wattenhofer[{variant.value}]",
                parameters={"k": k, "n": instance.node_count, "delta": delta},
                measurements={
                    "mean_size": size_summary.mean,
                    "std_size": size_summary.std,
                    "lp_optimum": lp_optimum,
                    "dual_lower_bound": lower_bound,
                    "mean_ratio_vs_lp": size_summary.mean / lp_optimum
                    if lp_optimum > 0
                    else float("nan"),
                    "bound": pipeline_expected_ratio_bound(k, delta),
                    "mean_rounds": sum(rounds) / len(rounds),
                    "trials": float(trials),
                },
            )
        )
    return records


def sweep_pipeline(
    instances: Sequence[GraphInstance],
    k_values: Sequence[int],
    trials: int = 5,
    variant: FractionalVariant = FractionalVariant.UNKNOWN_DELTA,
    seed: int = 0,
    backend: str = "auto",
    jobs: int = 1,
    shards: int | None = None,
) -> list[ExperimentRecord]:
    """Run the full pipeline over instances × k, averaging over trials.

    The expected-size guarantee of Theorem 6 is about the mean over the
    rounding randomness, so each (instance, k) cell aggregates ``trials``
    independent executions.  Only the rounding coins depend on the trial:
    the deterministic fractional phase is solved once per (instance, k) and
    its solution is rounded under ``trials`` seeds in one batch.
    ``backend`` selects the execution engine for both pipeline phases;
    seeds produce the same sets on every engine.  ``jobs`` parallelizes
    across instances with a process pool; ``shards=N`` pins the sharded
    engine per instance.
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    worker = partial(
        _sweep_pipeline_instance,
        k_values=tuple(k_values),
        trials=trials,
        variant=variant,
        seed=seed,
        backend=backend,
        shards=shards,
    )
    return _map_instances(worker, instances, jobs)


# ---------------------------------------------------------------------- #
# Trade-off sweep (measured ratio vs. the paper's bound curves)           #
# ---------------------------------------------------------------------- #


def _sweep_tradeoff_instance(
    instance: GraphInstance,
    k_values: Sequence[int],
    trials: int,
    variant: FractionalVariant,
    seed: int,
    backend: str,
    sparse_lp: bool,
    shards: int | None = None,
    lp_method: str = "highs",
    lp_tol: float = 1e-3,
) -> list[ExperimentRecord]:
    """All trade-off records of one instance (one process-pool work unit).

    Like the pipeline sweep, the deterministic fractional phase of the
    whole k sweep is a *single* snapshot-engine execution; each record adds
    the Theorem-6 upper bound, the KMW lower-bound shape and the round
    bound so callers can place the measured curve between the two shapes.
    """
    backend = _resolve_instance_backend(instance, backend, shards=shards)
    records: list[ExperimentRecord] = []
    lower_bound = lemma1_lower_bound(instance.graph)
    lp_optimum = _lp_reference(
        instance, sparse_for_bulk=sparse_lp, lp_method=lp_method, lp_tol=lp_tol
    )
    delta = instance.max_degree
    bulk = _prebuild_bulk(instance, backend)
    executor = _instance_executor(instance, backend, bulk, shards)
    try:
        fractional_by_k = _fractional_sweep(
            instance, k_values, variant, seed, backend, bulk, executor
        )
        roundings_by_k = {
            k: round_fractional_solution_batched(
                instance.graph,
                fractional_by_k[k].x,
                seeds=[seed + trial for trial in range(trials)],
                require_feasible=True,
                backend=backend,
                _bulk=bulk,
                _executor=executor,
            )
            for k in k_values
        }
    finally:
        if executor is not None:
            executor.close()
    for k in k_values:
        fractional = fractional_by_k[k]
        roundings = roundings_by_k[k]
        sizes = []
        for rounding in roundings:
            if not is_dominating_set(instance.graph, rounding.dominating_set):
                raise RuntimeError(
                    f"pipeline produced a non-dominating set on {instance.name}"
                )
            sizes.append(float(len(rounding.dominating_set)))
        size_summary = summarize(sizes)
        reference = lp_optimum if lp_optimum > 0 else float("nan")
        records.append(
            ExperimentRecord(
                instance=instance.name,
                algorithm=f"tradeoff[{variant.value}]",
                parameters={"k": k, "n": instance.node_count, "delta": delta},
                measurements={
                    "mean_size": size_summary.mean,
                    "lp_optimum": lp_optimum,
                    "dual_lower_bound": lower_bound,
                    "mean_ratio_vs_lp": size_summary.mean / reference,
                    "mean_ratio_vs_dual": size_summary.mean / lower_bound
                    if lower_bound > 0
                    else float("nan"),
                    "upper_bound_thm6": pipeline_expected_ratio_bound(k, delta),
                    "lower_bound_shape_kmw": kmw_lower_bound(k, delta),
                    "rounds": float(fractional.rounds + roundings[0].rounds),
                    "round_bound": float(pipeline_round_bound(k)),
                    "trials": float(trials),
                },
            )
        )
    return records


def sweep_tradeoff(
    instances: Sequence[GraphInstance],
    k_values: Sequence[int],
    trials: int = 5,
    variant: FractionalVariant = FractionalVariant.UNKNOWN_DELTA,
    seed: int = 0,
    backend: str = "auto",
    jobs: int = 1,
    sparse_lp: bool = False,
    shards: int | None = None,
    lp_method: str = "highs",
    lp_tol: float = 1e-3,
) -> list[ExperimentRecord]:
    """The paper's k-vs-quality trade-off curve over instances × k.

    Each record pairs the measured mean ratio (over ``trials`` rounding
    seeds) with the Theorem-6 upper-bound curve and the KMW
    ``Ω(Δ^{1/k}/k)`` lower-bound shape for the same (k, Δ), plus measured
    and guaranteed round counts -- everything ``bench_tradeoff_curve`` and
    the CLI ``tradeoff`` sub-command print.  All k values of an instance
    are evaluated from one fractional snapshot-engine execution;
    ``jobs`` parallelizes across instances.

    For CSR instances the LP ratio column is NaN by default (use the
    ``mean_ratio_vs_dual`` column, whose Lemma-1 denominator is cheap at
    any scale); pass ``sparse_lp=True`` to solve LP_MDS sparsely and get
    the true LP denominator at the cost of tens of seconds per n = 20 000
    instance -- or combine it with ``lp_method="pdhg"`` for a certified
    denominator (relative gap ≤ ``lp_tol``) at a fraction of that cost on
    solver-bound instances.
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    worker = partial(
        _sweep_tradeoff_instance,
        k_values=tuple(k_values),
        trials=trials,
        variant=variant,
        seed=seed,
        backend=backend,
        sparse_lp=sparse_lp,
        shards=shards,
        lp_method=lp_method,
        lp_tol=lp_tol,
    )
    return _map_instances(worker, instances, jobs)


# ---------------------------------------------------------------------- #
# Fault-degradation sweep                                                 #
# ---------------------------------------------------------------------- #

#: Default (loss_probability, crash_probability) grid for fault sweeps:
#: the fault-free reference point, loss-only and crash-only curves, and
#: one mixed regime.
DEFAULT_FAULT_RATES: tuple[tuple[float, float], ...] = (
    (0.0, 0.0),
    (0.1, 0.0),
    (0.3, 0.0),
    (0.0, 0.1),
    (0.0, 0.3),
    (0.2, 0.2),
)


def _sweep_faults_instance(
    instance: GraphInstance,
    fault_rates: Sequence[tuple[float, float]],
    k: int,
    trials: int,
    variant: FractionalVariant,
    seed: int,
    backend: str,
    shards: int | None = None,
) -> list[ExperimentRecord]:
    """All fault-degradation records of one instance.

    Each (loss, crash) cell runs the faulted pipeline ``trials`` times
    (independent fault draws *and* rounding coins per trial), always with
    the self-healing repair phase on, and reports how far the degraded
    output strayed from feasibility and from the fault-free baseline --
    the deficit repair had to patch, the patch size, and the fault
    bookkeeping (crashed nodes, dropped messages) behind it.
    """
    from repro.api import solve
    from repro.simulator.fault_schedule import FaultSpec

    backend = _resolve_instance_backend(instance, backend, shards=shards)
    baseline = solve(
        "kuhn-wattenhofer",
        instance.graph,
        backend=backend,
        seed=seed,
        k=k,
        variant=variant,
        shards=shards,
    )
    delta = instance.max_degree
    mean = lambda values: sum(values) / len(values)  # noqa: E731
    records: list[ExperimentRecord] = []
    for loss, crash in fault_rates:
        raw_sizes: list[float] = []
        repaired_sizes: list[float] = []
        deficits: list[float] = []
        patched: list[float] = []
        repair_rounds: list[float] = []
        crashed: list[float] = []
        dropped: list[float] = []
        degraded_trials = 0
        for trial in range(trials):
            report = solve(
                "kuhn-wattenhofer",
                instance.graph,
                backend=backend,
                seed=seed + trial,
                k=k,
                variant=variant,
                shards=shards,
                faults=FaultSpec(
                    loss_probability=loss,
                    crash_probability=crash,
                    seed=seed + trial,
                ),
                repair=True,
            )
            repair = report.repair
            if repair is None or not repair.feasible_after:
                raise RuntimeError(
                    f"faulted pipeline left an infeasible set on {instance.name}"
                )
            raw_sizes.append(float(repair.objective_before))
            repaired_sizes.append(float(repair.objective_after))
            deficits.append(float(repair.coverage_deficit))
            patched.append(float(len(repair.patched_nodes)))
            repair_rounds.append(float(repair.repair_rounds))
            degraded_trials += int(repair.was_degraded)
            summaries = report.fault_summaries
            crashed.append(float(summaries["rounding"].crashed_nodes))
            dropped.append(
                float(sum(summary.dropped_messages for summary in summaries.values()))
            )
        records.append(
            ExperimentRecord(
                instance=instance.name,
                algorithm=f"faulted-kw[{variant.value}]",
                parameters={
                    "loss": loss,
                    "crash": crash,
                    "k": k,
                    "n": instance.node_count,
                    "delta": delta,
                },
                measurements={
                    "baseline_size": float(baseline.size),
                    "mean_raw_size": mean(raw_sizes),
                    "mean_repaired_size": mean(repaired_sizes),
                    "mean_size_vs_baseline": mean(repaired_sizes) / baseline.size
                    if baseline.size
                    else float("nan"),
                    "mean_coverage_deficit": mean(deficits),
                    "mean_patched_nodes": mean(patched),
                    "mean_repair_rounds": mean(repair_rounds),
                    "degraded_fraction": degraded_trials / trials,
                    "mean_crashed_nodes": mean(crashed),
                    "mean_dropped_messages": mean(dropped),
                    "trials": float(trials),
                },
            )
        )
    return records


def sweep_faults(
    instances: Sequence[GraphInstance],
    fault_rates: Sequence[tuple[float, float]] = DEFAULT_FAULT_RATES,
    k: int = 2,
    trials: int = 3,
    variant: FractionalVariant = FractionalVariant.UNKNOWN_DELTA,
    seed: int = 0,
    backend: str = "auto",
    jobs: int = 1,
    shards: int | None = None,
) -> list[ExperimentRecord]:
    """Measure pipeline degradation under fault injection, with repair on.

    For every instance and every ``(loss_probability, crash_probability)``
    pair the Kuhn–Wattenhofer pipeline runs under a materialized
    :class:`~repro.simulator.fault_schedule.FaultSpec` and the self-healing
    repair phase patches whatever coverage the faults destroyed.  Records
    report the repaired size against the fault-free baseline, the coverage
    deficit repair had to close, the patch size and its round cost, and
    the fault bookkeeping (crashed nodes, dropped messages) -- the
    degradation curve the robustness benchmark and the CLI ``faults``
    sub-command print.  Fault masks are identical on every backend, so
    ``backend`` (and ``shards=N``) changes only the wall-clock, never the
    records.  ``jobs`` parallelizes across instances with a process pool.
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    for loss, crash in fault_rates:
        if not (0.0 <= loss <= 1.0 and 0.0 <= crash <= 1.0):
            raise ValueError(
                f"fault rates must be probabilities in [0, 1]; got ({loss}, {crash})"
            )
    worker = partial(
        _sweep_faults_instance,
        fault_rates=tuple(tuple(pair) for pair in fault_rates),
        k=k,
        trials=trials,
        variant=variant,
        seed=seed,
        backend=backend,
        shards=shards,
    )
    return _map_instances(worker, instances, jobs)


# ---------------------------------------------------------------------- #
# Connected dominating set comparison                                     #
# ---------------------------------------------------------------------- #


def _sweep_cds_instance(
    instance: GraphInstance,
    k: int,
    seed: int,
    backend: str,
) -> list[ExperimentRecord]:
    """All CDS records of one (connected) instance.

    Compares four backbones: the registered ``kw-connect`` spec (pipeline
    plus connectification), the (bucket-queue) greedy plus
    connectification, Wu–Li marking (connectified only when its
    pruning left the backbone disconnected), and the registered
    ``guha-khuller`` spec -- on every substrate, since the bucket-queue
    CSR twin keeps the centralized quality reference affordable at the
    n ≥ 20 000 scale.  Every backbone is validated as a CDS before
    reporting.
    """
    from repro.api import solve
    from repro.cds.connectify import connect_dominating_set
    from repro.cds.validation import is_connected_dominating_set

    backend = _resolve_instance_backend(instance, backend, algorithm="kw-connect")
    graph = instance.graph

    entries: list[tuple[str, frozenset, frozenset, float | None]] = []

    kw_report = solve("kw-connect", graph, backend=backend, seed=seed, k=k)
    _, pipeline = kw_report.raw
    entries.append(
        (
            f"kw(k={k})+connect",
            kw_report.dominating_set,
            pipeline.dominating_set,
            float(kw_report.rounds),
        )
    )

    # Backend resolution has already forced the vectorized engine for bulk
    # instances, so one pass-through serves both substrates.
    wu_li_report = solve("wu-li", graph, backend=backend, seed=seed)
    wu_li_cds = wu_li_report.dominating_set
    if not is_connected_dominating_set(graph, wu_li_cds):
        wu_li_cds = connect_dominating_set(graph, wu_li_report.dominating_set)
    entries.append(
        (
            "wu-li(+connect)",
            wu_li_cds,
            wu_li_report.dominating_set,
            float(wu_li_report.rounds),
        )
    )

    greedy = solve("greedy", graph, backend=backend, seed=seed).dominating_set
    entries.append(("greedy+connect", connect_dominating_set(graph, greedy), greedy, None))

    gk = solve("guha-khuller", graph, backend=backend, seed=seed).dominating_set
    entries.append(("guha-khuller (centralized)", gk, gk, None))

    records = []
    for name, backbone, base, rounds in entries:
        if not is_connected_dominating_set(graph, backbone):
            raise RuntimeError(
                f"algorithm {name!r} produced an invalid CDS on {instance.name}"
            )
        records.append(
            ExperimentRecord(
                instance=instance.name,
                algorithm=name,
                parameters={
                    "n": instance.node_count,
                    "delta": instance.max_degree,
                },
                measurements={
                    "backbone_size": float(len(backbone)),
                    "base_size": float(len(base)),
                    "connectors_added": float(len(backbone) - len(base & backbone)),
                    "distributed_rounds": rounds if rounds is not None else float("nan"),
                },
            )
        )
    return records


def sweep_cds(
    instances: Sequence[GraphInstance],
    k: int = 2,
    seed: int = 0,
    backend: str = "auto",
    jobs: int = 1,
) -> list[ExperimentRecord]:
    """Compare connected dominating set backbones over (connected) instances.

    Instances must be connected graphs (a disconnected graph has no CDS);
    use :func:`repro.cds.bulk.bulk_largest_component` or the networkx
    equivalent to preprocess.  Works on networkx and CSR instances alike --
    at the CSR scale every stage (pipeline, greedy, Wu–Li,
    connectification, validation) runs on the bulk engine.  ``jobs``
    parallelizes across instances with a process pool.
    """
    worker = partial(_sweep_cds_instance, k=k, seed=seed, backend=backend)
    return _map_instances(worker, instances, jobs)


# ---------------------------------------------------------------------- #
# Algorithm comparison                                                    #
# ---------------------------------------------------------------------- #


def _instance_algorithms(
    instance: GraphInstance,
    algorithms: "Mapping[str, Callable] | Sequence[str] | None",
    backend: str,
    overrides: "Mapping[str, Mapping[str, Any]] | None",
    shards: int | None = None,
) -> "Mapping[str, Callable[[nx.Graph, int], Iterable]]":
    """The comparison callables to run on one instance.

    An explicit mapping passes through unchanged (legacy callers); a
    sequence of registry names, or ``None`` (= every spec registered for
    comparison), is resolved through :func:`repro.api.comparison_algorithms`
    against the instance's substrate -- CSR instances keep only
    bulk-capable specs.  ``shards=N`` is forwarded only to sharded-capable
    specs (passing it to the rest would be a capability error, and a
    comparison mixing both kinds is the norm).
    """
    if isinstance(algorithms, Mapping):
        return algorithms
    from repro.api import comparison_algorithms, get_spec
    from repro.core.vectorized import SHARDED

    resolved = comparison_algorithms(
        bulk=instance.is_bulk,
        backend=backend,
        names=algorithms,
        overrides=overrides,
    )
    if shards is not None:
        resolved = {
            name: partial(call, shards=shards)
            if get_spec(name).supports_backend(SHARDED)
            else call
            for name, call in resolved.items()
        }
    return resolved


def _compare_instance(
    instance: GraphInstance,
    algorithms: "Mapping[str, Callable] | Sequence[str] | None",
    trials: int,
    seed: int,
    backend: str = "auto",
    overrides: "Mapping[str, Mapping[str, Any]] | None" = None,
    sparse_lp: bool = False,
    shards: int | None = None,
    lp_method: str = "highs",
    lp_tol: float = 1e-3,
) -> list[ExperimentRecord]:
    """All comparison records of one instance (one process-pool work unit)."""
    records: list[ExperimentRecord] = []
    lp_optimum = _lp_reference(
        instance, sparse_for_bulk=sparse_lp, lp_method=lp_method, lp_tol=lp_tol
    )
    delta = instance.max_degree
    registry_driven = not isinstance(algorithms, Mapping)
    if registry_driven:
        from repro.api import get_spec
    resolved = _instance_algorithms(instance, algorithms, backend, overrides, shards)
    for name, algorithm in resolved.items():
        # Registry specs declare determinism: one trial suffices (the
        # summary statistics of identical repetitions are identical).
        # Legacy callable mappings keep the full trial count -- their
        # names carry no capability metadata.
        if registry_driven:
            effective_trials = 1 if get_spec(name).deterministic else trials
        else:
            effective_trials = trials
        sizes = []
        for trial in range(effective_trials):
            candidate = frozenset(algorithm(instance.graph, seed + trial))
            if not is_dominating_set(instance.graph, candidate):
                raise RuntimeError(
                    f"algorithm {name!r} returned a non-dominating set "
                    f"on {instance.name}"
                )
            sizes.append(float(len(candidate)))
        summary = summarize(sizes)
        records.append(
            ExperimentRecord(
                instance=instance.name,
                algorithm=name,
                parameters={"n": instance.node_count, "delta": delta},
                measurements={
                    "mean_size": summary.mean,
                    "min_size": summary.minimum,
                    "max_size": summary.maximum,
                    "lp_optimum": lp_optimum,
                    "mean_ratio_vs_lp": summary.mean / lp_optimum
                    if lp_optimum > 0
                    else float("nan"),
                },
            )
        )
    return records


def compare_algorithms(
    instances: Sequence[GraphInstance],
    algorithms: "Mapping[str, Callable] | Sequence[str] | None" = None,
    trials: int = 3,
    seed: int = 0,
    jobs: int = 1,
    backend: str = "auto",
    overrides: "Mapping[str, Mapping[str, Any]] | None" = None,
    sparse_lp: bool = False,
    shards: int | None = None,
    lp_method: str = "highs",
    lp_tol: float = 1e-3,
) -> list[ExperimentRecord]:
    """Run dominating set algorithms over instances and record sizes.

    Parameters
    ----------
    instances:
        Graphs to evaluate on.  Bulk (CSR) instances keep only the
        bulk-capable registry specs; the LP reference column is skipped
        for them.
    algorithms:
        What to compare.  ``None`` (the default) enumerates every spec
        the :mod:`repro.api` registry marks for comparison -- newly
        registered algorithms join automatically.  A sequence of registry
        names restricts to those algorithms.  A mapping from name to a
        callable ``(graph, seed) -> set`` bypasses the registry entirely
        (legacy interface).  With ``jobs > 1`` callables must be
        picklable (module-level functions or ``functools.partial`` of
        them -- not lambdas; the registry-produced callables always are).
    trials:
        Number of seeds per (instance, algorithm) pair -- deterministic
        algorithms simply produce identical rows.
    seed:
        Base seed.
    jobs:
        Process-pool width across instances.
    backend:
        Execution backend forwarded to registry-driven algorithms
        (``"auto"`` resolves per spec capabilities and instance; ignored
        for explicit callable mappings, which bind their own backend).
    overrides:
        Per-algorithm parameter overrides for registry-driven runs, e.g.
        ``{"kuhn-wattenhofer": {"k": 3}}``.
    sparse_lp:
        Solve LP_MDS sparsely for CSR instances so the comparison's
        LP-ratio column is real instead of NaN (tens of seconds per
        n = 20 000 instance; dense instances always use the exact LP).
    shards:
        Shard count forwarded to sharded-capable registry specs (the rest
        run unchanged); requires ``backend`` ``"auto"`` or ``"sharded"``.
    lp_method / lp_tol:
        LP solver for the reference column: exact ``"highs"`` (default)
        or a certified first-order method (``"pdhg"`` / ``"mwu"`` at
        relative gap ``lp_tol``) -- much faster on solver-bound
        instances at n ≥ 20 000.

    Returns
    -------
    list[ExperimentRecord]
    """
    if isinstance(algorithms, Mapping):
        algorithms = dict(algorithms)
    elif algorithms is not None:
        algorithms = tuple(algorithms)
    worker = partial(
        _compare_instance,
        algorithms=algorithms,
        trials=trials,
        seed=seed,
        backend=backend,
        overrides=dict(overrides) if overrides else None,
        sparse_lp=sparse_lp,
        shards=shards,
        lp_method=lp_method,
        lp_tol=lp_tol,
    )
    return _map_instances(worker, instances, jobs)
