"""Matrix formulations of IP_MDS, LP_MDS and DLP_MDS.

The formulation object is deliberately small: it stores the neighbourhood
matrix ``N`` (adjacency + identity), the canonical node ordering, and the
objective weights (all ones for the unweighted problem, arbitrary positive
costs for the weighted variant from the paper's remark after Theorem 4).
Everything else -- solving, feasibility checking, duality bounds -- lives in
the sibling modules and operates on this object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.graphs.utils import neighborhood_matrix


@dataclass(frozen=True)
class DominatingSetLP:
    """The (fractional) dominating set LP for one graph.

    Attributes
    ----------
    nodes:
        Canonical node ordering: ``nodes[i]`` is the node whose variable is
        x_i / whose constraint is row i.
    matrix:
        The neighbourhood matrix N = A + I as a dense float array.  Row i is
        the domination constraint of node ``nodes[i]``; column j is the
        incidence of variable x_j.
    weights:
        Objective coefficients c_i ≥ 0 (all ones in the unweighted case).
    """

    nodes: tuple[Hashable, ...]
    matrix: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.nodes)
        if self.matrix.shape != (n, n):
            raise ValueError("neighbourhood matrix must be n × n")
        if self.weights.shape != (n,):
            raise ValueError("weights must be a length-n vector")
        if np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")

    # ------------------------------------------------------------------ #
    # Introspection                                                        #
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Number of variables / constraints n."""
        return len(self.nodes)

    def index_of(self, node: Hashable) -> int:
        """Index of a node in the canonical ordering."""
        try:
            return self.nodes.index(node)
        except ValueError as exc:
            raise KeyError(f"node {node!r} is not part of this LP") from exc

    def vector_from_mapping(self, values: Mapping[Hashable, float]) -> np.ndarray:
        """Convert a per-node mapping into a vector in canonical order.

        Missing nodes default to 0, mirroring how distributed executions
        report only nodes that set a non-zero value.
        """
        return np.array([float(values.get(node, 0.0)) for node in self.nodes])

    def mapping_from_vector(self, vector: Sequence[float]) -> dict[Hashable, float]:
        """Convert a canonical-order vector back into a per-node mapping."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.size,):
            raise ValueError("vector length must equal the number of nodes")
        return {node: float(value) for node, value in zip(self.nodes, vector)}

    # ------------------------------------------------------------------ #
    # Objectives                                                           #
    # ------------------------------------------------------------------ #

    def objective(self, x: Sequence[float] | Mapping[Hashable, float]) -> float:
        """The (weighted) primal objective Σ c_i x_i."""
        vector = self._as_vector(x)
        return float(self.weights @ vector)

    def dual_objective(self, y: Sequence[float] | Mapping[Hashable, float]) -> float:
        """The dual objective Σ y_i."""
        vector = self._as_vector(y)
        return float(np.sum(vector))

    def coverage(self, x: Sequence[float] | Mapping[Hashable, float]) -> np.ndarray:
        """The vector N·x of per-node coverages."""
        return self.matrix @ self._as_vector(x)

    def dual_load(self, y: Sequence[float] | Mapping[Hashable, float]) -> np.ndarray:
        """The vector N·y of per-neighbourhood dual loads."""
        # N is symmetric, so the dual constraint matrix equals the primal one.
        return self.matrix @ self._as_vector(y)

    def _as_vector(self, values: Sequence[float] | Mapping[Hashable, float]) -> np.ndarray:
        if isinstance(values, Mapping):
            return self.vector_from_mapping(values)
        vector = np.asarray(values, dtype=float)
        if vector.shape != (self.size,):
            raise ValueError("vector length must equal the number of nodes")
        return vector


def build_lp(
    graph: nx.Graph, weights: Mapping[Hashable, float] | None = None
) -> "DominatingSetLP":
    """Build the dominating set LP of a graph.

    Parameters
    ----------
    graph:
        The input graph.  A CSR :class:`~repro.simulator.bulk.BulkGraph`
        dispatches to :func:`repro.lp.sparse.build_lp_sparse`: the
        returned formulation exposes the same interface but never
        materialises the dense n × n constraint matrix.
    weights:
        Optional positive node costs for the weighted dominating set variant;
        defaults to 1 for every node.

    Returns
    -------
    DominatingSetLP | SparseDominatingSetLP
    """
    from repro.graphs.utils import is_bulk_graph

    if is_bulk_graph(graph):
        from repro.lp.sparse import build_lp_sparse

        return build_lp_sparse(graph, weights=weights)
    if graph.number_of_nodes() == 0:
        raise ValueError("graph has no nodes")
    nodes = tuple(sorted(graph.nodes()))
    matrix = neighborhood_matrix(graph, nodelist=nodes)
    if weights is None:
        weight_vector = np.ones(len(nodes))
    else:
        missing = [node for node in nodes if node not in weights]
        if missing:
            raise ValueError(f"weights missing for nodes: {missing[:5]}")
        weight_vector = np.array([float(weights[node]) for node in nodes])
    return DominatingSetLP(nodes=nodes, matrix=matrix, weights=weight_vector)


def fractional_objective(
    graph: nx.Graph, x: Mapping[Hashable, float]
) -> float:
    """Σ x_i for a per-node fractional assignment (unweighted)."""
    return float(sum(x.get(node, 0.0) for node in graph.nodes()))


def integer_objective(dominating_set: Sequence[Hashable] | frozenset) -> int:
    """|DS| for an integral dominating set."""
    return len(set(dominating_set))
