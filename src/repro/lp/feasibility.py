"""Primal and dual feasibility checks for the dominating set LPs.

The distributed algorithms' correctness claims (Theorems 4 and 5) have two
parts: the produced x-vector is *feasible* for LP_MDS, and its objective is
within the stated factor of the optimum.  These helpers check the first part
with explicit numerical tolerances; they are used by unit tests, property
tests, benchmarks and the end-to-end pipeline's self-checks.

Every check operates through the formulation's ``coverage`` / ``dual_load``
operators, so both the dense :class:`~repro.lp.formulation.DominatingSetLP`
and the CSR-backed :class:`~repro.lp.sparse.SparseDominatingSetLP` are
accepted interchangeably -- the sparse formulation evaluates N·x in
O(n + m) without materialising a constraint matrix, which is what makes
feasibility certification routine at n ≥ 20 000.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Mapping, Sequence, Union

import numpy as np

from repro.lp.formulation import DominatingSetLP

if TYPE_CHECKING:  # pragma: no cover
    from repro.lp.sparse import SparseDominatingSetLP

    AnyDominatingSetLP = Union[DominatingSetLP, SparseDominatingSetLP]
else:  # pragma: no cover
    AnyDominatingSetLP = DominatingSetLP


def check_primal_feasible(
    lp: "AnyDominatingSetLP",
    x: Mapping[Hashable, float] | Sequence[float],
    tolerance: float = 1e-9,
    return_violation: bool = False,
) -> bool | tuple[bool, float]:
    """Check ``N·x ≥ 1`` and ``x ≥ 0`` up to ``tolerance``.

    Parameters
    ----------
    lp:
        The LP formulation (dense or sparse).
    x:
        Candidate primal solution (mapping or canonical-order vector).
    tolerance:
        Allowed constraint violation.
    return_violation:
        When true, also return the largest violation found.

    Returns
    -------
    bool | tuple[bool, float]
        Feasibility verdict, optionally with the maximum violation.
    """
    vector = lp._as_vector(x)
    nonnegativity_violation = float(np.max(np.maximum(-vector, 0.0), initial=0.0))
    coverage = lp.coverage(vector)
    coverage_violation = float(np.max(np.maximum(1.0 - coverage, 0.0), initial=0.0))
    max_violation = max(nonnegativity_violation, coverage_violation)
    feasible = max_violation <= tolerance
    if return_violation:
        return feasible, max_violation
    return feasible


def check_dual_feasible(
    lp: "AnyDominatingSetLP",
    y: Mapping[Hashable, float] | Sequence[float],
    tolerance: float = 1e-9,
    return_violation: bool = False,
) -> bool | tuple[bool, float]:
    """Check ``N·y ≤ weights`` and ``y ≥ 0`` up to ``tolerance``.

    For the unweighted problem the right-hand side is the all-ones vector,
    matching DLP_MDS in the paper.  For the weighted variant, the dual
    constraint of variable x_i is Σ_{j ∈ N_i} y_j ≤ c_i.
    """
    vector = lp._as_vector(y)
    nonnegativity_violation = float(np.max(np.maximum(-vector, 0.0), initial=0.0))
    load = lp.dual_load(vector)
    packing_violation = float(np.max(np.maximum(load - lp.weights, 0.0), initial=0.0))
    max_violation = max(nonnegativity_violation, packing_violation)
    feasible = max_violation <= tolerance
    if return_violation:
        return feasible, max_violation
    return feasible


def primal_violations(
    lp: "AnyDominatingSetLP",
    x: Mapping[Hashable, float] | Sequence[float],
    tolerance: float = 1e-9,
) -> dict[Hashable, float]:
    """Per-node coverage shortfalls ``max(0, 1 - Σ_{j∈N_i} x_j)`` above tolerance.

    Useful for diagnosing *which* nodes a buggy algorithm left uncovered.
    """
    vector = lp._as_vector(x)
    coverage = lp.coverage(vector)
    shortfall = np.maximum(1.0 - coverage, 0.0)
    return {
        node: float(value)
        for node, value in zip(lp.nodes, shortfall)
        if value > tolerance
    }
