"""Weak duality lower bounds on the dominating set size.

Lemma 1 of the paper: assigning ``y_i := 1 / (δ⁽¹⁾_i + 1)`` gives a feasible
solution to the dual packing LP DLP_MDS, and therefore

    Σ_i 1 / (δ⁽¹⁾_i + 1)  ≤  |DS|           for every dominating set DS.

This bound is cheap (purely local), always valid, and is the lower bound the
rounding analysis (Theorem 3) leans on.  For graphs too large for the exact
branch-and-bound solver, benchmarks report ratios against this bound and
against the LP optimum.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import networkx as nx

from repro.graphs.utils import delta_one
from repro.lp.feasibility import check_dual_feasible
from repro.lp.formulation import DominatingSetLP, build_lp


def lemma1_dual_solution(graph: nx.Graph) -> dict[Hashable, float]:
    """The Lemma-1 dual assignment y_i = 1 / (δ⁽¹⁾_i + 1).

    CSR :class:`~repro.simulator.bulk.BulkGraph` inputs compute δ⁽¹⁾ with
    one ``closed_max`` sweep instead of n closed-neighbourhood scans.
    """
    from repro.graphs.utils import is_bulk_graph

    if is_bulk_graph(graph):
        delta_one_array = graph.closed_max(graph.degrees)
        return {
            node: 1.0 / (int(value) + 1.0)
            for node, value in zip(graph.nodes, delta_one_array)
        }
    first_level = delta_one(graph)
    return {node: 1.0 / (first_level[node] + 1.0) for node in graph.nodes()}


def lemma1_lower_bound(graph: nx.Graph) -> float:
    """The Lemma-1 lower bound Σ_i 1 / (δ⁽¹⁾_i + 1) ≤ |DS_OPT|."""
    return float(sum(lemma1_dual_solution(graph).values()))


def dual_objective(y: Mapping[Hashable, float]) -> float:
    """The dual objective Σ y_i of an arbitrary dual assignment."""
    return float(sum(y.values()))


def weak_duality_gap(
    lp: DominatingSetLP,
    x: Mapping[Hashable, float] | Sequence[float],
    y: Mapping[Hashable, float] | Sequence[float],
    tolerance: float = 1e-9,
) -> float:
    """The gap ``primal(x) − dual(y)`` for feasible primal/dual pairs.

    Weak duality guarantees the gap is non-negative whenever ``x`` is primal
    feasible and ``y`` is dual feasible; property tests assert exactly that.

    ``lp`` may be the dense :class:`~repro.lp.formulation.DominatingSetLP`
    or the CSR-backed :class:`~repro.lp.sparse.SparseDominatingSetLP`
    (from :func:`~repro.lp.formulation.build_lp` of a ``BulkGraph``); the
    sparse form evaluates both objectives and the dual feasibility check
    in O(n + m), making duality certificates routine at n ≥ 20 000.

    Raises
    ------
    ValueError
        If ``y`` is not dual feasible (the gap would be meaningless).
    """
    if not check_dual_feasible(lp, y, tolerance=tolerance):
        raise ValueError("y is not a feasible dual solution")
    primal_value = lp.objective(x)
    dual_value = lp.dual_objective(y)
    return float(primal_value - dual_value)


def certified_lower_bound(graph: nx.Graph, y: Mapping[Hashable, float]) -> float:
    """Validate a dual assignment and return its objective as a lower bound.

    ``graph`` may be a CSR :class:`~repro.simulator.bulk.BulkGraph`, in
    which case the dual feasibility verification runs matrix-free on the
    CSR adjacency.

    Raises
    ------
    ValueError
        If ``y`` is not feasible for DLP_MDS.
    """
    lp = build_lp(graph)
    if not check_dual_feasible(lp, y, tolerance=1e-9):
        raise ValueError("dual assignment is not feasible; cannot certify bound")
    return dual_objective(y)
