"""Weak duality lower bounds on the dominating set size.

Lemma 1 of the paper: assigning ``y_i := 1 / (δ⁽¹⁾_i + 1)`` gives a feasible
solution to the dual packing LP DLP_MDS, and therefore

    Σ_i 1 / (δ⁽¹⁾_i + 1)  ≤  |DS|           for every dominating set DS.

This bound is cheap (purely local), always valid, and is the lower bound the
rounding analysis (Theorem 3) leans on.  For graphs too large for the exact
branch-and-bound solver, benchmarks report ratios against this bound and
against the LP optimum.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.graphs.utils import delta_one
from repro.lp.feasibility import check_dual_feasible
from repro.lp.formulation import DominatingSetLP, build_lp


def lemma1_dual_solution(graph: nx.Graph) -> dict[Hashable, float]:
    """The Lemma-1 dual assignment y_i = 1 / (δ⁽¹⁾_i + 1).

    CSR :class:`~repro.simulator.bulk.BulkGraph` inputs compute δ⁽¹⁾ with
    one ``closed_max`` sweep instead of n closed-neighbourhood scans.
    """
    from repro.graphs.utils import is_bulk_graph

    if is_bulk_graph(graph):
        delta_one_array = graph.closed_max(graph.degrees)
        return {
            node: 1.0 / (int(value) + 1.0)
            for node, value in zip(graph.nodes, delta_one_array)
        }
    first_level = delta_one(graph)
    return {node: 1.0 / (first_level[node] + 1.0) for node in graph.nodes()}


def lemma1_lower_bound(graph: nx.Graph) -> float:
    """The Lemma-1 lower bound Σ_i 1 / (δ⁽¹⁾_i + 1) ≤ |DS_OPT|."""
    return float(sum(lemma1_dual_solution(graph).values()))


def dual_objective(y: Mapping[Hashable, float]) -> float:
    """The dual objective Σ y_i of an arbitrary dual assignment."""
    return float(sum(y.values()))


def weak_duality_gap(
    lp: DominatingSetLP,
    x: Mapping[Hashable, float] | Sequence[float],
    y: Mapping[Hashable, float] | Sequence[float],
    tolerance: float = 1e-9,
) -> float:
    """The gap ``primal(x) − dual(y)`` for feasible primal/dual pairs.

    Weak duality guarantees the gap is non-negative whenever ``x`` is primal
    feasible and ``y`` is dual feasible; property tests assert exactly that.

    ``lp`` may be the dense :class:`~repro.lp.formulation.DominatingSetLP`
    or the CSR-backed :class:`~repro.lp.sparse.SparseDominatingSetLP`
    (from :func:`~repro.lp.formulation.build_lp` of a ``BulkGraph``); the
    sparse form evaluates both objectives and the dual feasibility check
    in O(n + m), making duality certificates routine at n ≥ 20 000.

    Raises
    ------
    ValueError
        If ``y`` is not dual feasible (the gap would be meaningless).
    """
    if not check_dual_feasible(lp, y, tolerance=tolerance):
        raise ValueError("y is not a feasible dual solution")
    primal_value = lp.objective(x)
    dual_value = lp.dual_objective(y)
    return float(primal_value - dual_value)


def feasible_dual_projection(
    lp: DominatingSetLP, y: Mapping[Hashable, float] | Sequence[float]
) -> np.ndarray:
    """Project an arbitrary dual assignment onto the DLP_MDS polytope.

    Float round-off (or a first-order iterate captured mid-flight)
    routinely produces duals that are feasible only up to 1e-12ish noise:
    tiny negative entries, packing loads a hair above the weights.  The
    projection repairs any such vector into a *genuinely* feasible one
    while preserving as much of its objective as possible:

    1. clamp negative entries to zero,
    2. zero out the closed neighbourhood of every zero-weight node
       (their packing constraints read ``Σ_{j∈N⁺(i)} y_j ≤ 0``, so no
       amount of uniform scaling could repair mass there),
    3. rescale uniformly by ``min(1, min_i w_i / load_i)`` over the
       still-loaded constraints, so every packing constraint holds with
       a one-ulp safety margin.

    The result satisfies ``N·y ≤ w`` and ``y ≥ 0``; for an already
    feasible input the scale factor caps at 1 and steps 1–2 are no-ops,
    so feasible duals pass through unchanged.  Works on the dense and
    the CSR-backed formulation alike.
    """
    vector = np.maximum(lp._as_vector(y), 0.0)
    if not vector.any():
        return vector
    zero_weight = lp.weights <= 0.0
    if np.any(zero_weight):
        blocked = lp.coverage(zero_weight.astype(np.float64)) > 0.0
        vector[blocked] = 0.0
        if not vector.any():
            return vector
    load = lp.dual_load(vector)
    loaded = load > 0.0
    if np.any(loaded):
        scale = float(np.min(lp.weights[loaded] / load[loaded]))
        if scale < 1.0:
            # One-ulp shave keeps round-off in scale*load below w exact.
            vector *= scale * (1.0 - 1e-15)
    return vector


def certified_lower_bound_lp(
    lp: DominatingSetLP, y: Mapping[Hashable, float] | Sequence[float]
) -> float:
    """A verified lower bound from an arbitrary dual assignment.

    The assignment is first repaired by :func:`feasible_dual_projection`
    (a no-op for feasible inputs), then *re-verified* through
    :func:`~repro.lp.feasibility.check_dual_feasible` before its
    objective is returned -- so the bound is a certificate even when the
    caller handed over a round-off-polluted vector.

    Raises
    ------
    ValueError
        If the projected assignment still fails verification (cannot
        happen for finite inputs; guards NaN/inf poisoning).
    """
    projected = feasible_dual_projection(lp, y)
    if not check_dual_feasible(lp, projected, tolerance=1e-9):
        raise ValueError(
            "dual assignment is not feasible even after projection; "
            "cannot certify bound"
        )
    return float(np.sum(projected))


def certified_lower_bound(graph: nx.Graph, y: Mapping[Hashable, float]) -> float:
    """A verified DLP_MDS lower bound from a per-node dual assignment.

    ``graph`` may be a CSR :class:`~repro.simulator.bulk.BulkGraph`, in
    which case the projection and feasibility verification run
    matrix-free on the CSR adjacency.  Infeasible assignments -- negative
    entries from float round-off, over-packed neighbourhoods -- are
    *clamped* onto the feasible region (projection + uniform rescale,
    see :func:`feasible_dual_projection`) rather than rejected, so the
    returned value is always a valid lower bound; for a feasible input
    it equals ``Σ y_i`` exactly.

    Raises
    ------
    ValueError
        Only if the assignment cannot be repaired (NaN/inf entries).
    """
    lp = build_lp(graph)
    return certified_lower_bound_lp(lp, y)
