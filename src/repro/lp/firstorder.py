"""First-order, matrix-free solvers for the covering LP with certificates.

The covering LP behind every dominating set experiment in this repository
is ``min wᵀx  s.t.  N·x ≥ 1, x ≥ 0`` with N = A + I the closed
neighbourhood matrix of a CSR :class:`~repro.simulator.bulk.BulkGraph`.
The exact path (:mod:`repro.lp.solver`) hands that LP to HiGHS, which is
the right tool up to a few thousand nodes but becomes the bottleneck on
the solver-bound rows (grid, random-regular) and is impractical at the
``huge`` suite scale (n ≥ 10⁶).  This module removes the external-solver
floor with two iterative methods running directly on the sparse
neighbourhood operator:

* :data:`PDHG` -- Chambolle–Pock primal-dual hybrid gradient on the
  saddle form ``min_{x≥0} max_{y≥0} wᵀx + yᵀ(1 − N·x)``, with step sizes
  ``τ = σ < 1/‖N‖`` from a power-iteration estimate of the operator norm
  (:func:`estimate_operator_norm`).
* :data:`MWU` -- multiplicative weights / fractional covering in the
  spirit of the paper's own LP-relaxation lens: constraint weights
  ``y_i ∝ exp(η(1 − coverage_i))`` concentrate on the least covered
  nodes, and every near-best-ratio variable is incremented per round
  (Young-style parallel covering).

Both methods share one termination contract: ε-optimality is a
**verified certificate**, never a promise.  Every ``check_every``
iterations the raw iterates are turned into a genuinely feasible
primal/dual pair -- the primal by rescaling onto the covering polytope,
the dual by :func:`~repro.lp.duality.feasible_dual_projection`
(clamp-at-zero + packing rescale) -- and both points are re-checked
through the *existing* helpers
:func:`~repro.lp.feasibility.check_primal_feasible` /
:func:`~repro.lp.feasibility.check_dual_feasible`; the final bound is
re-derived through :func:`~repro.lp.duality.certified_lower_bound_lp`.
The solve returns only when ``wᵀx ≤ (1 + tol) · Σy`` holds for that
verified pair, so the reported gap bounds the true suboptimality by weak
duality no matter what the iteration dynamics did.

The inner loops are allocation-free: all iterate and scratch vectors are
preallocated float64 arrays, and the matvec accumulates into a
preallocated output through scipy's in-place CSR kernel, reusing the
one cached :func:`~repro.lp.sparse.neighborhood_csr_matrix` of the
formulation across the solve, the power iteration and certification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.lp.duality import certified_lower_bound_lp, feasible_dual_projection
from repro.lp.feasibility import check_dual_feasible, check_primal_feasible

if TYPE_CHECKING:  # pragma: no cover
    from repro.lp.sparse import SparseDominatingSetLP

try:  # scipy's templated in-place kernel: y += A @ x, no allocation.
    from scipy.sparse import _sparsetools as _scipy_sparsetools

    _CSR_MATVEC = _scipy_sparsetools.csr_matvec
except ImportError:  # pragma: no cover - older/newer scipy layouts
    _CSR_MATVEC = None

#: Method names accepted by :func:`solve_covering_lp`.
PDHG = "pdhg"
MWU = "mwu"
FIRST_ORDER_METHODS = (PDHG, MWU)

#: Iteration budgets (the verified-gap check is the real stop condition;
#: these only bound a run that fails to converge before it spins forever).
_MAX_ITERATIONS = {PDHG: 200_000, MWU: 200_000}
_CHECK_EVERY = {PDHG: 250, MWU: 250}


class FirstOrderError(RuntimeError):
    """Raised when a first-order covering LP solve cannot proceed."""


class ConvergenceError(FirstOrderError):
    """Raised when the iteration budget runs out before certification.

    Carries the best verified certificate seen so far (may be ``None``
    when not even one feasible primal/dual pair was produced).
    """

    def __init__(self, message: str, certificate: "DualityCertificate | None"):
        super().__init__(message)
        self.certificate = certificate


@dataclass(frozen=True)
class DualityCertificate:
    """A verified ε-optimality certificate for one covering LP solve.

    The contract: ``primal_objective`` and ``dual_objective`` belong to a
    primal/dual pair that passed
    :func:`~repro.lp.feasibility.check_primal_feasible` and
    :func:`~repro.lp.feasibility.check_dual_feasible` at ``tolerance``,
    so by weak duality ``dual_objective ≤ LP_OPT ≤ primal_objective`` and
    the solution is within a factor ``1 + gap`` of optimal.
    """

    method: str
    tol: float
    primal_objective: float
    dual_objective: float
    gap: float
    iterations: int
    certified: bool
    operator_norm: float

    def as_dict(self) -> dict:
        """JSON-ready payload (what the benchmarks persist and CI gates)."""
        return {
            "method": self.method,
            "tol": self.tol,
            "primal_objective": self.primal_objective,
            "certified_lower_bound": self.dual_objective,
            "certified_gap": self.gap,
            "iterations": self.iterations,
            "certified": self.certified,
            "operator_norm": self.operator_norm,
        }


@dataclass(frozen=True)
class FirstOrderSolution:
    """Raw vectors + certificate of one :func:`solve_covering_lp` call."""

    x: np.ndarray
    y: np.ndarray
    certificate: DualityCertificate


def _matvec(matrix, vector: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out = matrix @ vector`` into a preallocated buffer."""
    if _CSR_MATVEC is None:  # pragma: no cover - scipy without the kernel
        out[:] = matrix @ vector
        return out
    out[:] = 0.0
    _CSR_MATVEC(
        matrix.shape[0],
        matrix.shape[1],
        matrix.indptr,
        matrix.indices,
        matrix.data,
        vector,
        out,
    )
    return out


def estimate_operator_norm(
    lp: "SparseDominatingSetLP",
    iterations: int = 100,
    rtol: float = 1e-6,
) -> float:
    """Power-iteration estimate of ‖N‖₂ on the cached CSR operator.

    N = A + I is symmetric and entrywise non-negative, so its spectral
    norm is its Perron eigenvalue and power iteration from the all-ones
    vector (which has positive overlap with the non-negative Perron
    vector) converges monotonically from below.  The estimate is clipped
    against the row-sum bound ‖N‖₂ ≤ Δ + 1, which is also the fallback
    for pathological inputs.  Deterministic: no randomness is involved.
    """
    matrix = lp.neighborhood_matrix()
    n = lp.size
    upper = float(lp.bulk.max_degree + 1)
    vector = np.full(n, 1.0 / np.sqrt(n))
    product = np.empty(n)
    estimate = upper
    for _ in range(iterations):
        _matvec(matrix, vector, product)
        norm = float(np.linalg.norm(product))
        if norm == 0.0:  # cannot happen for N = A + I, but stay defensive
            return 1.0
        previous, estimate = estimate, norm
        np.divide(product, norm, out=vector)
        if abs(estimate - previous) <= rtol * max(estimate, 1.0):
            break
    return float(min(estimate, upper))


def _feasible_primal_scaling(
    lp: "SparseDominatingSetLP", x: np.ndarray, coverage: np.ndarray
) -> np.ndarray | None:
    """Scale the raw iterate onto the covering polytope (None if impossible).

    ``N·(x / min_i coverage_i) ≥ 1`` holds whenever the minimum coverage
    is positive, because N is entrywise non-negative; scaling *down* an
    over-covering iterate is equally valid and improves the objective.
    """
    worst = float(coverage.min()) if coverage.size else 1.0
    if worst <= 1e-300:
        return None
    return x / worst


class _PairTracker:
    """Best verified primal/dual pair seen across certification checks.

    Weak duality pairs *any* feasible primal with *any* feasible dual, so
    the tightest certificate combines the best primal and the best dual
    regardless of which iteration produced each.  Every offered candidate
    is verified through the canonical
    :func:`~repro.lp.feasibility.check_primal_feasible` /
    :func:`~repro.lp.feasibility.check_dual_feasible` before it can
    enter the pair -- unverified iterates never influence the result.
    """

    def __init__(
        self, lp: "SparseDominatingSetLP", method: str, tol: float, norm: float
    ):
        self.lp = lp
        self.method = method
        self.tol = tol
        self.norm = norm
        self.primal_objective = float("inf")
        self.primal: np.ndarray | None = None
        self.dual_objective = float("-inf")
        self.dual: np.ndarray | None = None

    def offer_primal(self, x: np.ndarray, coverage: np.ndarray) -> None:
        """Offer a raw primal iterate (verified after feasible rescale)."""
        candidate = _feasible_primal_scaling(self.lp, x, coverage)
        if candidate is None:
            return
        if not check_primal_feasible(self.lp, candidate, tolerance=1e-9):
            return
        objective = float(self.lp.weights @ candidate)
        if objective < self.primal_objective:
            self.primal_objective = objective
            self.primal = candidate

    def offer_dual(self, y: np.ndarray) -> None:
        """Offer a raw dual candidate (verified after projection)."""
        candidate = feasible_dual_projection(self.lp, y)
        if not check_dual_feasible(self.lp, candidate, tolerance=1e-9):
            return
        objective = float(np.sum(candidate))
        if objective > self.dual_objective:
            self.dual_objective = objective
            self.dual = candidate

    def certificate(self, iterations: int) -> DualityCertificate | None:
        """The certificate of the current best pair (None before one exists)."""
        if self.primal is None or self.dual is None:
            return None
        gap = _relative_gap(self.primal_objective, self.dual_objective)
        return DualityCertificate(
            method=self.method,
            tol=self.tol,
            primal_objective=self.primal_objective,
            dual_objective=self.dual_objective,
            gap=gap,
            iterations=iterations,
            certified=gap <= self.tol,
            operator_norm=self.norm,
        )


def _relative_gap(primal: float, dual: float) -> float:
    """The certified relative gap ``(primal − dual) / dual`` (≥ 0).

    A zero dual bound with a zero primal objective (the all-zero-weight
    LP) is gap 0; a zero dual bound against a positive primal is an
    infinite gap -- no certificate.
    """
    if dual > 0.0:
        return max(0.0, primal - dual) / dual
    return 0.0 if primal <= 1e-300 else float("inf")


def _validate(lp: "SparseDominatingSetLP", method: str, tol: float) -> None:
    if method not in FIRST_ORDER_METHODS:
        raise ValueError(
            f"unknown first-order method {method!r}; expected one of "
            + ", ".join(FIRST_ORDER_METHODS)
        )
    if not tol > 0.0:
        raise ValueError(
            f"tol must be positive for first-order solves (got {tol!r}); "
            "a tol of 0 needs the exact solver -- use method='highs'"
        )
    if np.any(~np.isfinite(lp.weights)):
        raise FirstOrderError("weights must be finite")


def solve_covering_lp(
    lp: "SparseDominatingSetLP",
    method: str = PDHG,
    tol: float = 1e-3,
    max_iterations: int | None = None,
    check_every: int | None = None,
) -> FirstOrderSolution:
    """Solve the covering LP of ``lp`` to a *certified* relative gap.

    Parameters
    ----------
    lp:
        The CSR-backed formulation (weights may include zeros).
    method:
        ``"pdhg"`` or ``"mwu"``.
    tol:
        Target relative duality gap; the returned pair satisfies
        ``wᵀx ≤ (1 + tol) Σy`` with both points *verified* feasible.
        Must be positive -- exactness belongs to the HiGHS path.
    max_iterations / check_every:
        Iteration budget and certification cadence (method defaults).

    Raises
    ------
    ConvergenceError
        When the budget is exhausted before a certificate at ``tol``;
        the best verified certificate so far rides on the exception.
    """
    _validate(lp, method, tol)
    budget = _MAX_ITERATIONS[method] if max_iterations is None else max_iterations
    cadence = _CHECK_EVERY[method] if check_every is None else max(1, check_every)
    if method == PDHG:
        return _solve_pdhg(lp, tol, budget, cadence)
    return _solve_mwu(lp, tol, budget, cadence)


def _prepare(lp: "SparseDominatingSetLP"):
    """Shared setup: cached CSR, δ⁽¹⁾-based warm starts, zero-weight presolve.

    A zero-weight variable costs nothing and covers its whole closed
    neighbourhood, so ``x_j = 1`` for every ``w_j = 0`` is optimal for
    those coordinates; both methods then only move the positive-cost
    coordinates.
    """
    matrix = lp.neighborhood_matrix()
    n = lp.size
    weights = lp.weights
    delta_one = lp.bulk.closed_max(lp.bulk.degrees.astype(np.float64))
    inverse_closed = 1.0 / (delta_one + 1.0)
    x = inverse_closed.copy()
    x[weights <= 0.0] = 1.0
    y = np.minimum(weights, 1.0) * inverse_closed
    return matrix, n, weights, x, y


def _solve_pdhg(
    lp: "SparseDominatingSetLP", tol: float, budget: int, cadence: int
) -> FirstOrderSolution:
    """Chambolle–Pock on ``min_{x≥0} max_{y≥0} wᵀx + yᵀ(1 − Nx)``."""
    matrix, n, weights, x, y = _prepare(lp)
    norm = estimate_operator_norm(lp)
    # τσ‖N‖² < 1 guarantees convergence; the 0.95 margin absorbs the
    # power-iteration estimate converging to the true norm from below.
    step = 0.95 / max(norm, 1.0)

    x_old = np.empty(n)
    x_bar = x.copy()
    n_x = np.empty(n)
    n_y = np.empty(n)
    coverage = np.empty(n)

    tracker = _PairTracker(lp, PDHG, tol, norm)
    _matvec(matrix, x, coverage)
    tracker.offer_primal(x, coverage)
    tracker.offer_dual(y)
    certificate = tracker.certificate(0)
    if certificate is not None and certificate.certified:
        return _finalize(lp, tracker, certificate)
    iteration = 0
    while iteration < budget:
        limit = min(iteration + cadence, budget)
        while iteration < limit:
            # y ← [y + σ(1 − N x̄)]₊
            _matvec(matrix, x_bar, n_x)
            np.multiply(n_x, -step, out=n_x)
            n_x += step
            y += n_x
            np.maximum(y, 0.0, out=y)
            # x ← [x − τ(w − N y)]₊
            x_old[:] = x
            _matvec(matrix, y, n_y)
            np.subtract(n_y, weights, out=n_y)
            n_y *= step
            x += n_y
            np.maximum(x, 0.0, out=x)
            # x̄ ← 2x − x_old (extrapolation)
            np.multiply(x, 2.0, out=x_bar)
            x_bar -= x_old
            iteration += 1
        _matvec(matrix, x, coverage)
        tracker.offer_primal(x, coverage)
        tracker.offer_dual(y)
        certificate = tracker.certificate(iteration)
        if certificate is not None and certificate.certified:
            return _finalize(lp, tracker, certificate)
    best = tracker.certificate(iteration)
    raise ConvergenceError(
        f"pdhg did not reach a certified gap of {tol} within {budget} "
        f"iterations (best verified gap: "
        f"{best.gap if best else float('inf'):.3e})",
        best,
    )


def _solve_mwu(
    lp: "SparseDominatingSetLP", tol: float, budget: int, cadence: int
) -> FirstOrderSolution:
    """Multiplicative weights on constraints, parallel covering increments.

    Constraint weights ``y_i ∝ exp(η(1 − coverage_i))`` concentrate on the
    least covered nodes; every variable whose weighted coverage gain per
    unit cost is within ``(1 − ε)`` of the best is incremented by a step
    sized so no constraint's coverage moves by more than ``ε/η`` -- the
    classic width-controlled parallel covering update.  Dual candidates
    are the instantaneous exponential weights, their normalized running
    average (the quantity the MWU regret analysis actually bounds), and
    the Lemma-1 warm start -- each pushed through
    :func:`~repro.lp.duality.feasible_dual_projection` and verified; the
    tracker keeps whichever certifies best.
    """
    matrix, n, weights, x, y_seed = _prepare(lp)
    # Certification, not the regret analysis, is the stop condition, so ε
    # can sit at the aggressive end; η = ln(n)/ε is the classic width.
    epsilon = min(0.25, max(tol / 2.0, 1e-3))
    eta = np.log(max(n, 2)) / epsilon
    step_cap = epsilon / eta

    positive = weights > 0.0
    # MWU mass is monotone non-decreasing, so paid coordinates must start
    # from zero -- any surplus warm-start mass could never be removed and
    # would wedge the primal objective above a certifiable level.
    x[positive] = 0.0
    safe_weights = np.where(positive, weights, np.inf)
    coverage = np.empty(n)
    deficit = np.empty(n)
    y = np.empty(n)
    y_avg = np.zeros(n)
    y_unit = np.empty(n)
    gain = np.empty(n)
    chosen = np.empty(n)
    increment = np.empty(n)

    tracker = _PairTracker(lp, MWU, tol, float(lp.bulk.max_degree + 1))
    tracker.offer_dual(y_seed)
    _matvec(matrix, x, coverage)
    tracker.offer_primal(x, coverage)
    certificate = tracker.certificate(0)
    if certificate is not None and certificate.certified:
        return _finalize(lp, tracker, certificate)
    iteration = 0
    while iteration < budget:
        advanced = False
        limit = min(iteration + cadence, budget)
        while iteration < limit:
            _matvec(matrix, x, coverage)
            # y_i ∝ exp(η(1 − c_i)), rescaled by the max exponent so the
            # weights stay representable at any coverage profile.
            np.subtract(1.0, coverage, out=deficit)
            deficit *= eta
            deficit -= deficit.max()
            np.exp(deficit, out=y, where=deficit > -60.0)
            y[deficit <= -60.0] = 0.0
            # Normalized running average: the MWU distribution's mean
            # direction, usually a far better dual than any single round.
            np.divide(y, y.sum(), out=y_unit)
            y_avg += y_unit
            # Per-variable weighted gain (N y)_j / w_j.
            _matvec(matrix, y, gain)
            gain /= safe_weights
            top = float(gain.max())
            if top <= 0.0:
                break
            selected = gain >= (1.0 - epsilon) * top
            chosen[:] = 0.0
            chosen[selected] = 1.0
            # Step size: no constraint's coverage may move by more than ε/η.
            _matvec(matrix, chosen, increment)
            per_unit = float(increment.max())
            if per_unit <= 0.0:
                break
            chosen *= step_cap / per_unit
            x += chosen
            iteration += 1
            advanced = True
        _matvec(matrix, x, coverage)
        tracker.offer_primal(x, coverage)
        if advanced:
            tracker.offer_dual(y)
            tracker.offer_dual(y_avg)
        certificate = tracker.certificate(iteration)
        if certificate is not None and certificate.certified:
            return _finalize(lp, tracker, certificate)
        if not advanced:
            # Every gain is zero (all-free or unreachable columns): more
            # rounds cannot change anything.
            break
    best = tracker.certificate(iteration)
    raise ConvergenceError(
        f"mwu did not reach a certified gap of {tol} within {budget} "
        f"iterations (best verified gap: "
        f"{best.gap if best else float('inf'):.3e}); multiplicative "
        "weights certifies loose tolerances quickly but tightens slowly "
        "-- prefer method='pdhg' for tight gaps",
        best,
    )


def _finalize(
    lp: "SparseDominatingSetLP",
    tracker: _PairTracker,
    certificate: DualityCertificate,
) -> FirstOrderSolution:
    """Re-derive the final bound through the canonical certification helper.

    :func:`~repro.lp.duality.certified_lower_bound_lp` re-projects and
    re-verifies the dual independently of anything the iteration loop
    did, so the certificate the caller receives is anchored in the same
    code path every other certificate in the repository uses.
    """
    bound = certified_lower_bound_lp(lp, tracker.dual)
    if not bound <= certificate.primal_objective + 1e-9:
        raise FirstOrderError(  # pragma: no cover - weak duality violation
            "certification helper disagrees with the verified pair"
        )
    return FirstOrderSolution(
        x=tracker.primal, y=tracker.dual, certificate=certificate
    )
