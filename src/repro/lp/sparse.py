"""CSR-backed formulation of LP_MDS / DLP_MDS (no dense matrix, ever).

:class:`~repro.lp.formulation.DominatingSetLP` stores the neighbourhood
matrix N = A + I densely, which costs O(n²) memory and turns every
feasibility check into a dense matvec -- fine at n ≈ 100, fatal at
n ≥ 20 000.  :class:`SparseDominatingSetLP` exposes the *same* interface
(canonical node order, weights, objectives, coverage and dual-load
operators) backed directly by the CSR arrays of a
:class:`~repro.simulator.bulk.BulkGraph`: N·x is computed as
``x + neighbor_sum(x)`` in O(n + m), so primal/dual feasibility checks,
:func:`~repro.lp.duality.weak_duality_gap` and the solver's output
validation all run at the bulk scale without ever materialising a
constraint matrix.

Because N is symmetric, the dual constraint operator equals the primal
coverage operator -- exactly as in the dense formulation -- so the
feasibility helpers in :mod:`repro.lp.feasibility` accept either
formulation interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.simulator.bulk import BulkGraph


@dataclass(frozen=True)
class SparseDominatingSetLP:
    """The (fractional) dominating set LP of one CSR graph.

    Attributes
    ----------
    bulk:
        The CSR graph whose adjacency (plus the implicit identity) is the
        constraint matrix N.  Never densified.
    nodes:
        Canonical node ordering -- identical to ``bulk.nodes`` (BulkGraph
        stores nodes sorted, matching the dense formulation's ordering).
    weights:
        Objective coefficients c_i ≥ 0 (all ones in the unweighted case).
    """

    bulk: BulkGraph
    nodes: tuple[Hashable, ...]
    weights: np.ndarray

    def __post_init__(self) -> None:
        if len(self.nodes) != self.bulk.n:
            raise ValueError("nodes must match the CSR graph's node count")
        if self.weights.shape != (self.bulk.n,):
            raise ValueError("weights must be a length-n vector")
        if np.any(self.weights < 0):
            raise ValueError("weights must be non-negative")

    # ------------------------------------------------------------------ #
    # Introspection                                                        #
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Number of variables / constraints n."""
        return self.bulk.n

    def index_of(self, node: Hashable) -> int:
        """Index of a node in the canonical ordering."""
        try:
            return int(self.bulk.index_of([node])[0])
        except KeyError as exc:
            raise KeyError(f"node {node!r} is not part of this LP") from exc

    def vector_from_mapping(self, values: Mapping[Hashable, float]) -> np.ndarray:
        """Convert a per-node mapping into a vector in canonical order.

        Missing nodes default to 0, mirroring how distributed executions
        report only nodes that set a non-zero value.
        """
        return np.array([float(values.get(node, 0.0)) for node in self.nodes])

    def mapping_from_vector(self, vector: Sequence[float]) -> dict[Hashable, float]:
        """Convert a canonical-order vector back into a per-node mapping."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.size,):
            raise ValueError("vector length must equal the number of nodes")
        return {node: float(value) for node, value in zip(self.nodes, vector)}

    # ------------------------------------------------------------------ #
    # Objectives and constraint operators                                  #
    # ------------------------------------------------------------------ #

    def objective(self, x: Sequence[float] | Mapping[Hashable, float]) -> float:
        """The (weighted) primal objective Σ c_i x_i."""
        vector = self._as_vector(x)
        return float(self.weights @ vector)

    def dual_objective(self, y: Sequence[float] | Mapping[Hashable, float]) -> float:
        """The dual objective Σ y_i."""
        vector = self._as_vector(y)
        return float(np.sum(vector))

    def coverage(self, x: Sequence[float] | Mapping[Hashable, float]) -> np.ndarray:
        """The vector N·x of per-node coverages, computed on the CSR."""
        vector = self._as_vector(x)
        return vector + self.bulk.neighbor_sum(vector)

    def dual_load(self, y: Sequence[float] | Mapping[Hashable, float]) -> np.ndarray:
        """The vector N·y of per-neighbourhood dual loads.

        N is symmetric, so the dual constraint matrix equals the primal
        one -- same identity the dense formulation relies on.
        """
        return self.coverage(y)

    def neighborhood_matrix(self):
        """The cached ``scipy.sparse`` CSR of N = A + I (built once).

        Delegates to :func:`neighborhood_csr_matrix`, which memoizes the
        matrix on the underlying :class:`~repro.simulator.bulk.BulkGraph`
        so every consumer (HiGHS solve, first-order iterations, power
        iteration, certification) shares one instance.
        """
        return neighborhood_csr_matrix(self.bulk)

    def _as_vector(self, values: Sequence[float] | Mapping[Hashable, float]) -> np.ndarray:
        if isinstance(values, Mapping):
            return self.vector_from_mapping(values)
        vector = np.asarray(values, dtype=float)
        if vector.shape != (self.size,):
            raise ValueError("vector length must equal the number of nodes")
        return vector


def weight_vector(
    bulk: BulkGraph, weights: Mapping[Hashable, float] | None
) -> np.ndarray:
    """Canonical-order weight vector from a per-node cost mapping.

    ``None`` means unweighted (all ones); a mapping must cover every node,
    matching :func:`repro.lp.formulation.build_lp`'s validation.
    """
    if weights is None:
        return np.ones(bulk.n)
    missing = [node for node in bulk.nodes if node not in weights]
    if missing:
        raise ValueError(f"weights missing for nodes: {missing[:5]}")
    return np.array([float(weights[node]) for node in bulk.nodes])


def build_lp_sparse(
    bulk: BulkGraph, weights: Mapping[Hashable, float] | None = None
) -> SparseDominatingSetLP:
    """Build the CSR-backed dominating set LP of a :class:`BulkGraph`.

    The counterpart of :func:`repro.lp.formulation.build_lp` at the bulk
    scale: O(n + m) memory instead of O(n²), same canonical node order
    (both sort node identifiers), same objective/feasibility semantics.
    """
    if bulk.n == 0:
        raise ValueError("graph has no nodes")
    return SparseDominatingSetLP(
        bulk=bulk, nodes=bulk.nodes, weights=weight_vector(bulk, weights)
    )


def neighborhood_csr_matrix(bulk: BulkGraph):
    """The constraint matrix N = A + I as a ``scipy.sparse`` CSR.

    Only the actual *solvers* need a matrix object (HiGHS takes one, and
    the first-order methods drive scipy's in-place matvec kernel with
    it); every check in this package uses the matrix-free operators of
    :class:`SparseDominatingSetLP` instead.  The matrix is built once
    per :class:`~repro.simulator.bulk.BulkGraph` and cached on it, so a
    solve + power iteration + certification pipeline pays the O(n + m)
    construction exactly once.
    """
    if bulk._neighborhood_csr is not None:
        return bulk._neighborhood_csr

    from scipy import sparse

    n = bulk.n
    data = np.ones(bulk.col.size + n)
    rows = np.concatenate([bulk.row, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([bulk.col, np.arange(n, dtype=np.int64)])
    matrix = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
    bulk._neighborhood_csr = matrix
    return matrix
