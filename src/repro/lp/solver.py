"""Exact fractional dominating set optimisation via scipy.

``LP_OPT = min Σ c_i x_i  s.t.  N·x ≥ 1, x ≥ 0`` is solved with
``scipy.optimize.linprog`` (HiGHS).  The optimum is the denominator of every
measured approximation ratio for the fractional algorithms and the α = 1
input for the rounding experiments, so this module is a load-bearing
substrate: its output is validated for feasibility before being returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Mapping

import networkx as nx
import numpy as np
from scipy.optimize import linprog

from repro.lp.feasibility import check_primal_feasible
from repro.lp.formulation import DominatingSetLP, build_lp

if TYPE_CHECKING:  # pragma: no cover
    from repro.lp.sparse import SparseDominatingSetLP
    from repro.simulator.bulk import BulkGraph


class LPSolverError(RuntimeError):
    """Raised when scipy fails to solve the dominating set LP."""


@dataclass(frozen=True)
class LPSolution:
    """An optimal fractional dominating set solution.

    Attributes
    ----------
    values:
        Per-node optimal x-values.
    objective:
        The optimal objective Σ c_i x_i (``LP_OPT``).
    lp:
        The formulation that was solved (kept for downstream feasibility
        and duality checks).  Dense solves attach a
        :class:`DominatingSetLP`; sparse CSR solves attach a matrix-free
        :class:`~repro.lp.sparse.SparseDominatingSetLP` -- at that scale
        the dense n × n formulation is exactly what the solve avoids
        building, but duality certification still needs the canonical
        ordering, weights and coverage operators.
    """

    values: dict[Hashable, float]
    objective: float
    lp: "DominatingSetLP | SparseDominatingSetLP | None"

    def as_vector(self) -> np.ndarray:
        """The solution as a vector in the LP's canonical node order."""
        if self.lp is None:
            raise ValueError(
                "no formulation attached; use the values mapping directly"
            )
        return self.lp.vector_from_mapping(self.values)


def solve_fractional_mds(
    graph: nx.Graph, tolerance: float = 1e-9
) -> LPSolution:
    """Solve LP_MDS exactly (unweighted).

    Parameters
    ----------
    graph:
        Input graph.
    tolerance:
        Feasibility tolerance used when validating the solver output.

    Returns
    -------
    LPSolution

    Raises
    ------
    LPSolverError
        If scipy reports failure or returns an infeasible point.
    """
    return solve_weighted_fractional_mds(graph, weights=None, tolerance=tolerance)


def solve_weighted_fractional_mds(
    graph: nx.Graph,
    weights: Mapping[Hashable, float] | None,
    tolerance: float = 1e-9,
) -> LPSolution:
    """Solve the weighted fractional dominating set LP exactly.

    The weighted variant corresponds to the remark after Theorem 4 in the
    paper: node v_i has cost c_i ≥ 0 and the objective is Σ c_i x_i.

    Parameters
    ----------
    graph:
        Input graph.  A CSR :class:`~repro.simulator.bulk.BulkGraph`
        dispatches to the sparse solve (identical optimum, O(n + m)
        memory).
    weights:
        Positive node costs; ``None`` means unweighted (all ones).
    tolerance:
        Feasibility tolerance for output validation.

    Returns
    -------
    LPSolution
    """
    from repro.graphs.utils import is_bulk_graph

    if is_bulk_graph(graph):
        return solve_weighted_fractional_mds_sparse(
            graph, weights=weights, tolerance=tolerance
        )
    lp = build_lp(graph, weights=weights)
    # linprog minimises c·x subject to A_ub·x ≤ b_ub, so the covering
    # constraint N·x ≥ 1 becomes -N·x ≤ -1.
    result = linprog(
        c=lp.weights,
        A_ub=-lp.matrix,
        b_ub=-np.ones(lp.size),
        bounds=[(0.0, None)] * lp.size,
        method="highs",
    )
    if not result.success:
        raise LPSolverError(f"scipy linprog failed: {result.message}")

    # Clip tiny negative values introduced by floating point.
    solution_vector = np.clip(result.x, 0.0, None)
    values = lp.mapping_from_vector(solution_vector)
    feasible, max_violation = check_primal_feasible(
        lp, values, tolerance=max(tolerance, 1e-7), return_violation=True
    )
    if not feasible:
        raise LPSolverError(
            f"linprog returned an infeasible point (max violation {max_violation:.2e})"
        )
    return LPSolution(values=values, objective=float(lp.objective(values)), lp=lp)


def solve_fractional_mds_sparse(
    bulk: "BulkGraph", tolerance: float = 1e-9
) -> LPSolution:
    """Solve LP_MDS exactly on a CSR graph without densifying it.

    The constraint matrix N = A + I is assembled as a ``scipy.sparse`` CSR
    straight from the :class:`~repro.simulator.bulk.BulkGraph` arrays, so
    memory stays O(n + m) where the dense formulation needs O(n²) -- the
    difference between n = 20 000 being routine and being impossible.
    The optimum equals :func:`solve_fractional_mds` of the same graph
    (same HiGHS solve, same constraints); feasibility of the returned
    point is verified on the CSR before it is handed out.
    """
    return solve_weighted_fractional_mds_sparse(
        bulk, weights=None, tolerance=tolerance
    )


def solve_weighted_fractional_mds_sparse(
    bulk: "BulkGraph",
    weights: "Mapping[Hashable, float] | None" = None,
    tolerance: float = 1e-9,
) -> LPSolution:
    """Solve the weighted fractional dominating set LP on a CSR graph.

    The sparse counterpart of :func:`solve_weighted_fractional_mds`: the
    objective Σ c_i x_i comes from the per-node cost mapping (``None`` =
    unweighted), the covering constraints from the CSR adjacency -- no
    dense matrix is ever built, so the weighted solve runs at n ≥ 20 000
    where the dense formulation alone would need gigabytes.  The returned
    solution carries a matrix-free
    :class:`~repro.lp.sparse.SparseDominatingSetLP`, so downstream
    duality certification (:func:`~repro.lp.duality.weak_duality_gap`,
    dual feasibility checks) works exactly as for dense solves.
    """
    from repro.lp.sparse import build_lp_sparse, neighborhood_csr_matrix

    lp = build_lp_sparse(bulk, weights=weights)
    result = linprog(
        c=lp.weights,
        A_ub=-neighborhood_csr_matrix(bulk),
        b_ub=-np.ones(bulk.n),
        bounds=(0.0, None),
        method="highs",
    )
    if not result.success:
        raise LPSolverError(f"scipy linprog failed: {result.message}")

    solution_vector = np.clip(result.x, 0.0, None)
    feasible, max_violation = bulk.check_lp_feasible(
        solution_vector, tolerance=max(tolerance, 1e-7)
    )
    if not feasible:
        raise LPSolverError(
            f"linprog returned an infeasible point (max violation {max_violation:.2e})"
        )
    return LPSolution(
        values=lp.mapping_from_vector(solution_vector),
        objective=float(lp.weights @ solution_vector),
        lp=lp,
    )
