"""Fractional dominating set optimisation: exact HiGHS + certified first-order.

``LP_OPT = min Σ c_i x_i  s.t.  N·x ≥ 1, x ≥ 0`` is solved with
``scipy.optimize.linprog`` (HiGHS) by default.  The optimum is the
denominator of every measured approximation ratio for the fractional
algorithms and the α = 1 input for the rounding experiments, so this
module is a load-bearing substrate: its output is validated for
feasibility before being returned.

``method="pdhg"`` / ``method="mwu"`` route the solve to the matrix-free
first-order methods in :mod:`repro.lp.firstorder` instead: the returned
objective is then ε-optimal with a *verified* duality certificate
(``solution.certificate``) bounding the relative gap by ``tol`` -- the
right trade on solver-bound instances at n ≥ 20 000 and the only option
at n ≥ 10⁶, where HiGHS is impractical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Mapping

import networkx as nx
import numpy as np
from scipy.optimize import linprog

from repro.lp.feasibility import check_primal_feasible
from repro.lp.formulation import DominatingSetLP, build_lp

if TYPE_CHECKING:  # pragma: no cover
    from repro.lp.firstorder import DualityCertificate
    from repro.lp.sparse import SparseDominatingSetLP
    from repro.simulator.bulk import BulkGraph

#: Method names accepted by the ``method=`` parameter of every solve
#: entry point: exact HiGHS plus the two certified first-order methods.
LP_METHODS = ("highs", "pdhg", "mwu")

#: Default certificate tolerance (relative duality gap) for the
#: first-order methods; ignored by ``method="highs"``.
DEFAULT_LP_TOL = 1e-3


class LPSolverError(RuntimeError):
    """Raised when scipy fails to solve the dominating set LP."""


@dataclass(frozen=True)
class LPSolution:
    """An optimal fractional dominating set solution.

    Attributes
    ----------
    values:
        Per-node optimal x-values.
    objective:
        The optimal objective Σ c_i x_i (``LP_OPT``).
    lp:
        The formulation that was solved (kept for downstream feasibility
        and duality checks).  Dense solves attach a
        :class:`DominatingSetLP`; sparse CSR solves attach a matrix-free
        :class:`~repro.lp.sparse.SparseDominatingSetLP` -- at that scale
        the dense n × n formulation is exactly what the solve avoids
        building, but duality certification still needs the canonical
        ordering, weights and coverage operators.
    """

    values: dict[Hashable, float]
    objective: float
    lp: "DominatingSetLP | SparseDominatingSetLP | None"
    method: str = "highs"
    dual_values: dict[Hashable, float] | None = field(default=None, repr=False)
    certificate: "DualityCertificate | None" = None

    def as_vector(self) -> np.ndarray:
        """The solution as a vector in the LP's canonical node order."""
        if self.lp is None:
            raise ValueError(
                "no formulation attached; use the values mapping directly"
            )
        return self.lp.vector_from_mapping(self.values)


def solve_fractional_mds(
    graph: nx.Graph,
    tolerance: float = 1e-9,
    method: str = "highs",
    tol: float = DEFAULT_LP_TOL,
) -> LPSolution:
    """Solve LP_MDS (unweighted) -- exactly, or to a certified gap.

    Parameters
    ----------
    graph:
        Input graph.
    tolerance:
        Feasibility tolerance used when validating the solver output.
    method:
        ``"highs"`` (exact, default), ``"pdhg"`` or ``"mwu"``
        (first-order with a verified ε-certificate).
    tol:
        Target relative duality gap for the first-order methods.

    Returns
    -------
    LPSolution

    Raises
    ------
    LPSolverError
        If scipy reports failure, returns an infeasible point, or a
        first-order method exhausts its budget uncertified.
    """
    return solve_weighted_fractional_mds(
        graph, weights=None, tolerance=tolerance, method=method, tol=tol
    )


def solve_weighted_fractional_mds(
    graph: nx.Graph,
    weights: Mapping[Hashable, float] | None,
    tolerance: float = 1e-9,
    method: str = "highs",
    tol: float = DEFAULT_LP_TOL,
) -> LPSolution:
    """Solve the weighted fractional dominating set LP.

    The weighted variant corresponds to the remark after Theorem 4 in the
    paper: node v_i has cost c_i ≥ 0 and the objective is Σ c_i x_i.

    Parameters
    ----------
    graph:
        Input graph.  A CSR :class:`~repro.simulator.bulk.BulkGraph`
        dispatches to the sparse solve (identical optimum, O(n + m)
        memory).
    weights:
        Positive node costs; ``None`` means unweighted (all ones).
    tolerance:
        Feasibility tolerance for output validation.
    method:
        ``"highs"`` (exact, default), ``"pdhg"`` or ``"mwu"`` -- the
        first-order methods run on the CSR operators, so a dense
        networkx input is converted to a
        :class:`~repro.simulator.bulk.BulkGraph` first.
    tol:
        Target relative duality gap for the first-order methods.

    Returns
    -------
    LPSolution
    """
    from repro.graphs.utils import is_bulk_graph

    _validate_method(method)
    if is_bulk_graph(graph):
        return solve_weighted_fractional_mds_sparse(
            graph, weights=weights, tolerance=tolerance, method=method, tol=tol
        )
    if method != "highs":
        from repro.simulator.bulk import BulkGraph

        return solve_weighted_fractional_mds_sparse(
            BulkGraph.from_graph(graph),
            weights=weights,
            tolerance=tolerance,
            method=method,
            tol=tol,
        )
    lp = build_lp(graph, weights=weights)
    # linprog minimises c·x subject to A_ub·x ≤ b_ub, so the covering
    # constraint N·x ≥ 1 becomes -N·x ≤ -1.
    result = linprog(
        c=lp.weights,
        A_ub=-lp.matrix,
        b_ub=-np.ones(lp.size),
        bounds=[(0.0, None)] * lp.size,
        method="highs",
    )
    if not result.success:
        raise LPSolverError(f"scipy linprog failed: {result.message}")

    # Clip tiny negative values introduced by floating point.
    solution_vector = np.clip(result.x, 0.0, None)
    values = lp.mapping_from_vector(solution_vector)
    feasible, max_violation = check_primal_feasible(
        lp, values, tolerance=max(tolerance, 1e-7), return_violation=True
    )
    if not feasible:
        raise LPSolverError(
            f"linprog returned an infeasible point (max violation {max_violation:.2e})"
        )
    return LPSolution(values=values, objective=float(lp.objective(values)), lp=lp)


def _validate_method(method: str) -> None:
    if method not in LP_METHODS:
        raise ValueError(
            f"unknown LP method {method!r}; expected one of "
            + ", ".join(LP_METHODS)
        )


def solve_fractional_mds_sparse(
    bulk: "BulkGraph",
    tolerance: float = 1e-9,
    method: str = "highs",
    tol: float = DEFAULT_LP_TOL,
) -> LPSolution:
    """Solve LP_MDS on a CSR graph without densifying it.

    The constraint matrix N = A + I is assembled as a ``scipy.sparse`` CSR
    straight from the :class:`~repro.simulator.bulk.BulkGraph` arrays, so
    memory stays O(n + m) where the dense formulation needs O(n²) -- the
    difference between n = 20 000 being routine and being impossible.
    With the default ``method="highs"`` the optimum equals
    :func:`solve_fractional_mds` of the same graph (same HiGHS solve,
    same constraints); ``"pdhg"`` / ``"mwu"`` trade exactness for a
    matrix-free iteration with a verified ε-certificate at gap ``tol``.
    Feasibility of the returned point is verified on the CSR before it
    is handed out either way.
    """
    return solve_weighted_fractional_mds_sparse(
        bulk, weights=None, tolerance=tolerance, method=method, tol=tol
    )


def solve_weighted_fractional_mds_sparse(
    bulk: "BulkGraph",
    weights: "Mapping[Hashable, float] | None" = None,
    tolerance: float = 1e-9,
    method: str = "highs",
    tol: float = DEFAULT_LP_TOL,
) -> LPSolution:
    """Solve the weighted fractional dominating set LP on a CSR graph.

    The sparse counterpart of :func:`solve_weighted_fractional_mds`: the
    objective Σ c_i x_i comes from the per-node cost mapping (``None`` =
    unweighted), the covering constraints from the CSR adjacency -- no
    dense matrix is ever built, so the weighted solve runs at n ≥ 20 000
    where the dense formulation alone would need gigabytes.  The returned
    solution carries a matrix-free
    :class:`~repro.lp.sparse.SparseDominatingSetLP`, so downstream
    duality certification (:func:`~repro.lp.duality.weak_duality_gap`,
    dual feasibility checks) works exactly as for dense solves.

    ``method="pdhg"`` / ``"mwu"`` route to
    :func:`repro.lp.firstorder.solve_covering_lp`: the solution is then
    ε-optimal with ``solution.certificate`` carrying the verified
    relative gap (≤ ``tol``) and ``solution.dual_values`` the feasible
    dual that proves it.
    """
    from repro.lp.sparse import build_lp_sparse, neighborhood_csr_matrix

    _validate_method(method)
    lp = build_lp_sparse(bulk, weights=weights)
    if method != "highs":
        return _solve_sparse_firstorder(bulk, lp, method, tol, tolerance)
    result = linprog(
        c=lp.weights,
        A_ub=-neighborhood_csr_matrix(bulk),
        b_ub=-np.ones(bulk.n),
        bounds=(0.0, None),
        method="highs",
    )
    if not result.success:
        raise LPSolverError(f"scipy linprog failed: {result.message}")

    solution_vector = np.clip(result.x, 0.0, None)
    feasible, max_violation = bulk.check_lp_feasible(
        solution_vector, tolerance=max(tolerance, 1e-7)
    )
    if not feasible:
        raise LPSolverError(
            f"linprog returned an infeasible point (max violation {max_violation:.2e})"
        )
    return LPSolution(
        values=lp.mapping_from_vector(solution_vector),
        objective=float(lp.weights @ solution_vector),
        lp=lp,
    )


def _solve_sparse_firstorder(
    bulk: "BulkGraph",
    lp: "SparseDominatingSetLP",
    method: str,
    tol: float,
    tolerance: float,
) -> LPSolution:
    """Run a first-order method and package its certified output."""
    from repro.lp.firstorder import ConvergenceError, solve_covering_lp

    try:
        solved = solve_covering_lp(lp, method=method, tol=tol)
    except ConvergenceError as exc:
        raise LPSolverError(str(exc)) from exc
    feasible, max_violation = bulk.check_lp_feasible(
        solved.x, tolerance=max(tolerance, 1e-7)
    )
    if not feasible:  # pragma: no cover - the certificate already checked this
        raise LPSolverError(
            f"{method} returned an infeasible point "
            f"(max violation {max_violation:.2e})"
        )
    return LPSolution(
        values=lp.mapping_from_vector(solved.x),
        objective=float(lp.weights @ solved.x),
        lp=lp,
        method=method,
        dual_values=lp.mapping_from_vector(solved.y),
        certificate=solved.certificate,
    )
