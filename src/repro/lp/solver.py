"""Exact fractional dominating set optimisation via scipy.

``LP_OPT = min Σ c_i x_i  s.t.  N·x ≥ 1, x ≥ 0`` is solved with
``scipy.optimize.linprog`` (HiGHS).  The optimum is the denominator of every
measured approximation ratio for the fractional algorithms and the α = 1
input for the rounding experiments, so this module is a load-bearing
substrate: its output is validated for feasibility before being returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Mapping

import networkx as nx
import numpy as np
from scipy.optimize import linprog

from repro.lp.feasibility import check_primal_feasible
from repro.lp.formulation import DominatingSetLP, build_lp

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.bulk import BulkGraph


class LPSolverError(RuntimeError):
    """Raised when scipy fails to solve the dominating set LP."""


@dataclass(frozen=True)
class LPSolution:
    """An optimal fractional dominating set solution.

    Attributes
    ----------
    values:
        Per-node optimal x-values.
    objective:
        The optimal objective Σ c_i x_i (``LP_OPT``).
    lp:
        The formulation that was solved (kept for downstream feasibility
        and duality checks).  ``None`` when the LP was solved sparsely from
        a CSR :class:`~repro.simulator.bulk.BulkGraph` -- at that scale the
        dense n × n formulation is exactly what the solve avoids building.
    """

    values: dict[Hashable, float]
    objective: float
    lp: DominatingSetLP | None

    def as_vector(self) -> np.ndarray:
        """The solution as a vector in the LP's canonical node order."""
        if self.lp is None:
            raise ValueError(
                "no dense formulation attached (sparse CSR solve); "
                "use the values mapping directly"
            )
        return self.lp.vector_from_mapping(self.values)


def solve_fractional_mds(
    graph: nx.Graph, tolerance: float = 1e-9
) -> LPSolution:
    """Solve LP_MDS exactly (unweighted).

    Parameters
    ----------
    graph:
        Input graph.
    tolerance:
        Feasibility tolerance used when validating the solver output.

    Returns
    -------
    LPSolution

    Raises
    ------
    LPSolverError
        If scipy reports failure or returns an infeasible point.
    """
    return solve_weighted_fractional_mds(graph, weights=None, tolerance=tolerance)


def solve_weighted_fractional_mds(
    graph: nx.Graph,
    weights: Mapping[Hashable, float] | None,
    tolerance: float = 1e-9,
) -> LPSolution:
    """Solve the weighted fractional dominating set LP exactly.

    The weighted variant corresponds to the remark after Theorem 4 in the
    paper: node v_i has cost c_i ≥ 0 and the objective is Σ c_i x_i.

    Parameters
    ----------
    graph:
        Input graph.
    weights:
        Positive node costs; ``None`` means unweighted (all ones).
    tolerance:
        Feasibility tolerance for output validation.

    Returns
    -------
    LPSolution
    """
    lp = build_lp(graph, weights=weights)
    # linprog minimises c·x subject to A_ub·x ≤ b_ub, so the covering
    # constraint N·x ≥ 1 becomes -N·x ≤ -1.
    result = linprog(
        c=lp.weights,
        A_ub=-lp.matrix,
        b_ub=-np.ones(lp.size),
        bounds=[(0.0, None)] * lp.size,
        method="highs",
    )
    if not result.success:
        raise LPSolverError(f"scipy linprog failed: {result.message}")

    # Clip tiny negative values introduced by floating point.
    solution_vector = np.clip(result.x, 0.0, None)
    values = lp.mapping_from_vector(solution_vector)
    feasible, max_violation = check_primal_feasible(
        lp, values, tolerance=max(tolerance, 1e-7), return_violation=True
    )
    if not feasible:
        raise LPSolverError(
            f"linprog returned an infeasible point (max violation {max_violation:.2e})"
        )
    return LPSolution(values=values, objective=float(lp.objective(values)), lp=lp)


def solve_fractional_mds_sparse(
    bulk: "BulkGraph", tolerance: float = 1e-9
) -> LPSolution:
    """Solve LP_MDS exactly on a CSR graph without densifying it.

    The constraint matrix N = A + I is assembled as a ``scipy.sparse`` CSR
    straight from the :class:`~repro.simulator.bulk.BulkGraph` arrays, so
    memory stays O(n + m) where the dense formulation needs O(n²) -- the
    difference between n = 20 000 being routine and being impossible.
    The optimum equals :func:`solve_fractional_mds` of the same graph
    (same HiGHS solve, same constraints); feasibility of the returned
    point is verified on the CSR before it is handed out.
    """
    from scipy import sparse

    n = bulk.n
    data = np.ones(bulk.col.size + n)
    rows = np.concatenate([bulk.row, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([bulk.col, np.arange(n, dtype=np.int64)])
    neighborhood = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))

    result = linprog(
        c=np.ones(n),
        A_ub=-neighborhood,
        b_ub=-np.ones(n),
        bounds=(0.0, None),
        method="highs",
    )
    if not result.success:
        raise LPSolverError(f"scipy linprog failed: {result.message}")

    solution_vector = np.clip(result.x, 0.0, None)
    feasible, max_violation = bulk.check_lp_feasible(
        solution_vector, tolerance=max(tolerance, 1e-7)
    )
    if not feasible:
        raise LPSolverError(
            f"linprog returned an infeasible point (max violation {max_violation:.2e})"
        )
    values = {
        node: float(value) for node, value in zip(bulk.nodes, solution_vector)
    }
    return LPSolution(
        values=values, objective=float(solution_vector.sum()), lp=None
    )
