"""Linear-programming substrate for the dominating set problem.

Section 4 of the paper derives three mathematical programs:

* ``IP_MDS`` -- the minimum dominating set integer program
  (minimise Σ x_i subject to N·x ≥ 1, x ∈ {0,1}ⁿ),
* ``LP_MDS`` -- its LP relaxation (x ≥ 0), and
* ``DLP_MDS`` -- the dual packing LP (maximise Σ y_i subject to N·y ≤ 1,
  y ≥ 0), whose feasible solutions lower-bound |DS_OPT| by weak duality
  (Lemma 1).

This package turns those three programs into code:

* :mod:`~repro.lp.formulation` -- explicit matrix formulations built from a
  graph (used both by the exact solver and by tests that verify the
  distributed algorithms' outputs against the constraint system).
* :mod:`~repro.lp.solver` -- exact fractional optima via ``scipy`` linear
  programming, used as the baseline α = 1 input to Algorithm 1 and as the
  denominator for measured approximation ratios.
* :mod:`~repro.lp.feasibility` -- primal and dual feasibility checks with
  numerical tolerances.
* :mod:`~repro.lp.duality` -- the Lemma 1 lower bound and general
  weak-duality utilities.
* :mod:`~repro.lp.sparse` -- the CSR-backed (matrix-free) formulation
  used for LP certification at the n ≥ 20 000 bulk scale: same
  interface as the dense formulation, O(n + m) memory, accepted by all
  feasibility/duality helpers interchangeably.
* :mod:`~repro.lp.firstorder` -- certified first-order solvers (PDHG and
  multiplicative weights) running matrix-free on the CSR operators: each
  solve terminates on a *verified* duality gap, so ε-optimality is a
  certificate, and the ``huge`` suite (n ≥ 10⁶) certifies without an
  external LP solver.
"""

from repro.lp.duality import (
    certified_lower_bound,
    certified_lower_bound_lp,
    dual_objective,
    feasible_dual_projection,
    lemma1_dual_solution,
    lemma1_lower_bound,
    weak_duality_gap,
)
from repro.lp.firstorder import (
    FIRST_ORDER_METHODS,
    ConvergenceError,
    DualityCertificate,
    FirstOrderSolution,
    estimate_operator_norm,
    solve_covering_lp,
)
from repro.lp.feasibility import (
    check_dual_feasible,
    check_primal_feasible,
    primal_violations,
)
from repro.lp.formulation import (
    DominatingSetLP,
    build_lp,
    fractional_objective,
    integer_objective,
)
from repro.lp.solver import (
    DEFAULT_LP_TOL,
    LP_METHODS,
    LPSolution,
    solve_fractional_mds,
    solve_fractional_mds_sparse,
    solve_weighted_fractional_mds,
    solve_weighted_fractional_mds_sparse,
)
from repro.lp.sparse import SparseDominatingSetLP, build_lp_sparse

__all__ = [
    "ConvergenceError",
    "DEFAULT_LP_TOL",
    "DominatingSetLP",
    "DualityCertificate",
    "FIRST_ORDER_METHODS",
    "FirstOrderSolution",
    "LPSolution",
    "LP_METHODS",
    "SparseDominatingSetLP",
    "build_lp",
    "build_lp_sparse",
    "certified_lower_bound",
    "certified_lower_bound_lp",
    "check_dual_feasible",
    "check_primal_feasible",
    "dual_objective",
    "estimate_operator_norm",
    "feasible_dual_projection",
    "fractional_objective",
    "integer_objective",
    "lemma1_dual_solution",
    "lemma1_lower_bound",
    "primal_violations",
    "solve_covering_lp",
    "solve_fractional_mds",
    "solve_fractional_mds_sparse",
    "solve_weighted_fractional_mds",
    "solve_weighted_fractional_mds_sparse",
    "weak_duality_gap",
]
