"""Unified algorithm registry and the ``solve()`` façade.

Every dominating set algorithm in the library -- the Kuhn–Wattenhofer
pipeline, its weighted variant, and the whole comparison stack of
baselines -- is registered here as an :class:`AlgorithmSpec` carrying
capability metadata: which execution backends it supports, whether it
consumes CSR :class:`~repro.simulator.bulk.BulkGraph` inputs natively,
whether it understands node weights, produces a *connected* dominating
set, records execution traces, or sweeps many k values from one engine
invocation.

On top of the registry sits one uniform entry point::

    from repro.api import solve

    report = solve("kuhn-wattenhofer", graph, k=2, seed=0)
    report.dominating_set, report.size, report.backend, report.elapsed_s

``solve`` accepts ``backend="auto"`` (the default) and resolves the
execution backend from the spec's capabilities and the input:

* a :class:`BulkGraph` input (or a networkx graph with
  ``n >= AUTO_VECTORIZE_THRESHOLD``) dispatches to the vectorized bulk
  engine whenever the algorithm supports it;
* ``collect_trace=True`` restricts dispatch to the backends named in the
  spec's ``trace_backends`` -- the simulated engine records event-based
  :class:`~repro.simulator.trace.ExecutionTrace` objects, the vectorized
  engine columnar :class:`~repro.simulator.columnar.ColumnarTrace`
  snapshots, and large traced runs stay on the bulk engine instead of
  being forced through per-node message passing;
* every impossible combination raises the single, well-worded
  :class:`~repro.core.vectorized.CapabilityError` instead of a scattered
  per-module ``ValueError``.

All runs are normalised into one :class:`RunReport` schema (set,
objective, backend used, rounds/messages/bits, wall-clock) regardless of
which heterogeneous result object the underlying entry point returns;
the underlying object stays available as ``report.raw``.

The CLI (``repro.cli``), the experiment sweeps
(``repro.analysis.experiment``) and the benchmark harness all enumerate
this registry, so registering a new algorithm here -- one
:func:`register` call -- makes it reachable from ``repro-domset solve
--algorithm ...``, ``repro-domset compare``, ``compare_algorithms`` and
the simulated/bulk twin equivalence gate automatically.

The classic public entry points (``kuhn_wattenhofer_dominating_set``,
``lrg_dominating_set``, ...) keep their exact signatures and behavior;
they are what the registry specs delegate to, and
``tests/test_api.py`` pins that ``solve`` reproduces them bitwise.
"""

from __future__ import annotations

import enum
import inspect
import time
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Hashable, Iterator, Mapping, Sequence

import networkx as nx

from repro.baselines.bulk_greedy import greedy_dominating_set_bulk
from repro.baselines.bulk_set_cover import greedy_set_cover_dominating_set_bulk
from repro.baselines.greedy import greedy_dominating_set
from repro.baselines.greedy_set_cover import greedy_set_cover_dominating_set
from repro.baselines.jia_rajaraman_suel import lrg_dominating_set
from repro.baselines.lp_rounding_central import central_lp_rounding_dominating_set
from repro.baselines.trivial import (
    all_nodes_dominating_set,
    maximal_independent_set_dominating_set,
    random_dominating_set,
)
from repro.baselines.wu_li import wu_li_dominating_set
from repro.cds.connectify import kw_connected_dominating_set
from repro.cds.guha_khuller import guha_khuller_connected_dominating_set
from repro.core.kuhn_wattenhofer import (
    FractionalVariant,
    kuhn_wattenhofer_dominating_set,
)
from repro.core.rounding import RoundingRule
from repro.core.vectorized import (
    BACKENDS,
    SHARDED,
    SIMULATED,
    VECTORIZED,
    CapabilityError,
)
from repro.core.weighted import weighted_kuhn_wattenhofer_dominating_set
from repro.simulator.bulk import BulkGraph

#: The dispatch pseudo-backend: resolve per capabilities and input.
AUTO = "auto"

#: Every value accepted by ``solve(backend=...)``.
DISPATCH_BACKENDS = (AUTO,) + BACKENDS

#: networkx inputs at or above this node count dispatch to the vectorized
#: engine under ``backend="auto"`` (when the algorithm supports it).  The
#: crossover in the backend benchmarks sits far below this, so the
#: threshold is conservative: small interactive graphs keep the
#: message-level simulated engine, sweeps and large graphs go bulk.
AUTO_VECTORIZE_THRESHOLD = 512

#: Inputs at or above this node count dispatch to the *sharded* multiprocess
#: engine under ``backend="auto"`` -- when the algorithm supports it, the
#: host has more than one usable CPU, and POSIX ``fork`` is available.  The
#: sharded engine is bitwise-equal to the vectorized one, so the switch is
#: purely a wall-clock/memory decision: below ~10⁵ nodes process start-up
#: dominates, above it the per-shard slabs win.
AUTO_SHARD_THRESHOLD = 200_000


# ---------------------------------------------------------------------- #
# RunReport: the one normalised result schema                             #
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class RunReport:
    """Normalised result of one :func:`solve` call.

    Attributes
    ----------
    algorithm:
        Registry name of the algorithm that ran.
    backend:
        The *resolved* backend that executed (never ``"auto"``).
    dominating_set:
        The produced (connected, for CDS algorithms) dominating set.
    objective:
        What the algorithm minimises: ``|DS|`` for unweighted algorithms,
        the weighted cost for weighted ones.
    rounds:
        Distributed rounds used, or ``None`` for centralized algorithms.
    messages:
        Total messages sent (modeled, on the vectorized backend), or
        ``None`` when not accounted.
    max_message_bits:
        Largest message payload observed, or ``None``.
    params:
        The algorithm parameters the run was called with.
    seed:
        The seed the run was called with.
    elapsed_s:
        Wall-clock of the underlying entry point call.
    raw:
        The underlying entry point's own result object (``PipelineResult``,
        ``LRGResult``, a bare frozenset, ...) for callers that need
        algorithm-specific fields.
    """

    algorithm: str
    backend: str
    dominating_set: frozenset
    objective: float
    rounds: int | None
    messages: int | None
    max_message_bits: int | None
    params: dict[str, Any]
    seed: int | None
    elapsed_s: float
    raw: Any

    # -- back-compat accessors mirroring PipelineResult & friends -------- #

    @property
    def size(self) -> int:
        """|DS| of the produced dominating set."""
        return len(self.dominating_set)

    @property
    def repair(self):
        """The :class:`~repro.domset.repair.RepairReport` of a faulted run.

        ``None`` for fault-free runs and for runs called with
        ``repair=False`` (whose :attr:`dominating_set` is then the raw,
        possibly infeasible, degraded output).
        """
        return getattr(self.raw, "repair", None)

    @property
    def fault_summaries(self) -> dict[str, Any]:
        """Per-phase fault summaries of a faulted run (empty otherwise).

        Keys are phase names (``"fractional"``, ``"rounding"``), values
        the :class:`~repro.simulator.fault_schedule.FaultSummary`
        recorded by that phase.
        """
        summaries: dict[str, Any] = {}
        for phase in ("fractional", "rounding"):
            summary = getattr(getattr(self.raw, phase, None), "faults", None)
            if summary is not None:
                summaries[phase] = summary
        return summaries

    @property
    def total_rounds(self) -> int | None:
        """Alias for :attr:`rounds` (PipelineResult spelling)."""
        return self.rounds

    @property
    def total_messages(self) -> int | None:
        """Alias for :attr:`messages` (PipelineResult spelling)."""
        return self.messages

    def as_row(self) -> dict[str, Any]:
        """Flatten into one dictionary suitable for table rendering."""
        row: dict[str, Any] = {
            "algorithm": self.algorithm,
            "backend": self.backend,
            "size": self.size,
            "objective": self.objective,
            "rounds": self.rounds,
            "messages": self.messages,
            "max_message_bits": self.max_message_bits,
            "elapsed_s": self.elapsed_s,
        }
        row.update(self.params)
        return row


#: The payload a spec runner returns; ``solve`` adds timing/params and
#: wraps it into a :class:`RunReport`.
_RunPayload = dict


# ---------------------------------------------------------------------- #
# AlgorithmSpec and the registry                                          #
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm with its capability metadata.

    Attributes
    ----------
    name:
        Registry key (kebab-case; also the CLI ``--algorithm`` value).
    summary:
        One-line description shown in CLI help and docs.
    backends:
        Execution backends the algorithm supports (subset of
        :data:`~repro.core.vectorized.BACKENDS`).
    runner:
        ``(graph, *, seed, backend, **params) -> dict`` adapter producing
        the :class:`RunReport` payload.  ``backend`` is always concrete
        (already resolved).
    entry_point:
        The canonical public function the runner delegates to (kept for
        documentation and the back-compat tests).
    accepts_bulk:
        Consumes a CSR :class:`BulkGraph` natively -- no
        ``BulkGraph.from_graph`` conversion, no networkx materialisation.
    weighted:
        Understands a ``weights=`` mapping (defaults to unit costs).
    produces_cds:
        The output is a *connected* dominating set; requires a connected
        input graph.
    trace_backends:
        Backends on which ``collect_trace=True`` is available (a subset of
        :attr:`backends`).  The simulated engine records event-based
        ``ExecutionTrace`` objects, the vectorized engine columnar
        ``ColumnarTrace`` snapshots; empty means tracing is unsupported.
    supports_faults:
        Accepts a ``faults=`` :class:`~repro.simulator.fault_schedule.FaultSpec`
        (message loss + crash-stop injection from one materialized mask
        schedule, identical across every backend) and a ``repair=`` flag
        controlling the self-healing patch phase.
    supports_multi_k:
        A whole k sweep can run from one engine invocation
        (the ``*_multi_k`` snapshot entry points).
    deterministic:
        Output does not depend on ``seed`` -- sweeps and benchmarks may
        skip redundant trials.
    requires_connected:
        Only defined on connected graphs.
    in_comparison:
        Enumerated by default in registry-driven comparisons
        (``repro-domset compare`` / ``compare_algorithms``).
    in_bulk_comparison:
        Also enumerated when the comparison instances are CSR
        ``BulkGraph`` objects (centralized references whose cost explodes
        at that scale opt out).
    cli_params:
        Which of the CLI's generic algorithm options (``k``,
        ``variant``) this algorithm's runner accepts; the ``solve``
        sub-command forwards them from the declaration alone, so no
        per-algorithm wiring lives in :mod:`repro.cli`.
    """

    name: str
    summary: str
    backends: tuple[str, ...]
    runner: Callable[..., _RunPayload]
    entry_point: Callable
    accepts_bulk: bool = False
    weighted: bool = False
    produces_cds: bool = False
    trace_backends: tuple[str, ...] = ()
    supports_faults: bool = False
    supports_multi_k: bool = False
    deterministic: bool = False
    requires_connected: bool = False
    in_comparison: bool = True
    in_bulk_comparison: bool = True
    cli_params: tuple[str, ...] = ()

    def supports_backend(self, backend: str) -> bool:
        """Whether ``backend`` (a concrete backend) is supported."""
        return backend in self.backends

    @property
    def supports_trace(self) -> bool:
        """Whether ``collect_trace=True`` is available on any backend."""
        return bool(self.trace_backends)

    def supports_trace_on(self, backend: str) -> bool:
        """Whether ``collect_trace=True`` is available on ``backend``."""
        return backend in self.trace_backends

    @property
    def has_backend_twins(self) -> bool:
        """Both engines implement the algorithm (equivalence-gateable)."""
        return SIMULATED in self.backends and VECTORIZED in self.backends


#: The global registry, in registration (= display) order.
_REGISTRY: dict[str, AlgorithmSpec] = {}


def register(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Add one :class:`AlgorithmSpec` to the registry.

    Raises
    ------
    ValueError
        On duplicate names, unknown backends, or capability combinations
        that cannot work (bulk-native without vectorized support, traces
        without the simulated engine).
    """
    if spec.name in _REGISTRY:
        raise ValueError(f"algorithm {spec.name!r} is already registered")
    if not spec.backends:
        raise ValueError(f"algorithm {spec.name!r} declares no backends")
    for backend in spec.backends:
        if backend not in BACKENDS:
            raise ValueError(
                f"algorithm {spec.name!r} declares unknown backend "
                f"{backend!r}; expected a subset of {', '.join(BACKENDS)}"
            )
    if spec.accepts_bulk and VECTORIZED not in spec.backends:
        raise ValueError(
            f"algorithm {spec.name!r} claims BulkGraph support without the "
            "vectorized backend"
        )
    if SHARDED in spec.backends and (
        VECTORIZED not in spec.backends or not spec.accepts_bulk
    ):
        # The sharded engine partitions a CSR and runs the vectorized
        # kernels on the slabs; without both it cannot execute at all.
        raise ValueError(
            f"algorithm {spec.name!r} claims the sharded backend without "
            "the vectorized backend and native BulkGraph support"
        )
    for backend in spec.trace_backends:
        if backend not in spec.backends:
            raise ValueError(
                f"algorithm {spec.name!r} claims trace support on backend "
                f"{backend!r} it does not execute on; trace_backends must "
                "be a subset of backends"
            )
    if spec.in_bulk_comparison and VECTORIZED not in spec.backends:
        raise ValueError(
            f"algorithm {spec.name!r} opts into bulk comparisons without "
            "the vectorized backend"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(algorithm: str | AlgorithmSpec) -> AlgorithmSpec:
    """Look an algorithm up by registry name (specs pass through)."""
    if isinstance(algorithm, AlgorithmSpec):
        return algorithm
    try:
        return _REGISTRY[algorithm]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; registered algorithms: "
            + ", ".join(sorted(_REGISTRY))
        ) from None


def algorithm_names() -> tuple[str, ...]:
    """Every registered algorithm name, in registration order."""
    return tuple(_REGISTRY)


def iter_specs(
    backend: str | None = None,
    comparison: bool | None = None,
    bulk_comparison: bool | None = None,
    produces_cds: bool | None = None,
    weighted: bool | None = None,
) -> Iterator[AlgorithmSpec]:
    """Iterate registered specs, optionally filtered by capability.

    ``backend`` keeps specs supporting that concrete backend; the boolean
    filters match the homonymous spec fields (``None`` = don't filter).
    """
    for spec in _REGISTRY.values():
        if backend is not None and not spec.supports_backend(backend):
            continue
        if comparison is not None and spec.in_comparison != comparison:
            continue
        if bulk_comparison is not None and spec.in_bulk_comparison != bulk_comparison:
            continue
        if produces_cds is not None and spec.produces_cds != produces_cds:
            continue
        if weighted is not None and spec.weighted != weighted:
            continue
        yield spec


def twin_specs(exclude_cds: bool = True) -> list[AlgorithmSpec]:
    """Specs implemented by *both* engines -- the equivalence-gate pairs.

    Every algorithm returned here must produce identical dominating sets
    under ``backend="simulated"`` and ``backend="vectorized"`` for a given
    seed; ``benchmarks/bench_baseline_backends.py`` gates exactly this
    list, so a newly registered twin is covered automatically.  CDS
    algorithms are excluded by default (they require connected inputs, so
    they are gated on their own connected suites --
    ``benchmarks/bench_lp_speedup.py`` enumerates
    ``twin_specs(exclude_cds=False)`` and gates the CDS twins there).
    """
    return [
        spec
        for spec in _REGISTRY.values()
        if spec.has_backend_twins and not (exclude_cds and spec.produces_cds)
    ]


# ---------------------------------------------------------------------- #
# Parameter normalization                                                 #
# ---------------------------------------------------------------------- #

#: Runner-signature names that are not algorithm parameters: they are the
#: positional run context ``solve`` supplies itself.
_RUNNER_CONTEXT = ("graph", "seed", "backend")


def canonical_param_value(value: Any) -> Any:
    """Collapse semantically-equal parameter spellings onto one value.

    Enum members become their ``.value`` (so ``variant="unknown_delta"``
    and ``variant=FractionalVariant.UNKNOWN_DELTA`` compare equal),
    mappings become key-sorted dicts, and lists/tuples become tuples.
    Scalars and arbitrary objects (e.g. a ``FaultSpec``) pass through
    unchanged; :func:`repro.service.keys.canonical_token` handles turning
    those into hashable cache-key material.
    """
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        return {
            key: canonical_param_value(value[key])
            for key in sorted(value, key=repr)
        }
    if isinstance(value, (list, tuple)):
        return tuple(canonical_param_value(item) for item in value)
    return value


def normalized_params(
    algorithm: str | AlgorithmSpec,
    params: Mapping[str, Any] | None = None,
    strict: bool = True,
) -> dict[str, Any]:
    """The canonical, complete parameter dict of one ``solve`` request.

    Two semantically-equal requests -- different kwargs order, defaults
    left implicit vs. spelled out, enum members vs. their string values --
    normalize to *identical* dicts: every parameter the algorithm's runner
    accepts appears exactly once (explicit value or the runner's default),
    values are canonicalized via :func:`canonical_param_value`, and keys
    are sorted.  This is what :class:`RunReport.params` reports and what
    the service layer's content-addressed cache keys hash
    (:mod:`repro.service.keys`), so stable keys are a direct consequence
    of this function being deterministic.

    ``strict=True`` raises ``TypeError`` for parameters the runner does
    not accept (the cache must never silently ignore a request knob);
    ``strict=False`` drops them instead, for callers normalizing a request
    that already executed (``solve`` pops backend-managed extras like a
    falsy ``collect_trace`` before they reach the runner).
    """
    spec = get_spec(algorithm)
    params = dict(params or {})
    signature = inspect.signature(spec.runner)
    accepted = {
        name: parameter.default
        for name, parameter in signature.parameters.items()
        if name not in _RUNNER_CONTEXT
        and parameter.kind
        in (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY)
    }
    unknown = sorted(set(params) - set(accepted))
    if unknown and strict:
        raise TypeError(
            f"algorithm {spec.name!r} does not accept parameter(s) "
            + ", ".join(repr(name) for name in unknown)
            + (
                "; accepted: " + ", ".join(sorted(accepted))
                if accepted
                else "; it takes no parameters"
            )
        )
    normalized = {
        name: canonical_param_value(params.get(name, default))
        for name, default in accepted.items()
        if name in params or default is not inspect.Parameter.empty
    }
    return dict(sorted(normalized.items()))


# ---------------------------------------------------------------------- #
# Backend resolution                                                      #
# ---------------------------------------------------------------------- #


def _node_count(graph: nx.Graph | BulkGraph) -> int:
    if isinstance(graph, BulkGraph):
        return graph.n
    return graph.number_of_nodes()


def _sharded_host_capable() -> bool:
    """Whether this host can run the sharded engine at all (POSIX fork)."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def resolve_backend(
    algorithm: str | AlgorithmSpec,
    graph: nx.Graph | BulkGraph,
    backend: str = AUTO,
    collect_trace: bool = False,
    shards: int | None = None,
) -> str:
    """Resolve ``backend="auto"`` (and validate concrete requests).

    Resolution rules, in order:

    1. ``collect_trace=True`` restricts dispatch to the spec's
       :attr:`~AlgorithmSpec.trace_backends` (event-based traces on the
       simulated engine, columnar traces on the vectorized engine; the
       sharded engine does not trace).
    2. An explicit ``shards=N`` requires a sharded-capable spec and pins
       the sharded engine under ``auto`` (with a concrete
       ``backend="simulated"``/``"vectorized"`` it is contradictory and
       raises).
    3. A CSR :class:`BulkGraph` input requires a bulk engine (vectorized
       or sharded -- there are no per-node programs to run it through).
    4. Otherwise ``auto`` picks the sharded engine for inputs with
       ``n >= AUTO_SHARD_THRESHOLD`` when the spec supports it and the
       host has multiple usable CPUs, the vectorized engine for
       ``n >= AUTO_VECTORIZE_THRESHOLD``, and the simulated engine below.

    Any impossible combination raises :class:`CapabilityError` naming the
    algorithm, the capability and the supporting backends.  The return
    value is always a concrete backend (never ``"auto"``).
    """
    spec = get_spec(algorithm)
    if backend not in DISPATCH_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            + ", ".join(DISPATCH_BACKENDS)
        )
    if collect_trace and not spec.trace_backends:
        raise CapabilityError(spec.name, "collect_trace", backend, ())
    if shards is not None:
        if not spec.supports_backend(SHARDED):
            raise CapabilityError(
                spec.name,
                f"sharded execution (shards={shards})",
                backend,
                spec.backends,
            )
        if backend in (SIMULATED, VECTORIZED):
            raise ValueError(
                f"shards={shards} requires backend='sharded' (or 'auto'); "
                f"got backend={backend!r}"
            )
        if collect_trace:
            raise CapabilityError(
                spec.name, "collect_trace", SHARDED, spec.trace_backends
            )

    def _shardable() -> bool:
        return (
            spec.supports_backend(SHARDED)
            and not collect_trace
            and _sharded_host_capable()
        )

    def _auto_shard() -> bool:
        if not _shardable():
            return False
        if shards is not None:
            return True
        from repro.simulator.sharded import available_cpu_count

        return (
            _node_count(graph) >= AUTO_SHARD_THRESHOLD
            and available_cpu_count() >= 2
        )

    is_bulk = isinstance(graph, BulkGraph)
    if is_bulk:
        if not (spec.supports_backend(VECTORIZED) and spec.accepts_bulk):
            # A vectorized engine alone is not enough: the spec must also
            # declare that its entry point consumes CSR inputs natively.
            raise CapabilityError(
                spec.name, "BulkGraph (CSR) inputs", backend, ()
            )
        if backend == SIMULATED:
            raise CapabilityError(
                spec.name,
                "BulkGraph (CSR) inputs",
                SIMULATED,
                tuple(b for b in spec.backends if b != SIMULATED),
            )
        if backend == SHARDED:
            if not spec.supports_backend(SHARDED):
                raise CapabilityError(
                    spec.name, "execution", SHARDED, spec.backends
                )
            if collect_trace:
                raise CapabilityError(
                    spec.name, "collect_trace", SHARDED, spec.trace_backends
                )
            return SHARDED
        if collect_trace and not spec.supports_trace_on(VECTORIZED):
            # CSR inputs pin the bulk engine, which this spec cannot trace.
            raise CapabilityError(
                spec.name, "collect_trace", VECTORIZED, spec.trace_backends
            )
        if backend == AUTO and _auto_shard():
            return SHARDED
        return VECTORIZED
    if backend == AUTO:
        if _auto_shard():
            return SHARDED
        candidates = spec.trace_backends if collect_trace else spec.backends
        if SIMULATED in candidates and VECTORIZED in candidates:
            if _node_count(graph) >= AUTO_VECTORIZE_THRESHOLD:
                return VECTORIZED
            return SIMULATED
        return candidates[0]
    if not spec.supports_backend(backend):
        raise CapabilityError(spec.name, "execution", backend, spec.backends)
    if collect_trace and not spec.supports_trace_on(backend):
        raise CapabilityError(
            spec.name, "collect_trace", backend, spec.trace_backends
        )
    return backend


# ---------------------------------------------------------------------- #
# The solve façade                                                        #
# ---------------------------------------------------------------------- #


def _unit_weights(graph: nx.Graph | BulkGraph) -> dict[Hashable, float]:
    nodes = graph.nodes if isinstance(graph, BulkGraph) else graph.nodes()
    return {node: 1.0 for node in nodes}


def _is_connected(graph: nx.Graph | BulkGraph) -> bool:
    """Connectivity gate for ``requires_connected`` specs (cheap: O(n+m))."""
    if isinstance(graph, BulkGraph):
        from repro.cds.bulk import bulk_is_connected

        return bulk_is_connected(graph)
    return graph.number_of_nodes() > 0 and nx.is_connected(graph)


def solve(
    algorithm: str | AlgorithmSpec,
    graph: nx.Graph | BulkGraph,
    backend: str = AUTO,
    seed: int | None = None,
    **params: Any,
) -> RunReport:
    """Run one registered algorithm and return a normalised report.

    Parameters
    ----------
    algorithm:
        Registry name (see :func:`algorithm_names`) or a spec.
    graph:
        A networkx graph, or a CSR :class:`BulkGraph` for algorithms whose
        spec declares :attr:`~AlgorithmSpec.accepts_bulk`.
    backend:
        ``"auto"`` (default; resolved per :func:`resolve_backend`),
        ``"simulated"``, ``"vectorized"`` or ``"sharded"``.
    seed:
        Seed forwarded to the algorithm (ignored by deterministic ones).
    **params:
        Algorithm-specific parameters (``k=``, ``variant=``, ``weights=``,
        ``collect_trace=``, ``shards=``, ``faults=``, ``repair=``, ...);
        unknown ones raise ``TypeError`` from the underlying entry point.
        ``shards=N`` pins the sharded engine under ``backend="auto"``;
        ``faults=`` requires a spec with
        :attr:`~AlgorithmSpec.supports_faults`.

    Returns
    -------
    RunReport

    Raises
    ------
    CapabilityError
        When the requested backend/capability combination is not supported
        by this algorithm.
    KeyError
        For unknown algorithm names.
    """
    spec = get_spec(algorithm)
    requested_params = dict(params)
    collect_trace = bool(params.get("collect_trace", False))
    shards = params.pop("shards", None)
    if params.get("faults") is not None and not spec.supports_faults:
        raise CapabilityError(spec.name, "fault injection (faults=...)", backend, ())
    if not spec.supports_faults:
        # A falsy faults=/repair= passed generically by sweep code (a truthy
        # faults= was rejected above) must not reach runners without them.
        params.pop("faults", None)
        params.pop("repair", None)
    resolved = resolve_backend(
        spec, graph, backend=backend, collect_trace=collect_trace, shards=shards
    )
    if resolved == SHARDED:
        # Only sharded-capable runners accept the parameter; resolve_backend
        # already rejected shards= for every other spec.
        params["shards"] = shards
    if not spec.supports_trace:
        # A falsy collect_trace passed generically (resolve_backend already
        # rejected a truthy one) must not reach runners that don't take it.
        params.pop("collect_trace", None)
    if spec.requires_connected and not _is_connected(graph):
        raise ValueError(
            f"algorithm {spec.name!r} requires a connected graph (a "
            "disconnected graph has no connected dominating set); restrict "
            "the input to its largest component first"
        )
    if spec.weighted and params.get("weights") is None:
        params["weights"] = _unit_weights(graph)
    start = time.perf_counter()
    payload = spec.runner(graph, seed=seed, backend=resolved, **params)
    elapsed = time.perf_counter() - start
    # Report the *normalized* parameter dict (defaults filled in, values
    # canonicalized, keys sorted): semantically-equal requests -- kwargs
    # order, default-vs-explicit, enum-vs-string -- yield identical params,
    # which is what the service layer's content-addressed cache keys hash.
    # strict=False because solve() pops backend-managed extras (a falsy
    # collect_trace/faults on specs without them) before the runner sees
    # them; the runner itself already rejected genuinely unknown names.
    report_params = normalized_params(spec, requested_params, strict=False)
    report_params.pop("weights", None)
    # Runners may report parameters they resolved themselves (e.g. the
    # pipeline's k = Θ(log Δ) default) so callers never have to introspect
    # algorithm-specific result shapes.
    report_params.update(
        (key, canonical_param_value(value))
        for key, value in payload.pop("resolved_params", {}).items()
    )
    return RunReport(
        algorithm=spec.name,
        backend=resolved,
        params=report_params,
        seed=seed,
        elapsed_s=elapsed,
        **payload,
    )


def run_algorithm(
    graph: nx.Graph | BulkGraph,
    seed: int | None,
    algorithm: str = "kuhn-wattenhofer",
    backend: str = AUTO,
    **params: Any,
) -> frozenset:
    """``(graph, seed) -> dominating set`` adapter over :func:`solve`.

    Module-level (not a closure) so :func:`functools.partial` bindings of
    it are picklable and can be shipped to ``jobs=N`` worker processes by
    :func:`repro.analysis.experiment.compare_algorithms`.
    """
    return solve(algorithm, graph, backend=backend, seed=seed, **params).dominating_set


def comparison_algorithms(
    bulk: bool = False,
    backend: str = AUTO,
    names: Sequence[str] | None = None,
    overrides: Mapping[str, Mapping[str, Any]] | None = None,
) -> "dict[str, Callable[[nx.Graph | BulkGraph, int | None], frozenset]]":
    """Registry-driven ``name -> (graph, seed)`` comparison callables.

    Parameters
    ----------
    bulk:
        The comparison instances are CSR ``BulkGraph`` objects: keep only
        specs that support the vectorized engine and opt into bulk
        comparisons.
    backend:
        Backend forwarded to every callable (default ``"auto"``).
    names:
        Restrict to these registry names (any registered algorithm, even
        ones outside the default comparison set).  Explicitly requesting
        an algorithm that cannot run on bulk instances, or on the
        requested concrete backend, raises :class:`CapabilityError` up
        front.
    overrides:
        Per-algorithm parameter overrides, e.g. ``{"kuhn-wattenhofer":
        {"k": 3}}``.

    When the registry is enumerated (``names=None``), specs that cannot
    satisfy the request are *skipped* rather than raised on: a concrete
    ``backend="vectorized"`` keeps only vectorized-capable specs, exactly
    as ``bulk=True`` keeps only bulk-capable ones.

    All callables are picklable (partials of :func:`run_algorithm`).
    """
    if backend not in DISPATCH_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            + ", ".join(DISPATCH_BACKENDS)
        )
    explicit = names is not None
    if explicit:
        specs = [get_spec(name) for name in names]
    else:
        specs = [
            spec
            for spec in iter_specs(comparison=True)
            if not bulk or spec.in_bulk_comparison
        ]
    algorithms: dict[str, Callable] = {}
    for spec in specs:
        if bulk and not spec.supports_backend(VECTORIZED):
            if explicit:
                raise CapabilityError(spec.name, "BulkGraph (CSR) inputs", None, ())
            continue
        if backend != AUTO and not spec.supports_backend(backend):
            if explicit:
                raise CapabilityError(spec.name, "execution", backend, spec.backends)
            continue
        params = dict(overrides.get(spec.name, {})) if overrides else {}
        algorithms[spec.name] = partial(
            run_algorithm, algorithm=spec.name, backend=backend, **params
        )
    return algorithms


# ---------------------------------------------------------------------- #
# Spec runners (adapters from entry-point results to RunReport payloads)  #
# ---------------------------------------------------------------------- #


def _set_payload(dominating_set: frozenset, raw: Any = None) -> _RunPayload:
    """Payload for centralized algorithms returning a bare set."""
    return {
        "dominating_set": frozenset(dominating_set),
        "objective": float(len(dominating_set)),
        "rounds": None,
        "messages": None,
        "max_message_bits": None,
        "raw": raw if raw is not None else dominating_set,
    }


def _metrics_payload(dominating_set, rounds, metrics, raw) -> _RunPayload:
    """Payload for distributed algorithms reporting ExecutionMetrics."""
    return {
        "dominating_set": frozenset(dominating_set),
        "objective": float(len(dominating_set)),
        "rounds": int(rounds),
        "messages": int(metrics.total_messages),
        "max_message_bits": int(metrics.max_message_bits),
        "raw": raw,
    }


def _run_kuhn_wattenhofer(
    graph,
    seed,
    backend,
    k: int | None = None,
    variant: FractionalVariant = FractionalVariant.UNKNOWN_DELTA,
    rounding_rule: RoundingRule = RoundingRule.LOG,
    collect_trace: bool = False,
    shards: int | None = None,
    faults=None,
    repair: bool = True,
) -> _RunPayload:
    result = kuhn_wattenhofer_dominating_set(
        graph,
        k=k,
        seed=seed,
        variant=FractionalVariant(variant),
        rounding_rule=rounding_rule,
        collect_trace=collect_trace,
        backend=backend,
        shards=shards,
        faults=faults,
        repair=repair,
    )
    return {
        "dominating_set": result.dominating_set,
        "objective": float(result.size),
        "rounds": result.total_rounds,
        "messages": result.total_messages,
        "max_message_bits": result.max_message_bits,
        "resolved_params": {"k": result.k},
        "raw": result,
    }


def _run_weighted_kuhn_wattenhofer(
    graph,
    seed,
    backend,
    weights=None,
    k: int = 2,
    rounding_rule: RoundingRule = RoundingRule.LOG,
    collect_trace: bool = False,
    shards: int | None = None,
) -> _RunPayload:
    result = weighted_kuhn_wattenhofer_dominating_set(
        graph,
        weights,
        k=k,
        seed=seed,
        rounding_rule=rounding_rule,
        collect_trace=collect_trace,
        backend=backend,
        shards=shards,
    )
    messages = (
        result.fractional.metrics.total_messages
        + result.rounding.metrics.total_messages
    )
    bits = max(
        result.fractional.metrics.max_message_bits,
        result.rounding.metrics.max_message_bits,
    )
    return {
        "dominating_set": result.dominating_set,
        "objective": float(result.cost),
        "rounds": result.total_rounds,
        "messages": int(messages),
        "max_message_bits": int(bits),
        "resolved_params": {"k": result.fractional.k},
        "raw": result,
    }


def _run_greedy(graph, seed, backend) -> _RunPayload:
    if backend == VECTORIZED:
        return _set_payload(greedy_dominating_set_bulk(graph))
    return _set_payload(greedy_dominating_set(graph))


def _run_set_cover_greedy(graph, seed, backend) -> _RunPayload:
    if backend == VECTORIZED:
        return _set_payload(greedy_set_cover_dominating_set_bulk(graph))
    return _set_payload(greedy_set_cover_dominating_set(graph))


def _run_lrg(graph, seed, backend, max_phases: int | None = None) -> _RunPayload:
    result = lrg_dominating_set(
        graph, seed=seed, max_phases=max_phases, backend=backend
    )
    return _metrics_payload(result.dominating_set, result.rounds, result.metrics, result)


def _run_wu_li(
    graph,
    seed,
    backend,
    apply_pruning: bool = True,
    ensure_domination: bool = True,
) -> _RunPayload:
    result = wu_li_dominating_set(
        graph,
        apply_pruning=apply_pruning,
        ensure_domination=ensure_domination,
        seed=seed,
        backend=backend,
    )
    return _metrics_payload(result.dominating_set, result.rounds, result.metrics, result)


def _run_central_lp(
    graph,
    seed,
    backend,
    rule: RoundingRule = RoundingRule.LOG,
    lp_method: str = "highs",
    lp_tol: float = 1e-3,
) -> _RunPayload:
    result = central_lp_rounding_dominating_set(
        graph,
        seed=seed,
        rule=rule,
        backend=backend,
        lp_method=lp_method,
        lp_tol=lp_tol,
    )
    # Only the distributed rounding phase has a round count; the LP solve
    # is centralized by construction.
    return _metrics_payload(
        result.dominating_set,
        result.rounding.rounds,
        result.rounding.metrics,
        result,
    )


def _run_mis(graph, seed, backend) -> _RunPayload:
    return _set_payload(maximal_independent_set_dominating_set(graph, seed=seed))


def _run_random_fill(graph, seed, backend) -> _RunPayload:
    return _set_payload(random_dominating_set(graph, seed=seed))


def _run_all_nodes(graph, seed, backend) -> _RunPayload:
    return _set_payload(all_nodes_dominating_set(graph))


def _run_kw_connect(graph, seed, backend, k: int | None = None) -> _RunPayload:
    cds, pipeline = kw_connected_dominating_set(graph, k=k, seed=seed, backend=backend)
    return {
        "dominating_set": cds,
        "objective": float(len(cds)),
        "rounds": pipeline.total_rounds,
        "messages": pipeline.total_messages,
        "max_message_bits": pipeline.max_message_bits,
        "resolved_params": {"k": pipeline.k},
        "raw": (cds, pipeline),
    }


def _run_guha_khuller(graph, seed, backend) -> _RunPayload:
    return _set_payload(
        guha_khuller_connected_dominating_set(graph, backend=backend)
    )


# ---------------------------------------------------------------------- #
# Registrations                                                           #
# ---------------------------------------------------------------------- #


register(
    AlgorithmSpec(
        name="kuhn-wattenhofer",
        summary="The paper's Theorem-6 pipeline: distributed fractional "
        "LP_MDS approximation (Alg. 2/3) + randomized rounding (Alg. 1)",
        backends=(SIMULATED, VECTORIZED, SHARDED),
        runner=_run_kuhn_wattenhofer,
        entry_point=kuhn_wattenhofer_dominating_set,
        accepts_bulk=True,
        trace_backends=(SIMULATED, VECTORIZED),
        supports_faults=True,
        supports_multi_k=True,
        cli_params=("k", "variant"),
    )
)

register(
    AlgorithmSpec(
        name="greedy",
        summary="Centralized greedy (ln Δ reference; bucket-queue CSR twin)",
        backends=(SIMULATED, VECTORIZED),
        runner=_run_greedy,
        entry_point=greedy_dominating_set,
        accepts_bulk=True,
        deterministic=True,
    )
)

register(
    AlgorithmSpec(
        name="set-cover-greedy",
        summary="Greedy set cover on closed neighborhoods (CSR twin)",
        backends=(SIMULATED, VECTORIZED),
        runner=_run_set_cover_greedy,
        entry_point=greedy_set_cover_dominating_set,
        accepts_bulk=True,
        deterministic=True,
    )
)

register(
    AlgorithmSpec(
        name="lrg",
        summary="Jia–Rajaraman–Suel LRG: O(log n log Δ) rounds, "
        "O(log Δ) expected ratio",
        backends=(SIMULATED, VECTORIZED),
        runner=_run_lrg,
        entry_point=lrg_dominating_set,
        accepts_bulk=True,
    )
)

register(
    AlgorithmSpec(
        name="wu-li",
        summary="Wu–Li marking with pruning rules 1-2 (backbone heuristic)",
        backends=(SIMULATED, VECTORIZED),
        runner=_run_wu_li,
        entry_point=wu_li_dominating_set,
        accepts_bulk=True,
        deterministic=True,
    )
)

register(
    AlgorithmSpec(
        name="central-lp",
        summary="Exact (centralized) LP_MDS solve + distributed rounding",
        backends=(SIMULATED, VECTORIZED),
        runner=_run_central_lp,
        entry_point=central_lp_rounding_dominating_set,
        accepts_bulk=True,
        # The exact LP reference is the very cost the CSR path avoids;
        # keep it out of bulk-scale comparison enumerations.
        in_bulk_comparison=False,
    )
)

register(
    AlgorithmSpec(
        name="mis",
        summary="Clustering-by-MIS heuristic (every MIS dominates)",
        backends=(SIMULATED,),
        runner=_run_mis,
        entry_point=maximal_independent_set_dominating_set,
        in_bulk_comparison=False,
    )
)

register(
    AlgorithmSpec(
        name="random-fill",
        summary="Random candidate set + greedy fill (trivial baseline)",
        backends=(SIMULATED,),
        runner=_run_random_fill,
        entry_point=random_dominating_set,
        in_bulk_comparison=False,
    )
)

register(
    AlgorithmSpec(
        name="all-nodes",
        summary="Every node (the trivial upper bound)",
        backends=(SIMULATED,),
        runner=_run_all_nodes,
        entry_point=all_nodes_dominating_set,
        deterministic=True,
        in_comparison=False,
        in_bulk_comparison=False,
    )
)

register(
    AlgorithmSpec(
        name="weighted-kuhn-wattenhofer",
        summary="Weighted pipeline (remark after Theorem 4): cost-scaled "
        "fractional phase + Algorithm 1 rounding",
        backends=(SIMULATED, VECTORIZED, SHARDED),
        runner=_run_weighted_kuhn_wattenhofer,
        entry_point=weighted_kuhn_wattenhofer_dominating_set,
        accepts_bulk=True,
        weighted=True,
        trace_backends=(SIMULATED, VECTORIZED),
        in_comparison=False,
        cli_params=("k",),
    )
)

register(
    AlgorithmSpec(
        name="kw-connect",
        summary="Kuhn–Wattenhofer pipeline + Voronoi/Kruskal connectification "
        "(connected dominating set)",
        backends=(SIMULATED, VECTORIZED),
        runner=_run_kw_connect,
        entry_point=kw_connected_dominating_set,
        accepts_bulk=True,
        produces_cds=True,
        requires_connected=True,
        in_comparison=False,
        in_bulk_comparison=False,
        cli_params=("k",),
    )
)

register(
    AlgorithmSpec(
        name="guha-khuller",
        summary="Guha–Khuller centralized connected dominating set greedy "
        "(bucket-queue CSR twin)",
        backends=(SIMULATED, VECTORIZED),
        runner=_run_guha_khuller,
        entry_point=guha_khuller_connected_dominating_set,
        accepts_bulk=True,
        produces_cds=True,
        deterministic=True,
        requires_connected=True,
        in_comparison=False,
        in_bulk_comparison=False,
    )
)
