"""Greedy set cover -- the generalisation underlying greedy dominating set.

The MDS problem is the special case of minimum set cover in which the
universe is V and the available sets are the closed neighbourhoods N_i.
Several components reuse the general set cover form:

* the exact branch-and-bound solver reduces sub-problems to partial covers,
* the quality analysis reports the classical H_s harmonic bound, and
* tests cross-check that ``greedy_dominating_set`` equals
  ``greedy_set_cover`` applied to closed neighbourhoods.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.graphs.utils import closed_neighborhoods


def greedy_set_cover(
    universe: Iterable[Hashable],
    sets: Mapping[Hashable, frozenset],
) -> list[Hashable]:
    """Greedy set cover: repeatedly take the set covering most new elements.

    Parameters
    ----------
    universe:
        The elements that must be covered.
    sets:
        Mapping from set identifier to the elements it contains.

    Returns
    -------
    list
        Identifiers of the chosen sets, in pick order.  Ties are broken by
        set identifier for determinism.

    Raises
    ------
    ValueError
        If the union of all sets does not cover the universe.
    """
    remaining = set(universe)
    covered_by_all = set()
    for members in sets.values():
        covered_by_all |= members
    if not remaining <= covered_by_all:
        missing = remaining - covered_by_all
        raise ValueError(f"universe cannot be covered; missing elements: {sorted(missing)[:5]}")

    chosen: list[Hashable] = []
    while remaining:
        best_id = None
        best_gain = 0
        for set_id in sorted(sets):
            gain = len(sets[set_id] & remaining)
            if gain > best_gain:
                best_gain = gain
                best_id = set_id
        chosen.append(best_id)
        remaining -= sets[best_id]
    return chosen


def greedy_set_cover_dominating_set(graph: nx.Graph) -> frozenset:
    """Dominating set obtained by running set cover greedy on N_i sets."""
    neighborhoods = {
        node: frozenset(members) for node, members in closed_neighborhoods(graph).items()
    }
    return frozenset(greedy_set_cover(graph.nodes(), neighborhoods))


def harmonic_number(s: int) -> float:
    """H_s = Σ_{i=1..s} 1/i, the classical greedy set cover bound factor."""
    if s < 0:
        raise ValueError("s must be non-negative")
    return float(sum(1.0 / i for i in range(1, s + 1)))


def greedy_guarantee(graph: nx.Graph) -> float:
    """The greedy approximation guarantee H_{Δ+1} ≈ ln Δ for a graph."""
    if graph.number_of_nodes() == 0:
        raise ValueError("graph has no nodes")
    max_degree = max(degree for _, degree in graph.degree())
    return harmonic_number(max_degree + 1)
