"""The Wu–Li marking algorithm (DialM 1999).

The paper's related-work section cites Wu & Li's constant-round *connected*
dominating set algorithm as an example of a fast distributed algorithm
without a non-trivial approximation guarantee.  The algorithm is strikingly
simple:

1. every node learns its neighbours' neighbour lists (2 rounds), and
2. a node *marks* itself iff it has two neighbours that are not adjacent.

For a connected graph that is not complete, the marked nodes form a
connected dominating set.  The optional pruning rules 1 and 2 from the same
paper remove marked nodes whose closed neighbourhood is subsumed by a
neighbouring marked node (rule 1) or by two connected marked neighbours
(rule 2), using node ids to break ties.

Because the guarantee only holds for connected, non-complete graphs, the
wrapper exposes ``ensure_domination``: when enabled, any node left
undominated (complete components, isolated nodes) simply adds itself, which
keeps the output a valid dominating set on arbitrary graphs at the cost of
deviating from the original algorithm on those degenerate components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import networkx as nx

from repro.core.vectorized import (
    SIMULATED,
    VECTORIZED,
    resolve_bulk_input,
    validate_backend,
)
from repro.domset.validation import uncovered_nodes
from repro.graphs.utils import validate_simple_graph
from repro.simulator.bulk import BulkGraph
from repro.simulator.metrics import ExecutionMetrics
from repro.simulator.network import Network
from repro.simulator.node import NodeContext
from repro.simulator.runtime import SynchronousRunner
from repro.simulator.script import GeneratorNodeProgram


@dataclass(frozen=True)
class WuLiResult:
    """Output of one Wu–Li execution.

    Attributes
    ----------
    dominating_set:
        The final (possibly pruned, possibly completed) set.
    marked:
        Nodes marked by the basic rule, before pruning/completion.
    rounds:
        Synchronous rounds used.
    metrics:
        Message/round metrics.
    """

    dominating_set: frozenset
    marked: frozenset
    rounds: int
    metrics: ExecutionMetrics

    @property
    def size(self) -> int:
        """|DS| of the final set."""
        return len(self.dominating_set)


class WuLiProgram(GeneratorNodeProgram):
    """Per-node program implementing Wu–Li marking with optional pruning."""

    def __init__(self, apply_pruning: bool = True) -> None:
        super().__init__()
        self.apply_pruning = apply_pruning
        self.marked = False
        self.final_member = False

    def run(self, ctx: NodeContext):
        # Round 1: exchange neighbour lists so every node knows its 2-hop
        # topology (open neighbour lists are O(Δ log n) bits -- Wu-Li is not
        # a small-message algorithm, unlike Kuhn-Wattenhofer).
        inbox = yield ctx.send_all(list(ctx.neighbors), tag="neighbor-list")
        neighbor_lists = {
            sender: frozenset(payload)
            for sender, payload in self.inbox_by_sender(inbox).items()
        }

        # Marking rule: marked iff two neighbours are not adjacent.
        self.marked = False
        neighbors = ctx.neighbors
        for index, u in enumerate(neighbors):
            for v in neighbors[index + 1 :]:
                if v not in neighbor_lists.get(u, frozenset()):
                    self.marked = True
                    break
            if self.marked:
                break

        # Round 2: announce marking so the pruning rules can be evaluated.
        inbox = yield ctx.send_all(self.marked, tag="marked")
        neighbor_marked = self.inbox_by_sender(inbox)

        self.final_member = self.marked
        if self.apply_pruning and self.marked:
            marked_neighbors = sorted(
                neighbor
                for neighbor, is_marked in neighbor_marked.items()
                if is_marked
            )
            my_closed = frozenset((ctx.node_id, *ctx.neighbors))

            # Rule 1: unmark if a single marked neighbour with a higher id
            # covers the whole closed neighbourhood.
            for neighbor in marked_neighbors:
                if neighbor <= ctx.node_id:
                    continue
                neighbor_closed = neighbor_lists[neighbor] | {neighbor}
                if my_closed <= neighbor_closed:
                    self.final_member = False
                    break

            # Rule 2: unmark if two *adjacent* marked neighbours with higher
            # ids jointly cover the closed neighbourhood.
            if self.final_member:
                for index, u in enumerate(marked_neighbors):
                    if u <= ctx.node_id:
                        continue
                    for v in marked_neighbors[index + 1 :]:
                        if v <= ctx.node_id:
                            continue
                        if v not in neighbor_lists[u]:
                            continue
                        joint = (
                            neighbor_lists[u] | {u} | neighbor_lists[v] | {v}
                        )
                        if my_closed <= joint:
                            self.final_member = False
                            break
                    if not self.final_member:
                        break

        self._result = self.final_member
        return self.final_member


def wu_li_dominating_set(
    graph: nx.Graph,
    apply_pruning: bool = True,
    ensure_domination: bool = True,
    seed: int | None = None,
    backend: str = SIMULATED,
    _bulk: BulkGraph | None = None,
) -> WuLiResult:
    """Run the Wu–Li marking algorithm.

    Parameters
    ----------
    graph:
        The network graph.  May also be a CSR
        :class:`~repro.simulator.bulk.BulkGraph`, in which case
        ``backend="vectorized"`` is required.
    apply_pruning:
        Apply pruning rules 1 and 2 after marking.
    ensure_domination:
        Add any node left undominated to the output set.  The original
        algorithm guarantees domination only for connected non-complete
        graphs; this flag extends validity to arbitrary inputs (documented
        deviation, disabled for faithfulness tests).
    seed:
        Seed for per-node randomness (unused -- the algorithm is
        deterministic -- but accepted for interface symmetry).
    backend:
        ``"simulated"`` drives the per-node message-passing programs;
        ``"vectorized"`` computes the identical marking and pruning
        decisions on the CSR (:mod:`repro.baselines.bulk_wu_li`).

    Returns
    -------
    WuLiResult
    """
    validate_backend(backend)
    _bulk = resolve_bulk_input(graph, backend, _bulk)
    if _bulk is not graph:
        validate_simple_graph(graph)

    if backend == VECTORIZED:
        from repro.baselines.bulk_wu_li import run_wu_li_bulk

        bulk = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
        final, marked_flags, metrics = run_wu_li_bulk(
            bulk, apply_pruning=apply_pruning
        )
        if ensure_domination:
            final = final | ~(final | bulk.neighbor_any(final))
        return WuLiResult(
            dominating_set=frozenset(
                node for node, selected in zip(bulk.nodes, final) if selected
            ),
            marked=frozenset(
                node for node, flag in zip(bulk.nodes, marked_flags) if flag
            ),
            rounds=metrics.round_count,
            metrics=metrics,
        )

    def factory(node_id: int, network: Network) -> WuLiProgram:
        return WuLiProgram(apply_pruning=apply_pruning)

    network = Network(graph, factory, seed=seed)
    runner = SynchronousRunner(network, max_rounds=10)
    execution = runner.run()
    if not execution.terminated:
        raise RuntimeError("Wu-Li did not terminate within its round budget")

    members = {node for node, selected in execution.results.items() if selected}
    marked = frozenset(
        node
        for node in network.node_ids
        if getattr(network.program(node), "marked", False)
    )
    if ensure_domination:
        members |= uncovered_nodes(graph, members)
    return WuLiResult(
        dominating_set=frozenset(members),
        marked=marked,
        rounds=execution.rounds,
        metrics=execution.metrics,
    )
