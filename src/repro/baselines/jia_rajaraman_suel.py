"""The Jia–Rajaraman–Suel LRG algorithm (PODC 2001) -- the paper's comparator.

Before Kuhn–Wattenhofer, the best distributed MDS approximation was the
*Local Randomized Greedy* (LRG) algorithm of Jia, Rajaraman and Suel: an
O(log Δ) expected approximation that terminates in O(log n · log Δ) rounds
with high probability.  The Kuhn–Wattenhofer paper positions itself against
LRG (better round complexity, worse approximation ratio for constant k), so
reproducing the comparison requires an implementation of LRG on the same
simulator.

The implementation below follows the published algorithm's structure:

repeat until every node is covered:
  1. every node computes its *span* d(v) (number of uncovered nodes in its
     closed neighbourhood) and learns the maximum span d_max²(v) within
     distance 2 (two rounds);
  2. v becomes a *candidate* when its span, rounded up to the next power of
     two, is at least d_max²(v) -- i.e. v is within a factor 2 of the local
     maximum ("locally greedy");
  3. every uncovered node u counts the candidates covering it, c(u), and
     reports that count to its neighbours (one round);
  4. every candidate v computes the *median* of c(u) over the uncovered
     nodes u it covers, and joins the dominating set with probability
     1 / median (one round to announce membership);
  5. coverage is updated (one round).

Each phase takes a constant number of rounds, and the number of phases is
O(log n · log Δ) with high probability.  A hard phase cap (default
``4·(log₂ n + 2)·(log₂ Δ + 2)``) backstops the w.h.p. bound; reaching the
cap makes the remaining uncovered nodes join directly, which preserves
correctness (the output is always a dominating set) at a negligible cost in
size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

import networkx as nx

from repro.core.vectorized import (
    SIMULATED,
    VECTORIZED,
    resolve_bulk_input,
    validate_backend,
)
from repro.graphs.utils import max_degree, validate_simple_graph
from repro.simulator.bulk import BulkGraph
from repro.simulator.metrics import ExecutionMetrics
from repro.simulator.network import Network
from repro.simulator.node import NodeContext
from repro.simulator.runtime import SynchronousRunner
from repro.simulator.script import GeneratorNodeProgram


@dataclass(frozen=True)
class LRGResult:
    """Output of one LRG execution.

    Attributes
    ----------
    dominating_set:
        The computed dominating set.
    rounds:
        Synchronous rounds used.
    phases:
        Number of LRG phases executed.
    metrics:
        Message/round metrics.
    """

    dominating_set: frozenset
    rounds: int
    phases: int
    metrics: ExecutionMetrics

    @property
    def size(self) -> int:
        """|DS| of the computed set."""
        return len(self.dominating_set)


def _next_power_of_two(value: int) -> int:
    """Smallest power of two that is ≥ value (1 for value ≤ 1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def _median_support(values: list[int]) -> float:
    """Median of a non-empty list of support counts.

    Value-identical to ``statistics.median`` (middle element when odd,
    mean of the two middle elements when even) but without its
    type-dispatch and module-call overhead -- this sits in the innermost
    per-candidate loop of every LRG phase, where the list is usually tiny.
    """
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


class LRGProgram(GeneratorNodeProgram):
    """Per-node program implementing the LRG algorithm.

    Parameters
    ----------
    max_phases:
        Hard cap on the number of phases; uncovered nodes join directly when
        it is reached (correctness backstop for the w.h.p. round bound).
    """

    def __init__(self, max_phases: int) -> None:
        super().__init__()
        if max_phases < 1:
            raise ValueError("max_phases must be at least 1")
        self.max_phases = max_phases
        self.in_set = False
        self.covered = False
        self.phases_executed = 0

    def run(self, ctx: NodeContext):
        self.in_set = False
        self.covered = False

        for phase in range(self.max_phases):
            self.phases_executed = phase + 1

            # Step 1a: exchange coverage status so spans can be computed.
            # A neighbour that terminated early sends nothing; termination
            # only happens once a node's whole closed neighbourhood is
            # covered, so a missing message is read as "covered".
            inbox = yield ctx.send_all(self.covered, tag="covered")
            received_covered = self.inbox_by_sender(inbox)
            neighbor_covered = {
                neighbor: received_covered.get(neighbor, True)
                for neighbor in ctx.neighbors
            }
            uncovered_neighbors = {
                neighbor
                for neighbor, is_covered in neighbor_covered.items()
                if not is_covered
            }
            span = len(uncovered_neighbors) + (0 if self.covered else 1)

            # Step 1b/1c: learn the maximum span within distance 2.
            inbox = yield ctx.send_all(span, tag="span")
            neighbor_spans = self.inbox_by_sender(inbox)
            max_span_1 = max([span, *neighbor_spans.values()])

            inbox = yield ctx.send_all(max_span_1, tag="span-max1")
            neighbor_max_1 = self.inbox_by_sender(inbox)
            max_span_2 = max([max_span_1, *neighbor_max_1.values()])

            # Step 2: candidate selection ("locally greedy" nodes).
            is_candidate = (
                span > 0 and not self.in_set and _next_power_of_two(span) >= max_span_2
            )

            # Step 3: uncovered nodes count the candidates covering them.
            inbox = yield ctx.send_all(is_candidate, tag="candidate")
            neighbor_candidate = self.inbox_by_sender(inbox)
            candidate_cover = sum(1 for flag in neighbor_candidate.values() if flag)
            candidate_cover += 1 if is_candidate else 0
            own_count = candidate_cover if not self.covered else 0

            inbox = yield ctx.send_all(own_count, tag="candidate-count")
            neighbor_counts = self.inbox_by_sender(inbox)

            # Step 4: candidates join with probability 1 / median support.
            joined_now = False
            if is_candidate:
                support_counts = [
                    count
                    for neighbor, count in neighbor_counts.items()
                    if neighbor in uncovered_neighbors and count > 0
                ]
                if not self.covered and own_count > 0:
                    support_counts.append(own_count)
                if support_counts:
                    median_support = _median_support(support_counts)
                    probability = min(1.0, 1.0 / max(median_support, 1.0))
                    joined_now = ctx.rng.random() < probability
            if joined_now:
                self.in_set = True

            # Step 5: update coverage.
            inbox = yield ctx.send_all(self.in_set, tag="in-set")
            neighbor_membership = self.inbox_by_sender(inbox)
            if self.in_set or any(neighbor_membership.values()):
                self.covered = True

            # Local termination: once a node and its whole closed
            # neighbourhood are covered, the node can no longer become a
            # candidate (its span is 0) and no neighbour needs its messages
            # any more -- missing messages are interpreted as "covered,
            # not a candidate", which is exactly this node's true state.
            if self.covered and all(neighbor_covered.values()):
                break

        # Backstop: any still-uncovered node joins directly.
        if not self.covered:
            self.in_set = True

        self._result = self.in_set
        return self.in_set


def lrg_dominating_set(
    graph: nx.Graph,
    seed: int | None = None,
    max_phases: int | None = None,
    backend: str = SIMULATED,
    _bulk: BulkGraph | None = None,
) -> LRGResult:
    """Run the Jia–Rajaraman–Suel LRG algorithm on a graph.

    Parameters
    ----------
    graph:
        The network graph.  May also be a CSR
        :class:`~repro.simulator.bulk.BulkGraph`, in which case
        ``backend="vectorized"`` is required.
    seed:
        Seed for the per-node coin flips.
    max_phases:
        Phase cap; defaults to ``4·(⌈log₂ n⌉ + 2)·(⌈log₂(Δ+1)⌉ + 2)``, a
        generous multiple of the w.h.p. phase bound.
    backend:
        ``"simulated"`` drives the per-node message-passing programs;
        ``"vectorized"`` runs the bulk array engine
        (:mod:`repro.baselines.bulk_lrg`).  Both draw each node's coins
        from the same seeded streams, so for a given ``seed`` they select
        the same dominating set in the same number of phases.

    Returns
    -------
    LRGResult
    """
    validate_backend(backend)
    _bulk = resolve_bulk_input(graph, backend, _bulk)
    if _bulk is not graph:
        validate_simple_graph(graph)
    n = graph.n if isinstance(graph, BulkGraph) else graph.number_of_nodes()
    delta = max_degree(graph)
    if max_phases is None:
        max_phases = 4 * (math.ceil(math.log2(max(n, 2))) + 2) * (
            math.ceil(math.log2(delta + 2)) + 2
        )

    if backend == VECTORIZED:
        from repro.baselines.bulk_lrg import run_lrg_bulk

        bulk = _bulk if _bulk is not None else BulkGraph.from_graph(graph)
        in_set, phases, metrics = run_lrg_bulk(bulk, seed=seed, max_phases=max_phases)
        return LRGResult(
            dominating_set=frozenset(
                node for node, joined in zip(bulk.nodes, in_set) if joined
            ),
            rounds=metrics.round_count,
            phases=phases,
            metrics=metrics,
        )

    def factory(node_id: int, network: Network) -> LRGProgram:
        return LRGProgram(max_phases=max_phases)

    network = Network(graph, factory, seed=seed)
    runner = SynchronousRunner(network, max_rounds=7 * max_phases + 10)
    execution = runner.run()
    if not execution.terminated:
        raise RuntimeError("LRG did not terminate within its round budget")

    dominating_set = frozenset(
        node for node, joined in execution.results.items() if joined
    )
    phases = max(
        getattr(network.program(node), "phases_executed", 0)
        for node in network.node_ids
    )
    return LRGResult(
        dominating_set=dominating_set,
        rounds=execution.rounds,
        phases=phases,
        metrics=execution.metrics,
    )
