"""Vectorized (bulk-synchronous) Jia–Rajaraman–Suel LRG.

The reference implementation in :mod:`repro.baselines.jia_rajaraman_suel`
drives one generator program per node through the message-passing simulator:
six broadcast exchanges per phase, O(log n · log Δ) phases w.h.p.  That is
the right fidelity for trace-level experiments but caps the paper's
comparison benchmarks at a few thousand nodes.

This module re-executes the *same algorithm* as whole-graph array
operations over a CSR :class:`~repro.simulator.bulk.BulkGraph`, one numpy
pass per phase.  Equivalence with the simulator is engineered, not
approximate:

* every per-phase quantity (spans, distance-2 span maxima, candidate
  flags, candidate-cover counts, median supports) is computed from the
  same state the node programs hold, with the distance-2 maxima masked to
  still-running senders exactly as terminated programs stop broadcasting;
* each candidate draws its joining coin from
  ``random.Random(f"{seed}:{node}")`` -- the stream
  :class:`~repro.simulator.network.Network` hands that node -- and a
  node's draws happen in the same phases, so the two backends flip
  identical coins and select identical dominating sets;
* per-phase termination follows the program's local rule (covered, and
  every neighbour covered at phase start), which makes the phase counts,
  the modeled round layout and the per-node message totals match the
  simulated execution exactly.
"""

from __future__ import annotations

import random

import numpy as np

from repro.simulator.bulk import (
    BOOL_PAYLOAD_BITS,
    BulkGraph,
    BulkMetricsBuilder,
    int_payload_bits,
)


def _next_power_of_two_array(values: np.ndarray) -> np.ndarray:
    """Vectorized ``_next_power_of_two``: 1 for values ≤ 1, else 2^⌈log₂ v⌉.

    ``numpy.frexp`` on ``value - 1`` yields the exact bit length for
    integers below 2⁵³, mirroring ``(value - 1).bit_length()``.
    """
    values = np.asarray(values, dtype=np.int64)
    _, exponent = np.frexp(np.maximum(values - 1, 0).astype(np.float64))
    return np.where(values <= 1, 1, np.int64(1) << exponent)


def _segment_medians(
    rows: np.ndarray, values: np.ndarray, segment_count: int
) -> np.ndarray:
    """Median of ``values`` per segment, matching Python median semantics.

    Every segment must be non-empty.  Odd-length segments return the middle
    element; even-length segments return the mean of the two middle
    elements -- the same value ``statistics.median`` (and the reference's
    ``_median_support``) produces, so the derived join probabilities are
    bitwise identical.
    """
    order = np.lexsort((values, rows))
    sorted_values = values[order].astype(np.float64)
    counts = np.bincount(rows, minlength=segment_count)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    middle = starts + counts // 2
    odd = counts % 2 == 1
    medians = sorted_values[middle].copy()
    even = ~odd
    medians[even] = (sorted_values[middle[even] - 1] + sorted_values[middle[even]]) / 2
    return medians


def run_lrg_bulk(
    bulk: BulkGraph, seed: int | None, max_phases: int
) -> tuple[np.ndarray, int, "ExecutionMetrics"]:
    """Execute LRG on a CSR graph; returns (in_set flags, phases, metrics).

    Parameters
    ----------
    bulk:
        The communication graph.
    seed:
        Experiment seed; candidate ``v`` draws its phase coins from
        ``Random(f"{seed}:{v}")``, the simulator-identical stream.
    max_phases:
        Hard phase cap; uncovered nodes join directly when it is reached.
    """
    if max_phases < 1:
        raise ValueError("max_phases must be at least 1")
    n = bulk.n
    in_set = np.zeros(n, dtype=bool)
    covered = np.zeros(n, dtype=bool)
    running = np.ones(n, dtype=bool)
    phases_executed = np.zeros(n, dtype=np.int64)
    metrics = BulkMetricsBuilder(bulk.degrees)
    # Lazily-created per-node coin streams; a node that never becomes a
    # candidate never allocates (or advances) its stream, exactly like the
    # per-node program.
    streams: dict[int, random.Random] = {}

    def coin(position: int) -> float:
        stream = streams.get(position)
        if stream is None:
            node = bulk.nodes[position]
            stream = random.Random(f"{seed}:{node}" if seed is not None else None)
            streams[position] = stream
        return stream.random()

    phases = 0
    while running.any() and phases < max_phases:
        phases += 1
        phases_executed[running] = phases

        # Step 1a: exchange coverage; spans over start-of-phase coverage.
        # Terminated neighbours send nothing and are read as "covered",
        # which is their true state, so the full state array is exact.
        metrics.record_exchange(BOOL_PAYLOAD_BITS, senders=running)
        uncovered = ~covered
        uncovered_neighbor_count = bulk.neighbor_count(uncovered)
        span = uncovered_neighbor_count + uncovered

        # Steps 1b/1c: distance-2 span maximum.  Terminated nodes stop
        # broadcasting, so their (stale-looking but well-defined) values
        # must not contribute -- mask the maxima to running senders.
        metrics.record_exchange(int_payload_bits(span), senders=running)
        max_span_1 = bulk.closed_max(span, senders=running)
        metrics.record_exchange(int_payload_bits(max_span_1), senders=running)
        max_span_2 = bulk.closed_max(max_span_1, senders=running)

        # Step 2: candidates are the "locally greedy" nodes.
        is_candidate = (
            (span > 0) & ~in_set & (_next_power_of_two_array(span) >= max_span_2)
        )

        # Step 3: uncovered nodes count the candidates covering them.
        metrics.record_exchange(BOOL_PAYLOAD_BITS, senders=running)
        candidate_cover = bulk.neighbor_count(is_candidate) + is_candidate
        own_count = np.where(uncovered, candidate_cover, 0).astype(np.int64)
        metrics.record_exchange(int_payload_bits(own_count), senders=running)

        # Step 4: each candidate joins with probability 1 / median support,
        # the median taken over the positive counts of the uncovered nodes
        # in its closed neighbourhood.  Every uncovered node adjacent to a
        # candidate has a positive count (the candidate itself covers it),
        # so the support multiset is exactly {own_count[u] : u ∈ N[v],
        # u uncovered} -- non-empty for every candidate (span > 0).
        candidates = np.flatnonzero(is_candidate)
        joined_now = np.zeros(n, dtype=bool)
        if candidates.size:
            degrees = bulk.degrees[candidates]
            segment = np.concatenate(
                [
                    np.repeat(np.arange(candidates.size, dtype=np.int64), degrees),
                    np.arange(candidates.size, dtype=np.int64),
                ]
            )
            starts = bulk.indptr[candidates]
            offsets = np.concatenate(([0], np.cumsum(degrees)))
            flat = np.arange(int(degrees.sum()), dtype=np.int64)
            block = np.repeat(np.arange(candidates.size, dtype=np.int64), degrees)
            neighbor_entries = bulk.col[starts[block] + flat - offsets[block]]
            members = np.concatenate([neighbor_entries, candidates])
            keep = uncovered[members]
            medians = _segment_medians(
                segment[keep], own_count[members][keep], candidates.size
            )
            probability = np.minimum(1.0, 1.0 / np.maximum(medians, 1.0))
            draws = np.fromiter(
                (coin(int(position)) for position in candidates),
                dtype=np.float64,
                count=candidates.size,
            )
            joined_now[candidates] = draws < probability
        in_set |= joined_now

        # Step 5: update coverage; apply the local termination rule (self
        # covered and every neighbour covered at phase start).
        metrics.record_exchange(BOOL_PAYLOAD_BITS, senders=running)
        covered = covered | in_set | bulk.neighbor_any(in_set)
        running &= ~(covered & (uncovered_neighbor_count == 0))

    # Backstop: any still-uncovered node joins directly.
    in_set = in_set | ~covered
    return in_set, int(phases_executed.max(initial=0)), metrics.build(bulk.nodes)
