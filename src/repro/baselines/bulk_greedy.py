"""CSR-native greedy dominating set (bucket-queue).

The classical greedy baseline in :mod:`repro.baselines.greedy` maintains
Python sets per step; its per-pick cost is dominated by closed-neighbourhood
set intersections, which caps it at a few thousand nodes.  This variant
keeps the reference point available at the ``"xlarge"`` scale: spans live in
an integer array, span updates are CSR gathers + one ``bincount``, and the
"pick the maximum span" step uses a bucket queue (one lazy min-heap per span
value, so ties still break by node id).

Total work is O(n + m) array element updates plus O((n + m) log n) for the
heap traffic -- in practice a few milliseconds where the set-based greedy
takes minutes.  The output is *identical* to
:func:`repro.baselines.greedy.greedy_dominating_set`: same selection rule
(maximum current span, ties to the smallest node id), hence the same set.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

import networkx as nx
import numpy as np

from repro.simulator.bulk import BulkGraph


def _gather_rows(bulk: BulkGraph, rows: np.ndarray) -> np.ndarray:
    """Concatenate the CSR adjacency rows of ``rows`` (multi-slice gather)."""
    counts = bulk.degrees[rows]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    block = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
    local = np.arange(total, dtype=np.int64) - offsets[block]
    return bulk.col[bulk.indptr[rows][block] + local]


def greedy_dominating_set_bulk(graph: BulkGraph | nx.Graph) -> frozenset:
    """Greedy dominating set on a CSR graph with a bucket queue.

    Parameters
    ----------
    graph:
        A :class:`~repro.simulator.bulk.BulkGraph`; a networkx graph is
        accepted for convenience and converted.

    Returns
    -------
    frozenset
        The same dominating set ``greedy_dominating_set`` selects (maximum
        span first, ties broken by node id).
    """
    bulk = graph if isinstance(graph, BulkGraph) else BulkGraph.from_graph(graph)
    n = bulk.n
    spans = (bulk.degrees + 1).astype(np.int64)
    covered = np.zeros(n, dtype=bool)
    chosen = np.zeros(n, dtype=bool)

    # One lazy min-heap of node indices per span value.  Appending ids in
    # ascending order yields already-valid heaps without heapify.
    buckets: defaultdict[int, list[int]] = defaultdict(list)
    for node in range(n):
        buckets[int(spans[node])].append(node)

    picks: list[int] = []
    remaining = n
    cursor = int(spans.max())
    while remaining > 0:
        while cursor > 0 and not buckets.get(cursor):
            cursor -= 1
        if cursor <= 0:
            # Every remaining entry covers nothing new, yet uncovered nodes
            # remain -- impossible for a correct implementation.
            raise RuntimeError("greedy ran out of useful nodes; internal error")
        node = heapq.heappop(buckets[cursor])
        if chosen[node]:
            continue
        span = int(spans[node])
        if span != cursor:
            # Stale entry: re-file at the true span and retry.
            if span > 0:
                heapq.heappush(buckets[span], node)
            continue

        chosen[node] = True
        picks.append(node)
        closed = np.append(bulk.col[bulk.indptr[node] : bulk.indptr[node + 1]], node)
        newly = closed[~covered[closed]]
        covered[newly] = True
        remaining -= int(newly.size)

        # Every dominator of a newly covered node loses one unit of span.
        decrements = np.bincount(
            np.concatenate((_gather_rows(bulk, newly), newly)), minlength=n
        )
        changed = np.flatnonzero(decrements)
        spans[changed] -= decrements[changed]
        for moved in changed:
            if not chosen[moved] and spans[moved] > 0:
                heapq.heappush(buckets[int(spans[moved])], int(moved))

    return frozenset(bulk.nodes[index] for index in picks)
