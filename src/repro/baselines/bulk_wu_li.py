"""Vectorized (CSR) Wu–Li marking with pruning rules 1 and 2.

The reference implementation in :mod:`repro.baselines.wu_li` ships every
node its neighbours' neighbour lists through the simulator -- O(Σ δ_i²)
Python payload objects for the 2-hop exchange alone.  This module computes
the identical marking and pruning decisions directly on a CSR
:class:`~repro.simulator.bulk.BulkGraph` with a hybrid strategy:

* a vectorized degree prefilter settles most markings without touching any
  2-hop structure: if some neighbour of ``v`` has degree < δ(v) − 1 it
  cannot be adjacent to all other neighbours of ``v``, so ``v`` is marked
  immediately (in sparse random graphs this resolves nearly every node);
* survivors fall back to adjacency-set scans with early exit -- the first
  non-adjacent neighbour pair proves the marking, so non-clique
  neighbourhoods settle after a handful of O(1) membership tests;
* pruning rules 1 and 2 are existence checks over marked higher-id
  neighbours, run as C-speed ``frozenset`` subset tests behind size
  prefilters (a closed neighbourhood can only be covered by closed
  neighbourhoods that are large enough).

Both rules only read the marking flags (not the pruned output), so the
evaluation order cannot change the result; the output is identical to the
simulated :class:`~repro.baselines.wu_li.WuLiProgram` on every input.
"""

from __future__ import annotations

import numpy as np

from repro.simulator.bulk import (
    BOOL_PAYLOAD_BITS,
    BulkGraph,
    BulkMetricsBuilder,
)
from repro.simulator.message import payload_size_bits


def _adjacency_sets(bulk: BulkGraph) -> list[frozenset]:
    """Open-neighbourhood position sets, one per node (O(n + m) build)."""
    col = bulk.col.tolist()
    indptr = bulk.indptr
    return [
        frozenset(col[indptr[position] : indptr[position + 1]])
        for position in range(bulk.n)
    ]


def compute_marked_bulk(
    bulk: BulkGraph, adjacency: list[frozenset] | None = None
) -> np.ndarray:
    """Wu–Li marking flags: marked iff two neighbours are not adjacent."""
    degrees = bulk.degrees
    eligible = degrees >= 2
    marked = np.zeros(bulk.n, dtype=bool)
    if not eligible.any():
        return marked

    # Prefilter: a neighbour of degree < δ(v) − 1 cannot cover the rest of
    # N(v), so the neighbourhood is certainly not a clique.
    min_neighbor_degree = np.full(bulk.n, np.iinfo(np.int64).max, dtype=np.int64)
    if bulk.col.size:
        np.minimum.at(min_neighbor_degree, bulk.row, degrees[bulk.col])
    marked = eligible & (min_neighbor_degree < degrees - 1)

    # Exact check for the survivors: scan neighbour pairs until one
    # non-adjacent pair is found (usually the first).
    if adjacency is None:
        adjacency = _adjacency_sets(bulk)
    col = bulk.col
    indptr = bulk.indptr
    for position in np.flatnonzero(eligible & ~marked):
        neighbors = col[indptr[position] : indptr[position + 1]].tolist()
        found = False
        for index, first in enumerate(neighbors):
            first_adjacency = adjacency[first]
            for second in neighbors[index + 1 :]:
                if second not in first_adjacency:
                    found = True
                    break
            if found:
                break
        marked[position] = found
    return marked


def apply_pruning_bulk(
    bulk: BulkGraph,
    marked: np.ndarray,
    adjacency: list[frozenset] | None = None,
) -> np.ndarray:
    """Pruning rules 1 and 2 applied to the marked flags (returns new flags).

    Rule 1 unmarks ``v`` when a single marked neighbour with a higher id
    covers its closed neighbourhood; rule 2 when two *adjacent* marked
    higher-id neighbours jointly do.  Ids compare by CSR position, which
    equals identifier order because ``BulkGraph`` stores nodes sorted.
    """
    if adjacency is None:
        adjacency = _adjacency_sets(bulk)
    degrees = bulk.degrees
    col = bulk.col
    indptr = bulk.indptr
    final = marked.copy()
    for position in np.flatnonzero(marked):
        neighbors = col[indptr[position] : indptr[position + 1]]
        marked_above = neighbors[marked[neighbors] & (neighbors > position)]
        if marked_above.size == 0:
            continue
        closed = adjacency[position] | {position}
        degree = int(degrees[position])

        # Rule 1: |closed(u)| = δ(u) + 1 must reach |closed(v)| = δ(v) + 1
        # for the subset to be possible -- filter the candidates first.
        pruned = False
        for candidate in marked_above[degrees[marked_above] >= degree].tolist():
            if closed <= adjacency[candidate] | {candidate}:
                pruned = True
                break

        if not pruned and marked_above.size >= 2:
            candidates = marked_above.tolist()
            for index, first in enumerate(candidates):
                first_adjacency = adjacency[first]
                first_degree = int(degrees[first])
                for second in candidates[index + 1 :]:
                    # Must be adjacent, and the joint closed neighbourhood
                    # (which overlaps in at least {u, w}) must be large
                    # enough: δ(u) + δ(w) ≥ δ(v) + 1.
                    if second not in first_adjacency:
                        continue
                    if first_degree + int(degrees[second]) < degree + 1:
                        continue
                    joint = first_adjacency | {first} | adjacency[second] | {second}
                    if closed <= joint:
                        pruned = True
                        break
                if pruned:
                    break
        if pruned:
            final[position] = False
    return final


def _neighbor_list_bits(bulk: BulkGraph) -> np.ndarray:
    """Per-node payload bits of the neighbour-list broadcast (exchange 1)."""
    label_bits = np.fromiter(
        (payload_size_bits(node) for node in bulk.nodes),
        dtype=np.int64,
        count=bulk.n,
    )
    return np.bincount(
        bulk.row, weights=label_bits[bulk.col].astype(np.float64), minlength=bulk.n
    ).astype(np.int64)


def run_wu_li_bulk(
    bulk: BulkGraph, apply_pruning: bool = True
) -> tuple[np.ndarray, np.ndarray, "ExecutionMetrics"]:
    """Execute Wu–Li on a CSR graph.

    Returns ``(final_flags, marked_flags, metrics)``; domination completion
    (the ``ensure_domination`` deviation) is left to the caller, as in the
    simulated wrapper.
    """
    adjacency = _adjacency_sets(bulk)
    marked = compute_marked_bulk(bulk, adjacency)
    final = (
        apply_pruning_bulk(bulk, marked, adjacency)
        if apply_pruning
        else marked.copy()
    )

    metrics = BulkMetricsBuilder(bulk.degrees)
    metrics.record_exchange(_neighbor_list_bits(bulk))
    metrics.record_exchange(BOOL_PAYLOAD_BITS)
    return final, marked, metrics.build(bulk.nodes)
