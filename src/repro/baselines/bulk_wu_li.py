"""Fully vectorized (CSR) Wu–Li marking with pruning rules 1 and 2.

The reference implementation in :mod:`repro.baselines.wu_li` ships every
node its neighbours' neighbour lists through the simulator -- O(Σ δ_i²)
Python payload objects for the 2-hop exchange alone.  Earlier bulk ports
replaced the messages but kept a per-node Python core (frozenset subset
tests under degree prefilters).  This module removes that core entirely:
marking and both pruning rules are evaluated as whole-graph array
expressions built from one sparse triangle product.

The key quantity is the per-edge *common-neighbour count*
``B[u, v] = |N(u) ∩ N(v)|`` for every edge {u, v}, obtained from the
sparse product ``(A·A) ∘ A``:

* **Marking.**  v is marked iff two of its neighbours are non-adjacent,
  i.e. iff N(v) is not a clique.  The number of adjacent neighbour pairs
  of v is ``Σ_{u ∈ N(v)} B[v, u] / 2`` (each in-neighbourhood edge is
  seen from both endpoints), so v is marked iff that count falls short
  of ``δ(v)·(δ(v)−1)/2`` -- one ``bincount`` and one comparison.
* **Rule 1.**  For an edge {v, u}: ``N[v] ⊆ N[u]`` iff
  ``|N[v] ∩ N[u]| = δ(v)+1``; since u ~ v, the closed intersection is
  ``B[v, u] + 2`` (the two endpoints join in), so the subset test is the
  pure equality ``B[v, u] == δ(v) − 1`` -- evaluated for every edge at
  once, masked to marked higher-id neighbours, reduced per row.
* **Rule 2.**  Candidate triangles (v, u, w) -- u, w marked higher-id
  neighbours of v, u ~ w -- are enumerated as flat arrays; adjacency of
  arbitrary pairs is one binary search into the (globally sorted) key
  array ``row·n + col``; the coverage test ``N[v] ⊆ N[u] ∪ N[w]``
  expands each surviving triangle's closed neighbourhood and resolves
  membership with the same vectorized key search, after an
  inclusion-exclusion prefilter (``B[v,u] + B[v,w] ≥ δ(v)`` is necessary)
  discards most triangles without touching any neighbourhood.

Both rules only read the marking flags (not the pruned output), so the
evaluation order cannot change the result; the output is identical to the
simulated :class:`~repro.baselines.wu_li.WuLiProgram` on every input.
"""

from __future__ import annotations

import numpy as np

from repro.simulator.bulk import (
    BOOL_PAYLOAD_BITS,
    BulkGraph,
    BulkMetricsBuilder,
)
from repro.simulator.message import payload_size_bits


def _edge_common_neighbors(bulk: BulkGraph) -> np.ndarray:
    """``B[e] = |N(u) ∩ N(v)|`` for every CSR adjacency entry e = (u, v).

    One sparse triangle product ``(A·A) ∘ A``, re-aligned to the CSR
    entry order through the globally sorted ``row·n + col`` keys (entries
    whose product is zero are simply absent and stay zero).
    """
    from scipy import sparse

    n = bulk.n
    if bulk.col.size == 0:
        return np.zeros(0, dtype=np.int64)
    adjacency = sparse.csr_matrix(
        (np.ones(bulk.col.size, dtype=np.int64), bulk.col, bulk.indptr),
        shape=(n, n),
    )
    triangle = (adjacency @ adjacency).multiply(adjacency).tocoo()
    common = np.zeros(bulk.col.size, dtype=np.int64)
    keys = _edge_keys(bulk)
    positions = np.searchsorted(
        keys, triangle.row.astype(np.int64) * np.int64(n) + triangle.col
    )
    common[positions] = triangle.data
    return common


def _edge_keys(bulk: BulkGraph) -> np.ndarray:
    """The globally sorted ``row·n + col`` key array (sorted by construction)."""
    return bulk.row * np.int64(bulk.n) + bulk.col


def _edge_member(
    bulk: BulkGraph, u: np.ndarray, v: np.ndarray, keys: np.ndarray | None = None
) -> np.ndarray:
    """Vectorized adjacency test ``u ~ v`` via the sorted CSR key array."""
    if keys is None:
        keys = _edge_keys(bulk)
    wanted = np.asarray(u, dtype=np.int64) * np.int64(bulk.n) + np.asarray(
        v, dtype=np.int64
    )
    positions = np.searchsorted(keys, wanted)
    inside = positions < keys.size
    result = np.zeros(wanted.shape, dtype=bool)
    result[inside] = keys[positions[inside]] == wanted[inside]
    return result


def _pairs_by_group(sizes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All unordered index pairs (i < j) within consecutive groups.

    Returns ``(group, first, second)`` flat arrays: for a group of size s
    there are s·(s−1)/2 pairs with *local* indices ``first < second``.
    Vectorized per distinct group size (``triu_indices`` tiled across all
    groups sharing that size).
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    groups: list[np.ndarray] = []
    firsts: list[np.ndarray] = []
    seconds: list[np.ndarray] = []
    for size in np.unique(sizes[sizes >= 2]).tolist():
        where = np.flatnonzero(sizes == size)
        i, j = np.triu_indices(size, k=1)
        groups.append(np.repeat(where, i.size))
        firsts.append(np.tile(i, where.size))
        seconds.append(np.tile(j, where.size))
    if not groups:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    return (
        np.concatenate(groups),
        np.concatenate(firsts),
        np.concatenate(seconds),
    )


def compute_marked_bulk(
    bulk: BulkGraph, common: np.ndarray | None = None
) -> np.ndarray:
    """Wu–Li marking flags: marked iff two neighbours are not adjacent.

    Equivalent to "N(v) is not a clique", settled for every node at once
    by comparing the count of adjacent neighbour pairs (from the triangle
    product) against ``δ(v)·(δ(v)−1)/2``.
    """
    degrees = bulk.degrees
    if common is None:
        common = _edge_common_neighbors(bulk)
    # Σ_{u ∈ N(v)} |N(v) ∩ N(u)| counts every edge inside N(v) twice.
    adjacent_pairs = np.bincount(bulk.row, weights=common, minlength=bulk.n)
    return (degrees >= 2) & (adjacent_pairs < degrees * (degrees - 1))  # ×2 both sides


def apply_pruning_bulk(
    bulk: BulkGraph,
    marked: np.ndarray,
    common: np.ndarray | None = None,
) -> np.ndarray:
    """Pruning rules 1 and 2 applied to the marked flags (returns new flags).

    Rule 1 unmarks ``v`` when a single marked neighbour with a higher id
    covers its closed neighbourhood; rule 2 when two *adjacent* marked
    higher-id neighbours jointly do.  Ids compare by CSR position, which
    equals identifier order because ``BulkGraph`` stores nodes sorted.
    """
    marked = np.asarray(marked, dtype=bool)
    if common is None:
        common = _edge_common_neighbors(bulk)
    n = bulk.n
    degrees = bulk.degrees
    row, col = bulk.row, bulk.col

    # Entries (v, u) with v marked and u a marked higher-id neighbour --
    # the candidate pool of both rules.
    eligible = marked[row] & marked[col] & (col > row)

    # Rule 1: N[v] ⊆ N[u]  ⟺  B[v, u] == δ(v) − 1  (closed sets share
    # both endpoints on top of the B common neighbours).
    rule1_hits = eligible & (common == degrees[row] - 1)
    rule1 = np.bincount(row[rule1_hits], minlength=n) > 0

    # Rule 2 only matters where rule 1 did not already unmark (the rules
    # combine by disjunction and both read the original marked flags).
    candidate = marked & ~rule1
    entry_positions = np.flatnonzero(eligible & candidate[row])
    rule2 = np.zeros(n, dtype=bool)
    if entry_positions.size:
        # Per candidate v, the marked higher-id neighbour entries form one
        # consecutive "group" in entry order (CSR rows are contiguous).
        owners = row[entry_positions]
        group_start = np.flatnonzero(
            np.concatenate(([True], owners[1:] != owners[:-1]))
        )
        sizes = np.diff(np.append(group_start, owners.size))
        group, first, second = _pairs_by_group(sizes)
        if group.size:
            base = group_start[group]
            first_entry = entry_positions[base + first]
            second_entry = entry_positions[base + second]
            v = row[first_entry]
            u = col[first_entry]
            w = col[second_entry]
            b_u = common[first_entry]
            b_w = common[second_entry]
            # Prefilters, cheapest first: the joint closed neighbourhood
            # must be large enough, the closed intersections must be able
            # to cover N[v] (inclusion-exclusion necessity), and u ~ w.
            keys = _edge_keys(bulk)
            keep = (degrees[u] + degrees[w] >= degrees[v] + 1) & (
                b_u + b_w >= degrees[v]
            )
            keep[keep] = _edge_member(bulk, u[keep], w[keep], keys)
            v, u, w = v[keep], u[keep], w[keep]
            if v.size:
                rule2 |= _triangles_cover(bulk, v, u, w, keys)
    final = marked & ~rule1 & ~rule2
    return final


def _triangles_cover(
    bulk: BulkGraph,
    v: np.ndarray,
    u: np.ndarray,
    w: np.ndarray,
    keys: np.ndarray | None = None,
) -> np.ndarray:
    """Per-node flag: some triangle (v, u, w) has ``N[v] ⊆ N[u] ∪ N[w]``.

    Expands every triangle's closed neighbourhood of ``v`` into one flat
    array and resolves the at-most-four membership tests per element with
    vectorized key searches; a triangle covers iff none of its elements
    is left uncovered.
    """
    n = bulk.n
    counts = bulk.degrees[v] + 1
    triangle = np.repeat(np.arange(v.size, dtype=np.int64), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    local = np.arange(int(counts.sum()), dtype=np.int64) - offsets[triangle]
    # Closed neighbourhood of v, laid out per triangle: the δ(v) CSR
    # entries followed by v itself.
    is_self = local == bulk.degrees[v][triangle]
    element = np.where(
        is_self,
        v[triangle],
        bulk.col[np.minimum(bulk.indptr[v[triangle]] + local, bulk.col.size - 1)],
    )
    u_rep = u[triangle]
    w_rep = w[triangle]
    covered = (element == u_rep) | (element == w_rep)
    todo = ~covered
    covered[todo] = _edge_member(bulk, u_rep[todo], element[todo], keys)
    todo = ~covered
    covered[todo] = _edge_member(bulk, w_rep[todo], element[todo], keys)
    uncovered_per_triangle = np.bincount(
        triangle[~covered], minlength=v.size
    )
    hit = uncovered_per_triangle == 0
    result = np.zeros(n, dtype=bool)
    result[v[hit]] = True
    return result


def _neighbor_list_bits(bulk: BulkGraph) -> np.ndarray:
    """Per-node payload bits of the neighbour-list broadcast (exchange 1)."""
    label_bits = np.fromiter(
        (payload_size_bits(node) for node in bulk.nodes),
        dtype=np.int64,
        count=bulk.n,
    )
    return np.bincount(
        bulk.row, weights=label_bits[bulk.col].astype(np.float64), minlength=bulk.n
    ).astype(np.int64)


def run_wu_li_bulk(
    bulk: BulkGraph, apply_pruning: bool = True
) -> tuple[np.ndarray, np.ndarray, "ExecutionMetrics"]:
    """Execute Wu–Li on a CSR graph.

    Returns ``(final_flags, marked_flags, metrics)``; domination completion
    (the ``ensure_domination`` deviation) is left to the caller, as in the
    simulated wrapper.
    """
    common = _edge_common_neighbors(bulk)
    marked = compute_marked_bulk(bulk, common)
    final = (
        apply_pruning_bulk(bulk, marked, common)
        if apply_pruning
        else marked.copy()
    )

    metrics = BulkMetricsBuilder(bulk.degrees)
    metrics.record_exchange(_neighbor_list_bits(bulk))
    metrics.record_exchange(BOOL_PAYLOAD_BITS)
    return final, marked, metrics.build(bulk.nodes)
