"""Central LP + distributed rounding: the α = 1 reference pipeline.

Theorem 3 is stated for an arbitrary α-approximate fractional solution; its
strongest instantiation feeds Algorithm 1 an *optimal* fractional solution
(α = 1), in which case the expected dominating set size is at most
``(1 + ln(Δ+1))·|DS_OPT|`` -- matching the best possible polynomial-time
guarantee up to lower-order terms (Feige).

This baseline computes the optimal fractional solution centrally with the
LP solver and then rounds it with the same distributed Algorithm 1 used by
the full pipeline.  Comparing it against the distributed pipeline isolates
how much quality is lost to the *distributed* fractional approximation
(Algorithm 2/3) as opposed to the rounding step.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.rounding import RoundingResult, RoundingRule, round_fractional_solution
from repro.core.vectorized import SIMULATED, validate_backend
from repro.lp.solver import (
    LPSolution,
    solve_fractional_mds,
    solve_fractional_mds_sparse,
)
from repro.simulator.bulk import BulkGraph


@dataclass(frozen=True)
class CentralLPRoundingResult:
    """Output of the central-LP + rounding baseline.

    Attributes
    ----------
    dominating_set:
        The rounded dominating set.
    lp_solution:
        The optimal fractional solution that was rounded.
    rounding:
        Details of the rounding execution.
    """

    dominating_set: frozenset
    lp_solution: LPSolution
    rounding: RoundingResult

    @property
    def size(self) -> int:
        """|DS| of the rounded set."""
        return len(self.dominating_set)

    @property
    def lp_optimum(self) -> float:
        """The fractional optimum LP_OPT."""
        return self.lp_solution.objective


def central_lp_rounding_dominating_set(
    graph: nx.Graph,
    seed: int | None = None,
    rule: RoundingRule = RoundingRule.LOG,
    backend: str = SIMULATED,
    lp_method: str = "highs",
    lp_tol: float = 1e-3,
) -> CentralLPRoundingResult:
    """Solve LP_MDS, then round with distributed Algorithm 1.

    Parameters
    ----------
    graph:
        The network graph.  May also be a CSR
        :class:`~repro.simulator.bulk.BulkGraph` (vectorized backend
        only), in which case the LP is solved *sparsely* -- the dense
        n × n formulation is never materialised -- and the rounding runs
        on the bulk array engine end to end.
    seed:
        Seed for the rounding coin flips.
    rule:
        Probability multiplier rule for Algorithm 1.
    backend:
        Execution backend for the distributed rounding phase; both flip
        the same per-seed coins, so the selected set is backend-invariant.
    lp_method:
        LP solver for the fractional phase: ``"highs"`` (exact, the
        α = 1 instantiation of Theorem 3) or ``"pdhg"`` / ``"mwu"``
        (first-order, α = 1 + lp_tol via the verified certificate --
        Theorem 3's guarantee degrades by exactly that factor).
    lp_tol:
        Certified relative duality gap for the first-order methods.

    Returns
    -------
    CentralLPRoundingResult
    """
    validate_backend(backend)
    if isinstance(graph, BulkGraph):
        lp_solution = solve_fractional_mds_sparse(
            graph, method=lp_method, tol=lp_tol
        )
    else:
        lp_solution = solve_fractional_mds(graph, method=lp_method, tol=lp_tol)
    rounding = round_fractional_solution(
        graph,
        lp_solution.values,
        seed=seed,
        rule=rule,
        require_feasible=True,
        backend=backend,
    )
    return CentralLPRoundingResult(
        dominating_set=rounding.dominating_set,
        lp_solution=lp_solution,
        rounding=rounding,
    )
