"""Baseline algorithms the paper compares against (or builds on).

* :mod:`~repro.baselines.greedy` -- the classical sequential greedy
  dominating set algorithm (ln Δ approximation), including a weighted
  variant.
* :mod:`~repro.baselines.greedy_set_cover` -- greedy set cover, the
  generalisation the paper's related-work discussion references.
* :mod:`~repro.baselines.exact` -- exact MDS via branch and bound, used as
  ground truth on small graphs.
* :mod:`~repro.baselines.lp_rounding_central` -- optimal LP solution (α = 1)
  rounded with distributed Algorithm 1.
* :mod:`~repro.baselines.jia_rajaraman_suel` -- the LRG algorithm of Jia,
  Rajaraman and Suel (PODC 2001), the paper's main distributed comparator.
* :mod:`~repro.baselines.wu_li` -- the Wu–Li constant-round marking
  algorithm (no non-trivial ratio guarantee).
* :mod:`~repro.baselines.trivial` -- the O(Δ) trivial baselines.
* :mod:`~repro.baselines.bulk_greedy` -- the same greedy selection rule on
  a CSR :class:`~repro.simulator.bulk.BulkGraph` with a bucket queue, for
  the n ≥ 20 000 suites.
* :mod:`~repro.baselines.bulk_lrg`, :mod:`~repro.baselines.bulk_wu_li`,
  :mod:`~repro.baselines.bulk_set_cover` -- vectorized CSR executions of
  the LRG comparator, the Wu–Li marking algorithm and greedy set cover,
  output-identical to the reference implementations (``lrg_dominating_set``
  and ``wu_li_dominating_set`` select them via ``backend="vectorized"``).
"""

from repro.baselines.bulk_greedy import greedy_dominating_set_bulk
from repro.baselines.bulk_lrg import run_lrg_bulk
from repro.baselines.bulk_set_cover import (
    greedy_set_cover_bulk,
    greedy_set_cover_dominating_set_bulk,
)
from repro.baselines.bulk_wu_li import run_wu_li_bulk

from repro.baselines.exact import (
    ExactResult,
    SearchBudgetExceeded,
    exact_minimum_dominating_set,
    exact_optimum_size,
)
from repro.baselines.greedy import (
    greedy_dominating_set,
    greedy_span_sequence,
    greedy_weighted_dominating_set,
)
from repro.baselines.greedy_set_cover import (
    greedy_guarantee,
    greedy_set_cover,
    greedy_set_cover_dominating_set,
    harmonic_number,
)
from repro.baselines.jia_rajaraman_suel import LRGResult, lrg_dominating_set
from repro.baselines.lp_rounding_central import (
    CentralLPRoundingResult,
    central_lp_rounding_dominating_set,
)
from repro.baselines.trivial import (
    all_nodes_dominating_set,
    maximal_independent_set_dominating_set,
    random_dominating_set,
)
from repro.baselines.wu_li import WuLiResult, wu_li_dominating_set

__all__ = [
    "CentralLPRoundingResult",
    "ExactResult",
    "LRGResult",
    "SearchBudgetExceeded",
    "WuLiResult",
    "all_nodes_dominating_set",
    "central_lp_rounding_dominating_set",
    "exact_minimum_dominating_set",
    "exact_optimum_size",
    "greedy_dominating_set",
    "greedy_dominating_set_bulk",
    "greedy_guarantee",
    "greedy_set_cover",
    "greedy_set_cover_bulk",
    "greedy_set_cover_dominating_set",
    "greedy_set_cover_dominating_set_bulk",
    "greedy_span_sequence",
    "greedy_weighted_dominating_set",
    "harmonic_number",
    "lrg_dominating_set",
    "maximal_independent_set_dominating_set",
    "random_dominating_set",
    "run_lrg_bulk",
    "run_wu_li_bulk",
    "wu_li_dominating_set",
]
