"""CSR-native greedy set cover (bucket-queue).

The reference :func:`repro.baselines.greedy_set_cover.greedy_set_cover`
re-scans every set per pick (O(picks · Σ|S|) set intersections), which is
fine for the tiny exact-baseline suite but rules the general form out of
large sweeps.  This module runs the identical selection rule -- maximum
number of newly covered elements, ties to the smallest set identifier --
over a CSR representation of the set system:

* gains live in an integer array and are decremented by CSR gathers when
  elements become covered;
* the "pick the best set" step is a bucket queue (one lazy min-heap per
  gain value), the same structure :mod:`repro.baselines.bulk_greedy` uses.

``greedy_set_cover_bulk`` accepts the reference's ``(universe, sets)``
mapping API and returns the identical pick list;
``greedy_set_cover_dominating_set_bulk`` instantiates the cover problem
with closed neighbourhoods straight from a
:class:`~repro.simulator.bulk.BulkGraph` -- no per-set Python objects.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Hashable, Iterable, Mapping

import networkx as nx
import numpy as np

from repro.simulator.bulk import BulkGraph


def _greedy_cover_csr(
    element_count: int, indptr: np.ndarray, members: np.ndarray
) -> list[int]:
    """Pick order of greedy set cover over CSR sets (indices into rows).

    ``members`` holds each set's elements (``members[indptr[s]:indptr[s+1]]``,
    duplicates not allowed); every element index below ``element_count``
    must appear in at least one set.  Selection rule: maximum gain, ties to
    the smallest set index -- the reference algorithm's rule exactly.
    """
    set_count = indptr.size - 1
    gains = np.diff(indptr).astype(np.int64)
    covered = np.zeros(element_count, dtype=bool)
    exhausted = np.zeros(set_count, dtype=bool)

    # Reverse incidence: for every element, the sets containing it.
    order = np.argsort(members, kind="stable")
    element_sets = np.repeat(np.arange(set_count, dtype=np.int64), gains)[order]
    element_counts = np.bincount(members, minlength=element_count)
    element_starts = np.concatenate(([0], np.cumsum(element_counts)))

    buckets: defaultdict[int, list[int]] = defaultdict(list)
    for set_index in range(set_count):
        if gains[set_index] > 0:
            buckets[int(gains[set_index])].append(set_index)

    picks: list[int] = []
    remaining = element_count
    cursor = int(gains.max(initial=0))
    while remaining > 0:
        while cursor > 0 and not buckets.get(cursor):
            cursor -= 1
        if cursor <= 0:
            raise ValueError("universe cannot be covered by the given sets")
        chosen = heapq.heappop(buckets[cursor])
        if exhausted[chosen]:
            continue
        gain = int(gains[chosen])
        if gain != cursor:
            # Stale entry: re-file at the true gain and retry.
            if gain > 0:
                heapq.heappush(buckets[gain], chosen)
            continue

        exhausted[chosen] = True
        picks.append(chosen)
        row = members[indptr[chosen] : indptr[chosen + 1]]
        newly = row[~covered[row]]
        covered[newly] = True
        remaining -= int(newly.size)

        # Every set containing a newly covered element loses one gain unit.
        touched = np.concatenate(
            [
                element_sets[element_starts[element] : element_starts[element + 1]]
                for element in newly
            ]
        ) if newly.size else np.empty(0, dtype=np.int64)
        decrements = np.bincount(touched, minlength=set_count)
        changed = np.flatnonzero(decrements)
        gains[changed] -= decrements[changed]
        for moved in changed:
            if not exhausted[moved] and gains[moved] > 0:
                heapq.heappush(buckets[int(gains[moved])], int(moved))
    return picks


def greedy_set_cover_bulk(
    universe: Iterable[Hashable],
    sets: Mapping[Hashable, frozenset],
) -> list[Hashable]:
    """Greedy set cover over arbitrary identifiers, CSR-executed.

    Same signature, same covering precondition and same output (identical
    pick order) as :func:`repro.baselines.greedy_set_cover.greedy_set_cover`.
    """
    elements = sorted(set(universe))
    element_index = {element: position for position, element in enumerate(elements)}
    set_ids = sorted(sets)

    rows: list[np.ndarray] = []
    counts = np.zeros(len(set_ids), dtype=np.int64)
    covered_by_all: set[Hashable] = set()
    for position, set_id in enumerate(set_ids):
        covered_by_all |= sets[set_id]
        # Elements outside the universe never contribute gain; drop them.
        inside = np.fromiter(
            (
                element_index[member]
                for member in sets[set_id]
                if member in element_index
            ),
            dtype=np.int64,
        )
        counts[position] = inside.size
        rows.append(inside)
    missing = set(elements) - covered_by_all
    if missing:
        raise ValueError(
            f"universe cannot be covered; missing elements: {sorted(missing)[:5]}"
        )

    indptr = np.concatenate(([0], np.cumsum(counts)))
    members = (
        np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
    )
    picks = _greedy_cover_csr(len(elements), indptr, members)
    return [set_ids[pick] for pick in picks]


def greedy_set_cover_dominating_set_bulk(graph: BulkGraph | nx.Graph) -> frozenset:
    """Set cover greedy over closed neighbourhoods, straight from the CSR.

    Output-identical to
    :func:`repro.baselines.greedy_set_cover.greedy_set_cover_dominating_set`
    (and therefore to the classical greedy dominating set).
    """
    bulk = graph if isinstance(graph, BulkGraph) else BulkGraph.from_graph(graph)
    # Closed neighbourhoods as CSR sets: each row is the adjacency row plus
    # the node itself (appended; order within a set is irrelevant to gains).
    indptr = np.concatenate(([0], np.cumsum(bulk.degrees + 1)))
    members = np.empty(int(indptr[-1]), dtype=np.int64)
    ends = indptr[1:] - 1
    mask = np.ones(members.size, dtype=bool)
    mask[ends] = False
    members[mask] = bulk.col
    members[ends] = np.arange(bulk.n, dtype=np.int64)
    picks = _greedy_cover_csr(bulk.n, indptr, members)
    return frozenset(bulk.nodes[pick] for pick in picks)
