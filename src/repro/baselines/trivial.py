"""Trivial baselines: the O(Δ) "all nodes" solution and randomized filling.

The paper calls an approximation ratio *trivial* when it is O(Δ): the set V
of all nodes is always dominating and is at most (Δ+1) times larger than an
optimal dominating set (every dominator covers at most Δ+1 nodes).  These
baselines anchor the comparison benchmarks: any algorithm worth running must
beat them.
"""

from __future__ import annotations

import random
from typing import Hashable

import networkx as nx

from repro.domset.validation import uncovered_nodes
from repro.graphs.utils import validate_simple_graph


def all_nodes_dominating_set(graph: nx.Graph) -> frozenset:
    """The trivial dominating set V (ratio at most Δ+1)."""
    validate_simple_graph(graph)
    return frozenset(graph.nodes())


def random_dominating_set(graph: nx.Graph, seed: int | None = None) -> frozenset:
    """Add uniformly random nodes until the set dominates the graph.

    This is the "no coordination at all" baseline: it makes no use of the
    graph structure beyond checking domination, and typically lands between
    the greedy solution and the all-nodes solution.
    """
    validate_simple_graph(graph)
    rng = random.Random(seed)
    order = list(graph.nodes())
    rng.shuffle(order)

    chosen: set[Hashable] = set()
    uncovered = set(graph.nodes())
    for node in order:
        if not uncovered:
            break
        if node in uncovered or not uncovered.isdisjoint(graph.neighbors(node)):
            chosen.add(node)
            uncovered.discard(node)
            uncovered.difference_update(graph.neighbors(node))
    # Any remaining uncovered nodes (possible when the shuffle exhausts the
    # list while skipping useless nodes) join directly.
    chosen |= uncovered_nodes(graph, chosen)
    return frozenset(chosen)


def maximal_independent_set_dominating_set(
    graph: nx.Graph, seed: int | None = None
) -> frozenset:
    """A dominating set obtained from a (greedy) maximal independent set.

    Every maximal independent set is a dominating set; this baseline is the
    classical "clustering by MIS" heuristic used in ad-hoc networks.  It is
    not one of the paper's comparators but is a natural additional reference
    point for the ad-hoc clustering example.
    """
    validate_simple_graph(graph)
    rng = random.Random(seed)
    order = list(graph.nodes())
    rng.shuffle(order)
    independent: set[Hashable] = set()
    blocked: set[Hashable] = set()
    for node in order:
        if node in blocked:
            continue
        independent.add(node)
        blocked.add(node)
        blocked.update(graph.neighbors(node))
    return frozenset(independent)
