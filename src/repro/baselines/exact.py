"""Exact minimum dominating set via branch and bound.

MDS is NP-hard, but the graphs used for ground-truth comparisons in the
benchmarks are small (tens of nodes), and a carefully pruned branch-and-bound
search solves them in well under a second.  The search follows the standard
set cover branching rule:

* pick the uncovered node with the *fewest* candidate dominators,
* branch on which of those candidates joins the dominating set,
* prune with (a) the best solution found so far (initialised with greedy)
  and (b) a simple lower bound: ⌈uncovered / (Δ+1)⌉ additional dominators
  are always required.

A work budget (``max_nodes_expanded``) guards against accidentally feeding
the solver a graph it cannot handle; exceeding it raises rather than
silently returning a non-optimal answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import networkx as nx

from repro.baselines.greedy import greedy_dominating_set
from repro.graphs.utils import closed_neighborhood, closed_neighborhoods, validate_simple_graph


class SearchBudgetExceeded(RuntimeError):
    """Raised when the branch-and-bound search exceeds its work budget."""


@dataclass(frozen=True)
class ExactResult:
    """Result of an exact MDS computation.

    Attributes
    ----------
    dominating_set:
        An optimal dominating set.
    size:
        |DS_OPT|.
    nodes_expanded:
        Number of branch-and-bound nodes explored (a work measure).
    """

    dominating_set: frozenset
    size: int
    nodes_expanded: int


def exact_minimum_dominating_set(
    graph: nx.Graph, max_nodes_expanded: int = 2_000_000
) -> ExactResult:
    """Compute a minimum dominating set exactly.

    Parameters
    ----------
    graph:
        The input graph.  Intended for graphs of up to a few hundred nodes
        with moderate structure; the work budget protects against worse.
    max_nodes_expanded:
        Upper bound on branch-and-bound nodes before giving up.

    Returns
    -------
    ExactResult

    Raises
    ------
    SearchBudgetExceeded
        If the search does not finish within the work budget.
    """
    validate_simple_graph(graph)
    neighborhoods = {
        node: frozenset(members)
        for node, members in closed_neighborhoods(graph).items()
    }
    all_nodes = frozenset(graph.nodes())

    # Greedy gives both the initial incumbent and an upper bound for pruning.
    incumbent = set(greedy_dominating_set(graph))
    best_size = len(incumbent)
    best_solution = frozenset(incumbent)
    max_cover = max(len(members) for members in neighborhoods.values())

    nodes_expanded = 0

    def lower_bound(uncovered_count: int) -> int:
        """Each additional dominator covers at most Δ+1 uncovered nodes."""
        if uncovered_count == 0:
            return 0
        return -(-uncovered_count // max_cover)  # ceiling division

    def search(chosen: set[Hashable], uncovered: frozenset) -> None:
        nonlocal best_size, best_solution, nodes_expanded
        nodes_expanded += 1
        if nodes_expanded > max_nodes_expanded:
            raise SearchBudgetExceeded(
                f"exceeded {max_nodes_expanded} branch-and-bound nodes"
            )
        if not uncovered:
            if len(chosen) < best_size:
                best_size = len(chosen)
                best_solution = frozenset(chosen)
            return
        if len(chosen) + lower_bound(len(uncovered)) >= best_size:
            return

        # Branch on the most constrained uncovered node: the one with the
        # fewest candidate dominators.  One of its candidates *must* be in
        # every dominating set, so the branching is exhaustive.
        branch_node = min(
            uncovered, key=lambda node: (len(neighborhoods[node]), node)
        )
        # Order candidates by how much they would cover (descending) so the
        # incumbent improves early and pruning bites sooner.
        candidates = sorted(
            neighborhoods[branch_node],
            key=lambda node: (-len(neighborhoods[node] & uncovered), node),
        )
        for candidate in candidates:
            chosen.add(candidate)
            search(chosen, uncovered - neighborhoods[candidate])
            chosen.remove(candidate)

    search(set(), all_nodes)
    return ExactResult(
        dominating_set=best_solution, size=best_size, nodes_expanded=nodes_expanded
    )


def exact_optimum_size(graph: nx.Graph, max_nodes_expanded: int = 2_000_000) -> int:
    """Shorthand for ``exact_minimum_dominating_set(...).size``."""
    return exact_minimum_dominating_set(graph, max_nodes_expanded).size
