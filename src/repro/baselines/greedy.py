"""The classical sequential greedy dominating set algorithm.

The paper repeatedly uses the greedy algorithm as its reference point: as
long as uncovered (white) nodes remain, pick the node that covers the most
uncovered nodes and add it to the dominating set.  Chvátal/Johnson/Lovász
show this is a ``ln Δ`` approximation, and by Feige's hardness result it is
essentially optimal for a polynomial-time algorithm.

This module implements the greedy algorithm both for plain dominating set
and for the weighted variant (pick the node maximising uncovered-coverage
per unit cost), plus a "span sequence" helper used by tests that verify the
greedy invariant (spans are non-increasing).
"""

from __future__ import annotations

import heapq
from typing import Hashable, Mapping

import networkx as nx

from repro.graphs.utils import closed_neighborhood, validate_simple_graph


def greedy_dominating_set(graph: nx.Graph) -> frozenset:
    """Compute a dominating set with the classical greedy algorithm.

    Ties between nodes covering the same number of uncovered nodes are
    broken by node id, making the output deterministic.

    The implementation uses a lazy-deletion priority queue: each node's
    priority is its current *span* (number of uncovered nodes in its closed
    neighbourhood); stale heap entries are skipped on pop.  The complexity
    is O((n + m) log n), comfortably fast for every graph in the benchmark
    suite.

    Parameters
    ----------
    graph:
        The input graph.

    Returns
    -------
    frozenset
        A dominating set of size at most (1 + ln Δ)·|DS_OPT|.
    """
    validate_simple_graph(graph)
    uncovered = set(graph.nodes())
    chosen: set[Hashable] = set()

    spans = {node: graph.degree(node) + 1 for node in graph.nodes()}
    heap = [(-span, node) for node, span in spans.items()]
    heapq.heapify(heap)

    while uncovered:
        while True:
            negative_span, node = heapq.heappop(heap)
            span = len(closed_neighborhood(graph, node) & uncovered)
            if span == -negative_span:
                break
            # Stale entry: push the corrected span back and retry.
            heapq.heappush(heap, (-span, node))
        if span == 0:
            # Every remaining heap entry covers nothing new, yet uncovered
            # nodes remain -- impossible for a correct implementation.
            raise RuntimeError("greedy ran out of useful nodes; internal error")
        chosen.add(node)
        newly_covered = closed_neighborhood(graph, node) & uncovered
        uncovered -= newly_covered
    return frozenset(chosen)


def greedy_weighted_dominating_set(
    graph: nx.Graph, weights: Mapping[Hashable, float]
) -> frozenset:
    """Weighted greedy: repeatedly pick the node minimising cost per new cover.

    This is the classical weighted set cover greedy specialised to
    domination; its approximation guarantee is H(Δ+1) ≈ ln Δ with respect to
    the optimal *weighted* dominating set.
    """
    validate_simple_graph(graph)
    missing = [node for node in graph.nodes() if node not in weights]
    if missing:
        raise ValueError(f"weights missing for nodes: {missing[:5]}")

    uncovered = set(graph.nodes())
    chosen: set[Hashable] = set()
    while uncovered:
        best_node = None
        best_ratio = float("inf")
        for node in graph.nodes():
            if node in chosen:
                continue
            newly = len(closed_neighborhood(graph, node) & uncovered)
            if newly == 0:
                continue
            ratio = float(weights[node]) / newly
            if ratio < best_ratio or (ratio == best_ratio and (best_node is None or node < best_node)):
                best_ratio = ratio
                best_node = node
        if best_node is None:
            raise RuntimeError("weighted greedy ran out of useful nodes")
        chosen.add(best_node)
        uncovered -= closed_neighborhood(graph, best_node)
    return frozenset(chosen)


def greedy_span_sequence(graph: nx.Graph) -> list[int]:
    """The sequence of spans picked by the greedy algorithm, in pick order.

    Used by tests: the sequence must be non-increasing and sum to at least
    n (every node gets covered at least once by the step that covers it).
    """
    validate_simple_graph(graph)
    uncovered = set(graph.nodes())
    spans: list[int] = []
    nodes = sorted(graph.nodes())
    while uncovered:
        best_node = None
        best_span = -1
        for node in nodes:
            span = len(closed_neighborhood(graph, node) & uncovered)
            if span > best_span:
                best_span = span
                best_node = node
        covered = closed_neighborhood(graph, best_node) & uncovered
        spans.append(len(covered))
        uncovered -= covered
    return spans
