"""Connected dominating set (CDS) extension.

The paper's related-work section repeatedly refers to the *connected*
dominating set problem (Guha–Khuller's (ln Δ + O(1)) approximation, the
Dubhashi et al. distributed algorithm, Wu–Li's marking scheme): in ad-hoc
routing the cluster heads usually need to form a connected backbone so that
inter-cluster traffic never leaves the dominating set.

This package extends the reproduction with the standard constructions:

* :mod:`~repro.cds.validation` -- what it means to be a CDS, plus backbone
  statistics used by the examples.
* :mod:`~repro.cds.connectify` -- turn any dominating set (e.g. the output
  of the Kuhn–Wattenhofer pipeline) into a connected one by adding
  connector nodes along shortest paths; because any two adjacent clusters
  have dominators within distance 3, at most 2 connectors are added per
  merge, so |CDS| ≤ 3·|DS| for connected graphs.
* :mod:`~repro.cds.guha_khuller` -- the classical centralized greedy CDS
  baseline the paper cites ([10] Guha & Khuller).

This is an extension beyond the paper's own contribution; it is exercised
by its own tests and by the ``examples/adhoc_clustering.py`` backbone
statistics, and documented as such in DESIGN.md.
"""

from repro.cds.bulk import (
    backbone_statistics_bulk,
    bulk_bfs_distances,
    bulk_connected_components,
    bulk_is_connected,
    bulk_largest_component,
    connect_dominating_set_bulk,
    is_connected_dominating_set_bulk,
)
from repro.cds.bulk_guha_khuller import guha_khuller_connected_dominating_set_bulk
from repro.cds.connectify import connect_dominating_set, kw_connected_dominating_set
from repro.cds.guha_khuller import guha_khuller_connected_dominating_set
from repro.cds.validation import backbone_statistics, is_connected_dominating_set

__all__ = [
    "backbone_statistics",
    "backbone_statistics_bulk",
    "bulk_bfs_distances",
    "bulk_connected_components",
    "bulk_is_connected",
    "bulk_largest_component",
    "connect_dominating_set",
    "connect_dominating_set_bulk",
    "guha_khuller_connected_dominating_set",
    "guha_khuller_connected_dominating_set_bulk",
    "is_connected_dominating_set",
    "is_connected_dominating_set_bulk",
    "kw_connected_dominating_set",
]
