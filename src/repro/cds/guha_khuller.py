"""The Guha–Khuller greedy connected dominating set baseline.

The paper cites Guha & Khuller [10] as the classical (ln Δ + O(1))
approximation for *connected* dominating sets.  The first (and simplest) of
their two algorithms grows a connected "black" tree greedily:

* all nodes start white;
* repeatedly, a gray or white node is *scanned*: it is coloured black, its
  white neighbours turn gray;
* the first scanned node is the one with the most white neighbours; every
  subsequent scan must pick a gray node (keeping the black set connected),
  chosen to maximise the number of white nodes it would colour;
* when no white node remains, the black nodes form a connected dominating
  set.

This is a centralized baseline used for quality comparisons of the CDS
extension; it is not part of the paper's own contribution.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.cds.validation import is_connected_dominating_set
from repro.core.vectorized import (
    SIMULATED,
    VECTORIZED,
    resolve_bulk_input,
    validate_backend,
)
from repro.graphs.utils import validate_simple_graph
from repro.simulator.bulk import BulkGraph

WHITE, GRAY, BLACK = 0, 1, 2


def guha_khuller_connected_dominating_set(
    graph: nx.Graph, backend: str = SIMULATED
) -> frozenset:
    """Compute a connected dominating set with the Guha–Khuller greedy scan.

    Parameters
    ----------
    graph:
        A connected graph with at least one node.  May also be a CSR
        :class:`~repro.simulator.bulk.BulkGraph`, in which case
        ``backend="vectorized"`` is required.
    backend:
        ``"simulated"`` runs the original set-based scan;
        ``"vectorized"`` runs the identical selection rule on the CSR
        with a bucket queue
        (:mod:`repro.cds.bulk_guha_khuller`) -- same set, milliseconds
        where the set-based scan takes minutes.

    Returns
    -------
    frozenset
        A connected dominating set (the whole vertex set in the degenerate
        single-node case).

    Raises
    ------
    ValueError
        If the graph is disconnected (no CDS exists).
    """
    validate_backend(backend)
    bulk = resolve_bulk_input(graph, backend)
    if backend == VECTORIZED:
        from repro.cds.bulk_guha_khuller import (
            guha_khuller_connected_dominating_set_bulk,
        )

        if bulk is None:
            validate_simple_graph(graph)
            bulk = BulkGraph.from_graph(graph)
        return guha_khuller_connected_dominating_set_bulk(bulk)
    validate_simple_graph(graph)
    if not nx.is_connected(graph):
        raise ValueError("a disconnected graph has no connected dominating set")
    if graph.number_of_nodes() == 1:
        return frozenset(graph.nodes())

    color: dict[Hashable, int] = {node: WHITE for node in graph.nodes()}

    def white_gain(node: Hashable) -> int:
        return sum(1 for neighbor in graph.neighbors(node) if color[neighbor] == WHITE)

    def scan(node: Hashable) -> None:
        color[node] = BLACK
        for neighbor in graph.neighbors(node):
            if color[neighbor] == WHITE:
                color[neighbor] = GRAY

    # First scan: the globally best node (ties broken by id).
    first = max(sorted(graph.nodes()), key=white_gain)
    # A node with no white neighbours can still be forced in the single-node
    # component case handled above; here Δ ≥ 1 guarantees gain ≥ 1.
    scan(first)

    while any(value == WHITE for value in color.values()):
        # Subsequent scans must pick a gray node (adjacent to the black tree)
        # so the black set stays connected.  While white nodes remain, the
        # connectivity of the graph guarantees some gray node has a white
        # neighbour (white nodes are never adjacent to black ones), so the
        # chosen candidate always makes progress.
        candidates = [node for node in sorted(graph.nodes()) if color[node] == GRAY]
        best = max(candidates, key=white_gain)
        scan(best)

    cds = frozenset(node for node, value in color.items() if value == BLACK)
    if not is_connected_dominating_set(graph, cds):
        raise RuntimeError("Guha-Khuller produced an invalid CDS (internal error)")
    return cds
