"""Turning a dominating set into a connected dominating set.

For a connected graph G and any dominating set S, the "cluster graph" whose
vertices are the members of S, with an edge between two members whenever
they are at distance at most 3 in G, is itself connected.  Connecting the
members along those short paths therefore yields a connected dominating set
with at most 3·|S| nodes (each merge adds at most two connector nodes).

``connect_dominating_set`` implements that construction; the
``kw_connected_dominating_set`` convenience wrapper runs the full
Kuhn–Wattenhofer pipeline and then connects its output, giving a
constant-round-plus-postprocessing CDS heuristic comparable (in spirit) to
the two-phase algorithms the paper cites in its related work.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx

from repro.cds.validation import is_connected_dominating_set
from repro.core.kuhn_wattenhofer import PipelineResult, kuhn_wattenhofer_dominating_set
from repro.domset.validation import is_dominating_set


def connect_dominating_set(graph: nx.Graph, dominating_set: Iterable[Hashable]) -> frozenset:
    """Add connector nodes until the dominating set induces a connected subgraph.

    Parameters
    ----------
    graph:
        The (connected) communication graph.
    dominating_set:
        A valid dominating set of ``graph``.

    Returns
    -------
    frozenset
        A connected dominating set containing ``dominating_set``.

    Raises
    ------
    ValueError
        If the input is not a dominating set or the graph is disconnected
        (no CDS exists in that case).
    """
    members = set(dominating_set)
    if not is_dominating_set(graph, members):
        raise ValueError("input is not a dominating set")
    if not nx.is_connected(graph):
        raise ValueError("a disconnected graph has no connected dominating set")
    if len(members) <= 1:
        return frozenset(members)

    # Repeatedly merge the component containing the smallest member with the
    # component nearest to it, adding the nodes of the connecting shortest
    # path.  Dominators of adjacent clusters are at distance ≤ 3, so each
    # merge adds at most two connector nodes and the final size is ≤ 3·|S|.
    components = list(nx.connected_components(graph.subgraph(members)))
    while len(components) > 1:
        base = min(components, key=lambda component: min(component))
        others = set().union(*(c for c in components if c is not base))
        # Multi-source BFS from the whole base component towards the nearest
        # node of any other component.
        best_path = None
        for source in base:
            paths = nx.single_source_shortest_path(graph, source)
            for target in others:
                path = paths.get(target)
                if path is not None and (best_path is None or len(path) < len(best_path)):
                    best_path = path
        if best_path is None:
            raise RuntimeError("failed to connect dominating set components")
        members.update(best_path)
        components = list(nx.connected_components(graph.subgraph(members)))

    result = frozenset(members)
    if not is_connected_dominating_set(graph, result):
        raise RuntimeError("connectification produced an invalid CDS (internal error)")
    return result


def kw_connected_dominating_set(
    graph: nx.Graph, k: int | None = None, seed: int | None = None
) -> tuple[frozenset, PipelineResult]:
    """Kuhn–Wattenhofer pipeline followed by connectification.

    Returns the connected dominating set together with the underlying
    pipeline result (for round/message accounting of the distributed part).
    """
    pipeline = kuhn_wattenhofer_dominating_set(graph, k=k, seed=seed)
    cds = connect_dominating_set(graph, pipeline.dominating_set)
    return cds, pipeline
