"""Turning a dominating set into a connected dominating set.

For a connected graph G and any dominating set S, the "cluster graph" whose
vertices are the members of S, with an edge between two members whenever
they are at distance at most 3 in G, is itself connected.  Connecting the
members along those short paths therefore yields a connected dominating set
with at most 3·|S| nodes (each merge adds at most two connector nodes).

``connect_dominating_set`` realises that construction with a deterministic
*Voronoi + Kruskal* scheme shared verbatim by the CSR implementation in
:mod:`repro.cds.bulk`:

1. every node is assigned an **owner**: itself if it is a member, otherwise
   the smallest member in its closed neighbourhood (one exists -- S
   dominates);
2. every graph edge {u, v} whose endpoints have different owners witnesses
   that owner(u) and owner(v) are within distance 3, reachable by adding
   the (at most two) non-member endpoints as connectors;
3. a Kruskal pass over those witness edges -- sorted by (number of
   connectors needed, owner pair, endpoint pair) -- merges the member
   clusters, adding the connectors of each tree edge.

Cost-0 witness edges (both endpoints members) are processed first, so the
connected components of the induced subgraph G[S] merge for free before
any connector is spent.  The output contains S, is a valid CDS, and has at
most |S| + 2·(|S| − 1) ≤ 3·|S| nodes.

The ``kw_connected_dominating_set`` convenience wrapper runs the full
Kuhn–Wattenhofer pipeline (either backend) and then connects its output,
giving a constant-round-plus-postprocessing CDS heuristic comparable (in
spirit) to the two-phase algorithms the paper cites in its related work.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import networkx as nx
import numpy as np

from repro.cds.validation import is_connected_dominating_set
from repro.core.kuhn_wattenhofer import PipelineResult, kuhn_wattenhofer_dominating_set
from repro.core.vectorized import SIMULATED
from repro.domset.validation import is_dominating_set
from repro.simulator.bulk import BulkGraph


class _UnionFind:
    """Union-find over member nodes (path halving, union by size)."""

    def __init__(self, items: Iterable[Hashable]) -> None:
        self.parent = {item: item for item in items}
        self.size = {item: 1 for item in self.parent}
        self.components = len(self.parent)

    def find(self, item: Hashable) -> Hashable:
        parent = self.parent
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, left: Hashable, right: Hashable) -> bool:
        root_left, root_right = self.find(left), self.find(right)
        if root_left == root_right:
            return False
        if self.size[root_left] < self.size[root_right]:
            root_left, root_right = root_right, root_left
        self.parent[root_right] = root_left
        self.size[root_left] += self.size[root_right]
        self.components -= 1
        return True


def connect_dominating_set(graph: nx.Graph, dominating_set: Iterable[Hashable]) -> frozenset:
    """Add connector nodes until the dominating set induces a connected subgraph.

    Parameters
    ----------
    graph:
        The (connected) communication graph.
    dominating_set:
        A valid dominating set of ``graph``.

    Returns
    -------
    frozenset
        A connected dominating set containing ``dominating_set``, of size
        at most ``3·|dominating_set|``.  The construction is deterministic
        and identical to :func:`repro.cds.bulk.connect_dominating_set_bulk`.

    ``graph`` may also be a CSR :class:`~repro.simulator.bulk.BulkGraph`;
    the construction then runs entirely on the CSR arrays.

    Raises
    ------
    ValueError
        If the input is not a dominating set or the graph is disconnected
        (no CDS exists in that case).
    """
    if isinstance(graph, BulkGraph):
        from repro.cds.bulk import connect_dominating_set_bulk

        members = set(dominating_set)
        unknown = members - set(graph.nodes)
        if unknown:
            raise ValueError(
                f"candidate contains nodes not in the graph: {sorted(unknown)[:5]}"
            )
        flags = np.zeros(graph.n, dtype=bool)
        if members:
            flags[graph.index_of(members)] = True
        selected = connect_dominating_set_bulk(graph, flags)
        return frozenset(
            node for node, flag in zip(graph.nodes, selected) if flag
        )
    members = set(dominating_set)
    if not is_dominating_set(graph, members):
        raise ValueError("input is not a dominating set")
    if not nx.is_connected(graph):
        raise ValueError("a disconnected graph has no connected dominating set")
    if len(members) <= 1:
        return frozenset(members)

    # Step 1: assign owners (self for members, else the smallest dominator).
    owner = {
        node: node
        if node in members
        else min(neighbor for neighbor in graph.neighbors(node) if neighbor in members)
        for node in graph.nodes()
    }

    # Step 2: witness edges between different owners, keyed for Kruskal.
    witnesses = []
    for u, v in graph.edges():
        if owner[u] == owner[v]:
            continue
        u, v = (u, v) if u < v else (v, u)
        cost = (u not in members) + (v not in members)
        a, b = owner[u], owner[v]
        a, b = (a, b) if a < b else (b, a)
        witnesses.append((cost, a, b, u, v))
    witnesses.sort()

    # Step 3: Kruskal over the member clusters; tree edges add connectors.
    clusters = _UnionFind(members)
    result = set(members)
    for cost, a, b, u, v in witnesses:
        if clusters.union(a, b):
            result.add(u)
            result.add(v)
        if clusters.components == 1:
            break
    if clusters.components != 1:
        raise RuntimeError("failed to connect dominating set components")

    cds = frozenset(result)
    if not is_connected_dominating_set(graph, cds):
        raise RuntimeError("connectification produced an invalid CDS (internal error)")
    return cds


def kw_connected_dominating_set(
    graph: nx.Graph,
    k: int | None = None,
    seed: int | None = None,
    backend: str = SIMULATED,
) -> tuple[frozenset, PipelineResult]:
    """Kuhn–Wattenhofer pipeline followed by connectification.

    Accepts either a networkx graph or (with ``backend="vectorized"``) a
    CSR :class:`~repro.simulator.bulk.BulkGraph`; in the latter case the
    whole chain -- fractional phase, rounding and connectification -- runs
    on CSR arrays and no networkx graph is ever materialised.

    Returns the connected dominating set together with the underlying
    pipeline result (for round/message accounting of the distributed part).
    """
    pipeline = kuhn_wattenhofer_dominating_set(graph, k=k, seed=seed, backend=backend)
    cds = connect_dominating_set(graph, pipeline.dominating_set)
    return cds, pipeline
