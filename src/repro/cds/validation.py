"""Connected dominating set validation and backbone statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

import networkx as nx
import numpy as np

from repro.domset.validation import is_dominating_set
from repro.graphs.utils import is_bulk_graph


def is_connected_dominating_set(graph: nx.Graph, candidate: Iterable[Hashable]) -> bool:
    """Whether ``candidate`` dominates ``graph`` and induces a connected subgraph.

    By convention a single-node candidate on a single-component graph is
    connected; the empty set is never a CDS of a non-empty graph.  For a
    *disconnected* input graph no connected dominating set exists (every
    component needs a dominator, and dominators in different components
    cannot be connected), so the function returns ``False``.

    ``graph`` may also be a CSR :class:`~repro.simulator.bulk.BulkGraph`;
    the domination and induced-connectivity checks then run as array
    sweeps without materialising a networkx object.
    """
    members = set(candidate)
    if not members:
        return False
    if is_bulk_graph(graph):
        from repro.cds.bulk import is_connected_dominating_set_bulk

        unknown = members - set(graph.nodes)
        if unknown:
            raise ValueError(
                f"candidate contains nodes not in the graph: {sorted(unknown)[:5]}"
            )
        flags = np.zeros(graph.n, dtype=bool)
        flags[graph.index_of(members)] = True
        return is_connected_dominating_set_bulk(graph, flags)
    if not is_dominating_set(graph, members):
        return False
    induced = graph.subgraph(members)
    return nx.is_connected(induced)


@dataclass(frozen=True)
class BackboneStatistics:
    """Routing-oriented statistics of a (connected) dominating backbone.

    Attributes
    ----------
    size:
        Number of backbone nodes.
    is_dominating:
        Whether the backbone dominates the graph.
    is_connected:
        Whether the backbone induces a connected subgraph.
    diameter:
        Diameter of the induced backbone (None when not connected).
    mean_backbone_degree:
        Average degree inside the backbone (how well-meshed the routers are).
    stretch:
        Worst-case ratio between the length of the backbone-constrained
        route and the shortest path in the full graph, over a sample of node
        pairs (None when not connected).  A backbone route goes from the
        source to an adjacent backbone node, across the backbone, and down
        to the target.
    """

    size: int
    is_dominating: bool
    is_connected: bool
    diameter: int | None
    mean_backbone_degree: float
    stretch: float | None


def backbone_statistics(
    graph: nx.Graph,
    backbone: Iterable[Hashable],
    sample_pairs: int = 50,
    seed: int = 0,
) -> BackboneStatistics:
    """Compute :class:`BackboneStatistics` for a candidate backbone.

    Parameters
    ----------
    graph:
        The full communication graph.
    backbone:
        The backbone (cluster head / router) nodes.
    sample_pairs:
        Number of random node pairs used for the stretch estimate.
    seed:
        Seed for the pair sample.

    ``graph`` may also be a CSR :class:`~repro.simulator.bulk.BulkGraph`:
    the statistics then come from CSR frontier BFS
    (:func:`repro.cds.bulk.backbone_statistics_bulk`) -- identical values
    (same pair sample, same hop counts), no networkx materialisation, so
    backbone reporting joins the rest of the bulk CDS path at n ≥ 20 000.
    """
    import random

    if is_bulk_graph(graph):
        from repro.cds.bulk import backbone_statistics_bulk

        return backbone_statistics_bulk(
            graph, backbone, sample_pairs=sample_pairs, seed=seed
        )

    members = set(backbone)
    dominating = bool(members) and is_dominating_set(graph, members)
    induced = graph.subgraph(members)
    connected = bool(members) and nx.is_connected(induced)

    diameter = None
    stretch = None
    if connected and len(members) > 0:
        diameter = nx.diameter(induced) if len(members) > 1 else 0

        # Stretch: route via the backbone vs. the direct shortest path.
        rng = random.Random(seed)
        nodes = sorted(graph.nodes())
        backbone_graph = graph.subgraph(members)
        worst = 1.0
        for _ in range(sample_pairs):
            source, target = rng.choice(nodes), rng.choice(nodes)
            if source == target or not nx.has_path(graph, source, target):
                continue
            direct = nx.shortest_path_length(graph, source, target)
            if direct == 0:
                continue
            source_heads = members.intersection({source, *graph.neighbors(source)})
            target_heads = members.intersection({target, *graph.neighbors(target)})
            if not source_heads or not target_heads:
                continue
            best_backbone = None
            for head_s in source_heads:
                for head_t in target_heads:
                    if nx.has_path(backbone_graph, head_s, head_t):
                        length = nx.shortest_path_length(backbone_graph, head_s, head_t)
                        hops = length + (source not in members) + (target not in members)
                        if best_backbone is None or hops < best_backbone:
                            best_backbone = hops
            if best_backbone is not None:
                worst = max(worst, best_backbone / direct)
        stretch = worst

    mean_degree = (
        sum(dict(induced.degree()).values()) / max(len(members), 1) if members else 0.0
    )
    return BackboneStatistics(
        size=len(members),
        is_dominating=dominating,
        is_connected=connected,
        diameter=diameter,
        mean_backbone_degree=mean_degree,
        stretch=stretch,
    )
