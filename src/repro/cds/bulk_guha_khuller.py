"""CSR-native Guha–Khuller greedy scan (bucket-queue).

The set-based implementation in :mod:`repro.cds.guha_khuller` re-derives
every gray node's white gain from scratch on every scan -- O(n · m) set
scans, which caps it at a few thousand nodes.  This module reproduces the
*identical* scan sequence on a :class:`~repro.simulator.bulk.BulkGraph`
with the same bucket-queue treatment as
:func:`repro.baselines.bulk_greedy.greedy_dominating_set_bulk`:

* per-node white gains live in an integer array; a scan updates them with
  one CSR gather plus one ``bincount`` (every neighbour of a node that
  stops being white loses one unit of gain);
* "pick the gray node with the maximum gain" uses one lazy min-heap per
  gain value, so ties still break by node id -- exactly the
  ``max(sorted(...), key=white_gain)`` rule of the reference (Python's
  ``max`` keeps the first maximum, i.e. the smallest identifier);
* unlike the plain greedy, candidates *join* the queue over time (white
  nodes become gray when a neighbour is scanned), and a newly gray node
  may out-gain every currently queued candidate -- the scan cursor
  therefore moves back up whenever an entry is filed above it.

Selection rule, tie-breaking and therefore the produced connected
dominating set are identical to
:func:`~repro.cds.guha_khuller.guha_khuller_connected_dominating_set` on
every connected input (CSR positions order like sorted identifiers by
construction).
"""

from __future__ import annotations

import heapq
from collections import defaultdict

import numpy as np

from repro.cds.bulk import (
    _gather_rows,
    bulk_is_connected,
    is_connected_dominating_set_bulk,
)
from repro.simulator.bulk import BulkGraph

WHITE, GRAY, BLACK = 0, 1, 2


def guha_khuller_connected_dominating_set_bulk(bulk: BulkGraph) -> frozenset:
    """Guha–Khuller greedy scan on a CSR graph with a bucket queue.

    Parameters
    ----------
    bulk:
        A connected CSR graph with at least one node.

    Returns
    -------
    frozenset
        The same connected dominating set the set-based
        :func:`~repro.cds.guha_khuller.guha_khuller_connected_dominating_set`
        selects (maximum white gain first, ties broken by node id).

    Raises
    ------
    ValueError
        If the graph is disconnected (no CDS exists).
    """
    if not bulk_is_connected(bulk):
        raise ValueError("a disconnected graph has no connected dominating set")
    if bulk.n == 1:
        return frozenset(bulk.nodes)

    n = bulk.n
    color = np.zeros(n, dtype=np.int8)
    # White gain = number of white *open* neighbours; everything starts
    # white, so gains start at the degrees.
    gains = bulk.degrees.astype(np.int64).copy()

    # One lazy min-heap of node indices per gain value (ids pushed in any
    # order; heapq keeps the smallest on top, matching the id tie-break).
    buckets: defaultdict[int, list[int]] = defaultdict(list)

    def scan(node: int) -> None:
        """Colour ``node`` black, its white neighbours gray, update gains."""
        was_white = color[node] == WHITE
        color[node] = BLACK
        neighbors = bulk.col[bulk.indptr[node] : bulk.indptr[node + 1]]
        newly_gray = neighbors[color[neighbors] == WHITE]
        color[newly_gray] = GRAY
        # Every node that stopped being white (the gray converts, plus the
        # scanned node itself on the very first scan) costs each of its
        # neighbours one unit of gain.
        stopped_white = (
            np.append(newly_gray, node) if was_white else newly_gray
        )
        if stopped_white.size:
            decrements = np.bincount(
                _gather_rows(bulk, stopped_white), minlength=n
            )
            changed = np.flatnonzero(decrements)
            gains[changed] -= decrements[changed]
        # New gray candidates enter the queue at their *current* gain.
        nonlocal cursor
        for candidate in newly_gray.tolist():
            gain = int(gains[candidate])
            if gain > 0:
                heapq.heappush(buckets[gain], candidate)
                if gain > cursor:
                    cursor = gain
        # Gray candidates whose gain changed get a fresh entry (stale ones
        # are skipped lazily on pop).
        if stopped_white.size:
            for moved in changed.tolist():
                if color[moved] == GRAY and gains[moved] > 0:
                    heapq.heappush(buckets[int(gains[moved])], moved)

    # First scan: the globally best node -- np.argmax returns the first
    # (smallest-id) maximum, the reference's tie-break.
    cursor = int(gains.max())
    scan(int(np.argmax(gains)))
    white_remaining = int(np.count_nonzero(color == WHITE))

    while white_remaining > 0:
        while cursor > 0 and not buckets.get(cursor):
            cursor -= 1
        if cursor <= 0:
            # While white nodes remain, connectivity guarantees some gray
            # node has a white neighbour -- running dry is an internal bug.
            raise RuntimeError(
                "Guha-Khuller ran out of gray candidates; internal error"
            )
        node = heapq.heappop(buckets[cursor])
        if color[node] != GRAY:
            continue
        gain = int(gains[node])
        if gain != cursor:
            # Stale entry: re-file at the true gain and retry.
            if gain > 0:
                heapq.heappush(buckets[gain], node)
            continue
        scan(node)
        white_remaining -= gain

    flags = color == BLACK
    if not is_connected_dominating_set_bulk(bulk, flags):
        raise RuntimeError("Guha-Khuller produced an invalid CDS (internal error)")
    return frozenset(bulk.nodes[index] for index in np.flatnonzero(flags))
