"""CSR-native connected dominating set construction and validation.

Mirrors :mod:`repro.cds.connectify` on a
:class:`~repro.simulator.bulk.BulkGraph`: the owner assignment, witness
edge enumeration and Kruskal merge run on CSR arrays, so end-to-end CDS
pipelines at the n ≥ 20 000 scale never materialise a networkx object.
The construction follows the exact deterministic specification of
:func:`repro.cds.connectify.connect_dominating_set` -- owners are smallest
dominators, witness edges sort by the same key -- so the two
implementations select the *identical* connected dominating set (CSR
positions order like sorted node identifiers by construction).
"""

from __future__ import annotations

import numpy as np

from repro.simulator.bulk import BulkGraph


def _gather_rows(bulk: BulkGraph, rows: np.ndarray) -> np.ndarray:
    """Concatenate the CSR adjacency rows of ``rows`` (multi-slice gather)."""
    counts = bulk.degrees[rows]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    block = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
    local = np.arange(total, dtype=np.int64) - offsets[block]
    return bulk.col[bulk.indptr[rows][block] + local]


def bulk_connected_components(
    bulk: BulkGraph, subset: np.ndarray | None = None
) -> np.ndarray:
    """Component label per node via CSR frontier BFS, O(n + m) total.

    ``subset`` restricts the traversal to the induced subgraph on the
    flagged nodes; excluded nodes are labelled −1.  Labels are assigned in
    ascending order of each component's smallest node.  Frontiers are
    index arrays (each node enters one frontier once, each adjacency row
    is gathered once), so heavily fragmented graphs -- thousands of
    components at n ≥ 20 000 -- cost the same linear sweep as connected
    ones.
    """
    include = (
        np.ones(bulk.n, dtype=bool)
        if subset is None
        else np.asarray(subset, dtype=bool)
    )
    labels = np.full(bulk.n, -1, dtype=np.int64)
    unvisited = include.copy()
    current = 0
    cursor = 0
    while True:
        # The seed cursor only moves forward: amortized O(n) over all
        # components (no per-component full-array scan).
        while cursor < bulk.n and not unvisited[cursor]:
            cursor += 1
        if cursor >= bulk.n:
            break
        frontier = np.array([cursor], dtype=np.int64)
        unvisited[cursor] = False
        labels[cursor] = current
        while frontier.size:
            neighbors = _gather_rows(bulk, frontier)
            fresh = neighbors[unvisited[neighbors]]
            if fresh.size == 0:
                break
            unvisited[fresh] = False
            frontier = np.unique(fresh)
            labels[frontier] = current
        current += 1
    return labels


def bulk_is_connected(bulk: BulkGraph, subset: np.ndarray | None = None) -> bool:
    """Whether the (induced) graph is connected; empty subsets are not."""
    include = (
        np.ones(bulk.n, dtype=bool)
        if subset is None
        else np.asarray(subset, dtype=bool)
    )
    count = int(include.sum())
    if count == 0:
        return False
    labels = bulk_connected_components(bulk, include)
    return int(labels.max()) == 0


def bulk_largest_component(bulk: BulkGraph) -> BulkGraph:
    """The induced subgraph on the largest connected component.

    Nodes are relabelled 0..n'−1 in ascending order of their original
    positions (the CSR analogue of
    ``networkx.convert_node_labels_to_integers`` after a component
    extraction) -- the standard preprocessing step for CDS experiments,
    which are only defined on connected graphs.
    """
    labels = bulk_connected_components(bulk)
    counts = np.bincount(labels)
    keep = labels == int(counts.argmax())
    positions = np.flatnonzero(keep)
    relabel = np.full(bulk.n, -1, dtype=np.int64)
    relabel[positions] = np.arange(positions.size, dtype=np.int64)
    mask = keep[bulk.row] & keep[bulk.col] & (bulk.row < bulk.col)
    return BulkGraph.from_edges(
        positions.size, relabel[bulk.row[mask]], relabel[bulk.col[mask]]
    )


def bulk_bfs_distances(
    bulk: BulkGraph,
    sources: np.ndarray,
    subset: np.ndarray | None = None,
) -> np.ndarray:
    """Multi-source BFS hop distances on the CSR, O(n + m) total.

    Returns one distance per node: 0 for the sources, the hop count of
    the nearest source otherwise, −1 for unreachable (or excluded)
    nodes.  ``subset`` restricts the traversal to the induced subgraph on
    the flagged nodes (sources outside the subset are dropped) -- the
    substrate for backbone diameter/eccentricity and for
    backbone-constrained routing distances, replacing the
    ``networkx.shortest_path_length`` calls of the dense path.
    """
    include = (
        np.ones(bulk.n, dtype=bool)
        if subset is None
        else np.asarray(subset, dtype=bool)
    )
    distances = np.full(bulk.n, -1, dtype=np.int64)
    frontier = np.unique(np.asarray(sources, dtype=np.int64))
    frontier = frontier[include[frontier]]
    distances[frontier] = 0
    depth = 0
    while frontier.size:
        depth += 1
        neighbors = _gather_rows(bulk, frontier)
        fresh = np.unique(
            neighbors[include[neighbors] & (distances[neighbors] < 0)]
        )
        distances[fresh] = depth
        frontier = fresh
    return distances


def is_connected_dominating_set_bulk(bulk: BulkGraph, flags: np.ndarray) -> bool:
    """CSR version of :func:`repro.cds.validation.is_connected_dominating_set`."""
    flags = np.asarray(flags, dtype=bool)
    if not flags.any():
        return False
    if not bulk.is_dominating_set(flags):
        return False
    return bulk_is_connected(bulk, flags)


def connect_dominating_set_bulk(bulk: BulkGraph, flags: np.ndarray) -> np.ndarray:
    """Add connectors until the flagged dominating set induces a connected graph.

    Parameters
    ----------
    bulk:
        The (connected) communication graph.
    flags:
        Boolean member flags of a valid dominating set, indexed like
        ``bulk.nodes``.

    Returns
    -------
    numpy.ndarray
        Boolean flags of a connected dominating set containing the input,
        of size at most ``3·|S|`` -- the same set
        :func:`repro.cds.connectify.connect_dominating_set` produces.

    Raises
    ------
    ValueError
        If the input is not a dominating set or the graph is disconnected.
    """
    flags = np.asarray(flags, dtype=bool)
    if not bulk.is_dominating_set(flags):
        raise ValueError("input is not a dominating set")
    if not bulk_is_connected(bulk):
        raise ValueError("a disconnected graph has no connected dominating set")
    members = np.flatnonzero(flags)
    if members.size <= 1:
        return flags.copy()

    # Step 1: owner per node -- itself for members, else the smallest
    # (first, in the ascending CSR row) dominating neighbour.
    owner_candidates = np.where(flags[bulk.col], bulk.col, bulk.n)
    owner = np.full(bulk.n, bulk.n, dtype=np.int64)
    nonempty = np.flatnonzero(bulk.degrees > 0)
    if bulk.col.size:
        owner[nonempty] = np.minimum.reduceat(
            owner_candidates, bulk.indptr[nonempty]
        )
    owner[flags] = members

    # Step 2: witness edges (u < v, different owners) with the Kruskal key
    # (connector cost, owner pair, endpoint pair).
    half = bulk.row < bulk.col
    u, v = bulk.row[half], bulk.col[half]
    differs = owner[u] != owner[v]
    u, v = u[differs], v[differs]
    cost = (~flags[u]).astype(np.int64) + (~flags[v]).astype(np.int64)
    owner_low = np.minimum(owner[u], owner[v])
    owner_high = np.maximum(owner[u], owner[v])
    order = np.lexsort((v, u, owner_high, owner_low, cost))

    # Step 3: Kruskal over the member clusters (union-find on positions).
    parent = np.arange(bulk.n, dtype=np.int64)

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = int(parent[node])
        return node

    result = flags.copy()
    components = members.size
    for index in order:
        root_a = find(int(owner_low[index]))
        root_b = find(int(owner_high[index]))
        if root_a == root_b:
            continue
        parent[root_b] = root_a
        result[u[index]] = True
        result[v[index]] = True
        components -= 1
        if components == 1:
            break
    if components != 1:
        raise RuntimeError("failed to connect dominating set components")

    if not is_connected_dominating_set_bulk(bulk, result):
        raise RuntimeError("connectification produced an invalid CDS (internal error)")
    return result


def backbone_statistics_bulk(
    bulk: BulkGraph,
    backbone,
    sample_pairs: int = 50,
    seed: int = 0,
):
    """CSR implementation of :func:`repro.cds.validation.backbone_statistics`.

    Produces the identical :class:`~repro.cds.validation.BackboneStatistics`
    as the networkx path on the equivalent graph: the diameter comes from
    one BFS per backbone node over the induced backbone, the stretch
    sample draws the same ``random.Random(seed)`` node pairs (``bulk``
    stores nodes sorted, matching the dense path's ordering), and each
    pair's backbone route is one multi-source BFS from the source's
    adjacent backbone heads -- the exact minimum the dense path takes
    over all (source head, target head) combinations.  No networkx object
    is ever materialised.
    """
    import random

    from repro.cds.validation import BackboneStatistics
    from repro.domset.validation import is_dominating_set

    members = set(backbone)
    dominating = bool(members) and is_dominating_set(bulk, members)
    flags = np.zeros(bulk.n, dtype=bool)
    if members:
        flags[bulk.index_of(members & set(bulk.nodes))] = True
    member_positions = np.flatnonzero(flags)
    connected = bool(members) and bulk_is_connected(bulk, flags)

    diameter = None
    stretch = None
    if connected and member_positions.size > 0:
        if member_positions.size > 1:
            diameter = 0
            for position in member_positions.tolist():
                distances = bulk_bfs_distances(
                    bulk, np.array([position]), subset=flags
                )
                diameter = max(diameter, int(distances[member_positions].max()))
        else:
            diameter = 0

        # Stretch: route via the backbone vs. the direct shortest path --
        # same RNG, same node ordering, hence the same sampled pairs as
        # the dense implementation.
        rng = random.Random(seed)
        nodes = list(bulk.nodes)
        worst = 1.0
        for _ in range(sample_pairs):
            source, target = rng.choice(nodes), rng.choice(nodes)
            if source == target:
                continue
            source_position = int(bulk.index_of([source])[0])
            target_position = int(bulk.index_of([target])[0])
            direct_distances = bulk_bfs_distances(
                bulk, np.array([source_position])
            )
            direct = int(direct_distances[target_position])
            if direct <= 0:
                continue
            source_heads = _closed_member_positions(bulk, source_position, flags)
            target_heads = _closed_member_positions(bulk, target_position, flags)
            if source_heads.size == 0 or target_heads.size == 0:
                continue
            backbone_distances = bulk_bfs_distances(
                bulk, source_heads, subset=flags
            )
            reachable = backbone_distances[target_heads]
            reachable = reachable[reachable >= 0]
            if reachable.size == 0:
                continue
            hops = (
                int(reachable.min())
                + int(not flags[source_position])
                + int(not flags[target_position])
            )
            worst = max(worst, hops / direct)
        stretch = worst

    if member_positions.size:
        induced_degrees = bulk.neighbor_count(flags)[member_positions]
        mean_degree = float(induced_degrees.sum()) / member_positions.size
    else:
        mean_degree = 0.0
    return BackboneStatistics(
        size=len(members),
        is_dominating=dominating,
        is_connected=connected,
        diameter=diameter,
        mean_backbone_degree=mean_degree,
        stretch=stretch,
    )


def _closed_member_positions(
    bulk: BulkGraph, position: int, flags: np.ndarray
) -> np.ndarray:
    """Backbone positions in the closed neighbourhood of ``position``."""
    closed = np.append(
        bulk.col[bulk.indptr[position] : bulk.indptr[position + 1]], position
    )
    return closed[flags[closed]]
