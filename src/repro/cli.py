"""Command-line interface.

Installed as ``repro-domset`` (see ``pyproject.toml``); also runnable as
``python -m repro``.  Sub-commands:

* ``solve``   -- run one registered algorithm (default: the
  Kuhn–Wattenhofer pipeline) on one generated graph and print the
  dominating set plus its quality report.
* ``compare`` -- run every algorithm the registry marks for comparison on
  one graph (or a whole suite) and print a comparison table.
* ``sweep``   -- sweep the locality parameter k for the fractional
  algorithms on one graph and print ratio / round tables.
* ``tradeoff`` -- the paper's k-vs-quality trade-off curve: measured ratio
  between the Theorem-6 upper bound and the KMW lower-bound shape, all k
  values evaluated from one fractional snapshot-engine execution.
* ``cds``     -- compare connected dominating set backbones (KW+connect,
  Wu–Li, greedy+connect, Guha–Khuller).
* ``faults``  -- sweep fault-injection rates (Bernoulli message loss +
  crash-stop failures) over the pipeline with the self-healing repair
  phase on, and print the degradation table: repaired size vs. the
  fault-free baseline, coverage deficit, patch cost, crash/drop totals.
* ``certify`` -- run one algorithm and verify an LP duality
  *certificate* for its quality: primal feasibility of the produced
  set, dual feasibility of the Lemma-1 assignment, the weak duality
  gap and the certified approximation ratio -- through the matrix-free
  sparse formulation at scale.
* ``trace``   -- run a trace-capable algorithm with ``collect_trace=True``
  (on either backend) and print the per-phase observability report plus
  the Lemma 2-7 invariant verdict.
* ``serve``   -- run the async solve service over a JSONL request
  script (one request object per line, ``-`` for stdin): requests are
  submitted as one burst through the content-addressed cache and the
  coalescing scheduler, and answered as JSON lines in submission order.
* ``loadgen`` -- build the standard mixed workload (multi-k sweeps,
  repeats, fault scenarios), drive it through a fresh service, and print
  the load report: throughput, p50/p99 latency, cache hit rate,
  coalescing factor, and bitwise parity against direct solves.
* ``algorithms`` -- list the registry: every algorithm with its backends
  and capability flags.
* ``bounds``  -- print the paper's closed-form bounds for given (k, Δ).

Every algorithm-running sub-command accepts ``--backend`` with the
default ``auto``: the :mod:`repro.api` registry resolves the execution
engine per algorithm capabilities and input, so CSR suites
(``--suite xlarge`` / ``huge``) and large graphs run vectorized without
any flag, and ``--backend simulated`` / ``vectorized`` / ``sharded``
force an engine explicitly.  ``--shards N`` (solve, compare, sweep,
tradeoff) requests the multiprocess sharded engine with N workers;
algorithms without sharded support report a clean capability error.

The CLI is a thin enumeration of the :mod:`repro.api` registry: there is
no per-algorithm wiring here, so registering a new algorithm makes it
reachable from ``solve --algorithm`` and ``compare`` automatically.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.bounds import (
    algorithm2_approximation_bound,
    algorithm2_round_bound,
    algorithm3_approximation_bound,
    algorithm3_round_bound,
    pipeline_expected_ratio_bound,
    rounding_expectation_bound,
)
from repro.analysis.experiment import (
    DEFAULT_FAULT_RATES,
    as_instances,
    compare_algorithms,
    sweep_cds,
    sweep_faults,
    sweep_fractional,
    sweep_tradeoff,
)
from repro.analysis.tables import records_to_csv, render_table
from repro.analysis.trace_report import trace_report
from repro.core.invariants import (
    check_algorithm2_invariants,
    check_algorithm3_invariants,
)
from repro.api import (
    AUTO,
    DISPATCH_BACKENDS,
    SHARDED,
    SIMULATED,
    CapabilityError,
    algorithm_names,
    get_spec,
    iter_specs,
    solve as api_solve,
)
from repro.core.kuhn_wattenhofer import FractionalVariant
from repro.domset.quality import quality_report
from repro.graphs.generators import GraphFamily, graph_suite, make_graph
from repro.graphs.utils import max_degree


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by every sub-command that generates a graph."""
    parser.add_argument(
        "--family",
        choices=[family.value for family in GraphFamily],
        default=GraphFamily.UNIT_DISK.value,
        help="graph family to generate (default: unit_disk)",
    )
    parser.add_argument("--n", type=int, default=80, help="number of nodes")
    parser.add_argument(
        "--radius", type=float, default=0.18, help="unit disk transmission radius"
    )
    parser.add_argument(
        "--p", type=float, default=0.05, help="edge probability (Erdős–Rényi)"
    )
    parser.add_argument("--degree", type=int, default=6, help="degree (random regular)")
    parser.add_argument("--seed", type=int, default=0, help="randomness seed")
    parser.add_argument(
        "--backend",
        choices=list(DISPATCH_BACKENDS),
        default=AUTO,
        help=(
            "execution backend: 'auto' (default) resolves per algorithm "
            "capabilities and input -- vectorized for CSR/large graphs, "
            "simulated otherwise; 'simulated' forces per-node message "
            "passing (traces, message-level fidelity), 'vectorized' forces "
            "the bulk-synchronous array engine (same results, much faster)"
        ),
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "process-pool width for parallelizing across graph instances "
            "(default: 1, no pool)"
        ),
    )
    parser.add_argument(
        "--suite",
        choices=["tiny", "small", "medium", "large", "xlarge", "huge"],
        default=None,
        help=(
            "run over a whole graph_suite scale instead of one generated "
            "graph; overrides --family/--n/--radius/--p/--degree "
            "(xlarge and huge instances are CSR-native; the default "
            "--backend auto runs xlarge vectorized and huge sharded when "
            "multiple CPUs are available)"
        ),
    )


def _add_shards_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "worker-process count for the sharded engine; implies "
            "--backend sharded under the default auto (algorithms without "
            "sharded support fail with a capability error)"
        ),
    )


def _add_lp_method_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lp-method",
        choices=["highs", "pdhg", "mwu"],
        default="highs",
        help=(
            "LP solver for the fractional optimum: exact HiGHS (default) "
            "or a certified first-order method (pdhg/mwu) -- much faster "
            "on solver-bound instances at n >= 20000 and the only option "
            "at n >= 1e6, at the cost of an eps-certified (not exact) "
            "optimum"
        ),
    )
    parser.add_argument(
        "--lp-tol",
        type=float,
        default=1e-3,
        help=(
            "certified relative duality gap for --lp-method pdhg/mwu "
            "(default: 1e-3; ignored by highs)"
        ),
    )


def _build_graph(args: argparse.Namespace):
    return make_graph(
        args.family,
        seed=args.seed,
        n=args.n,
        radius=args.radius,
        p=args.p,
        degree=args.degree,
    )


def _registry_params(spec, args: argparse.Namespace) -> dict:
    """Forward the generic options the spec declares (no per-algorithm
    wiring: a newly registered k-accepting algorithm only declares
    ``cli_params=("k",)`` and the CLI picks it up)."""
    params = {}
    if "k" in spec.cli_params and args.k is not None:
        params["k"] = args.k
    if "variant" in spec.cli_params:
        params["variant"] = FractionalVariant(
            args.variant or FractionalVariant.UNKNOWN_DELTA.value
        )
    for option, given in (("k", args.k), ("variant", args.variant)):
        if given is not None and option not in spec.cli_params:
            print(
                f"note: --{option} is not used by algorithm {spec.name!r}; "
                "ignoring",
                file=sys.stderr,
            )
    return params


def _command_solve(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    spec = get_spec(args.algorithm)
    params = _registry_params(spec, args)
    if args.shards is not None:
        params["shards"] = args.shards
    try:
        report = api_solve(
            spec, graph, backend=args.backend, seed=args.seed, **params
        )
    except (CapabilityError, ValueError) as error:
        # Unsatisfiable capability combinations and invalid inputs (e.g. a
        # disconnected graph handed to a CDS algorithm) are CLI errors,
        # not tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2
    quality = quality_report(graph, report.dominating_set, solve_lp=not args.no_lp)
    payload = {
        "n": graph.number_of_nodes(),
        "algorithm": report.algorithm,
        "backend": report.backend,
        "max_degree": max_degree(graph),
        # Runners report the k they resolved (pipelines pick Θ(log Δ) when
        # unset); algorithms without a k report null.
        "k": report.params.get("k"),
        "dominating_set_size": report.size,
        "total_rounds": report.total_rounds,
        "total_messages": report.total_messages,
        "max_message_bits": report.max_message_bits,
        "lp_optimum": quality.lp_optimum,
        "ratio_vs_lp": quality.ratio_vs_lp,
        "dual_lower_bound": quality.dual_lower_bound,
        "ratio_vs_dual": quality.ratio_vs_dual,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_table([payload], title=f"{report.algorithm} ({report.backend})"))
        if args.show_set:
            print("dominating set:", sorted(report.dominating_set))
    return 0


#: CSR-native suite scales: these instances never exist as networkx
#: graphs, so the simulated per-node engine cannot run them.
_CSR_SUITES = ("xlarge", "huge")


def _reject_simulated_xlarge(args: argparse.Namespace) -> bool:
    """Reject --backend simulated on CSR suites before paying the
    n >= 20000 (or n >= 10^6) suite construction; the default
    ``--backend auto`` resolves CSR instances to an array engine."""
    suite = getattr(args, "suite", None)
    if suite in _CSR_SUITES and args.backend == SIMULATED:
        print(
            f"error: --suite {suite} instances are CSR-native and cannot "
            "run on --backend simulated; use --backend vectorized or "
            "sharded (or the default, auto)",
            file=sys.stderr,
        )
        return True
    return False


def _build_instances(args: argparse.Namespace):
    """One generated graph, or a whole suite when ``--suite`` is given."""
    if getattr(args, "suite", None):
        return as_instances(graph_suite(args.suite, seed=args.seed))
    return as_instances({"instance": _build_graph(args)})


def _command_compare(args: argparse.Namespace) -> int:
    if _reject_simulated_xlarge(args):
        return 2
    instances = _build_instances(args)
    try:
        records = compare_algorithms(
            instances,
            algorithms=args.algorithm or None,
            trials=args.trials,
            seed=args.seed,
            jobs=args.jobs,
            backend=args.backend,
            overrides={"kuhn-wattenhofer": {"k": args.k}},
            sparse_lp=args.sparse_lp,
            lp_method=args.lp_method,
            lp_tol=args.lp_tol,
            shards=args.shards,
        )
    except (CapabilityError, ValueError) as error:
        # An explicitly requested algorithm/backend combination that no
        # engine satisfies (or invalid inputs): a CLI error, not a
        # traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = [record.as_row() for record in records]
    if args.csv:
        print(records_to_csv(rows))
    else:
        print(render_table(rows, title="Algorithm comparison"))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    if _reject_simulated_xlarge(args):
        return 2
    instances = _build_instances(args)
    k_values = list(range(1, args.max_k + 1))
    variant = FractionalVariant(args.variant)
    try:
        records = sweep_fractional(
            instances,
            k_values,
            variant=variant,
            seed=args.seed,
            backend=args.backend,
            jobs=args.jobs,
            shards=args.shards,
        )
    except (CapabilityError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = [record.as_row() for record in records]
    if args.csv:
        print(records_to_csv(rows))
    else:
        print(render_table(rows, title=f"k sweep ({variant.value})"))
    return 0


def _command_tradeoff(args: argparse.Namespace) -> int:
    if _reject_simulated_xlarge(args):
        return 2
    instances = _build_instances(args)
    k_values = list(range(1, args.max_k + 1))
    try:
        records = sweep_tradeoff(
            instances,
            k_values,
            trials=args.trials,
            variant=FractionalVariant(args.variant),
            seed=args.seed,
            backend=args.backend,
            jobs=args.jobs,
            sparse_lp=args.sparse_lp,
            lp_method=args.lp_method,
            lp_tol=args.lp_tol,
            shards=args.shards,
        )
    except (CapabilityError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = [record.as_row() for record in records]
    if args.csv:
        print(records_to_csv(rows))
    else:
        print(
            render_table(
                rows,
                title="k-vs-quality trade-off (measured vs. Thm 6 / KMW shapes)",
            )
        )
    return 0


def _command_cds(args: argparse.Namespace) -> int:
    if _reject_simulated_xlarge(args):
        return 2
    instances = _build_instances(args)
    # CDS experiments are only defined on connected graphs; restrict every
    # instance to its largest component up front.
    connected = []
    for instance in instances:
        graph = instance.graph
        if instance.is_bulk:
            from repro.cds.bulk import bulk_is_connected, bulk_largest_component

            if not bulk_is_connected(graph):
                graph = bulk_largest_component(graph)
        else:
            import networkx as nx

            if not nx.is_connected(graph):
                component = max(nx.connected_components(graph), key=len)
                graph = nx.convert_node_labels_to_integers(
                    graph.subgraph(component).copy()
                )
        connected.append(type(instance)(name=instance.name, graph=graph))
    records = sweep_cds(
        connected, k=args.k, seed=args.seed, backend=args.backend, jobs=args.jobs
    )
    rows = [record.as_row() for record in records]
    if args.csv:
        print(records_to_csv(rows))
    else:
        print(render_table(rows, title="Connected dominating set backbones"))
    return 0


def _parse_fault_rates(pairs: "list[str] | None"):
    """Parse repeated ``--rate LOSS,CRASH`` options (None = default grid)."""
    if not pairs:
        return DEFAULT_FAULT_RATES
    rates = []
    for pair in pairs:
        parts = pair.split(",")
        if len(parts) != 2:
            raise ValueError(
                f"--rate expects LOSS,CRASH (two comma-separated "
                f"probabilities); got {pair!r}"
            )
        rates.append((float(parts[0]), float(parts[1])))
    return rates


def _command_faults(args: argparse.Namespace) -> int:
    if _reject_simulated_xlarge(args):
        return 2
    try:
        rates = _parse_fault_rates(args.rate)
        records = sweep_faults(
            _build_instances(args),
            fault_rates=rates,
            k=args.k,
            trials=args.trials,
            variant=FractionalVariant(args.variant),
            seed=args.seed,
            backend=args.backend,
            jobs=args.jobs,
            shards=args.shards,
        )
    except (CapabilityError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = [record.as_row() for record in records]
    if args.csv:
        print(records_to_csv(rows))
    else:
        print(
            render_table(
                rows, title="Fault-injection degradation (self-healing repair on)"
            )
        )
    return 0


def _command_certify(args: argparse.Namespace) -> int:
    """Run one algorithm and *certify* its quality by LP duality.

    Unlike ``solve`` (which trusts the Lemma-1 bound), this verifies the
    whole chain: the produced set is checked against the LP constraint
    system as a primal point, the Lemma-1 dual assignment is checked
    feasible for DLP_MDS, and the reported lower bound / gap / ratio are
    therefore *certificates*, not estimates.  Graphs at or above the
    auto-vectorize threshold certify through the matrix-free CSR
    formulation (:mod:`repro.lp.sparse`), so ``--n 20000`` works without
    ever building the dense n × n constraint matrix.
    """
    from repro.api import AUTO_VECTORIZE_THRESHOLD
    from repro.lp.duality import lemma1_dual_solution, weak_duality_gap
    from repro.lp.feasibility import check_dual_feasible, check_primal_feasible
    from repro.lp.formulation import build_lp
    from repro.lp.solver import solve_weighted_fractional_mds
    from repro.simulator.bulk import BulkGraph

    graph = _build_graph(args)
    spec = get_spec(args.algorithm)
    params = _registry_params(spec, args)
    try:
        report = api_solve(
            spec, graph, backend=args.backend, seed=args.seed, **params
        )
    except (CapabilityError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    # The certification substrate: matrix-free CSR at scale, dense below.
    n = graph.number_of_nodes()
    certify_on = (
        BulkGraph.from_graph(graph) if n >= AUTO_VECTORIZE_THRESHOLD else graph
    )
    lp = build_lp(certify_on)
    x = {node: 1.0 for node in report.dominating_set}
    primal_ok, primal_violation = check_primal_feasible(
        lp, x, tolerance=1e-9, return_violation=True
    )
    y = lemma1_dual_solution(certify_on)
    dual_ok, dual_violation = check_dual_feasible(
        lp, y, tolerance=1e-9, return_violation=True
    )
    gap = weak_duality_gap(lp, x, y) if dual_ok else None
    dual_bound = lp.dual_objective(y)

    lp_optimum = None
    lp_certified_gap = None
    if not args.no_lp:
        lp_solution = solve_weighted_fractional_mds(
            certify_on, weights=None, method=args.lp_method, tol=args.lp_tol
        )
        lp_optimum = lp_solution.objective
        if lp_solution.certificate is not None:
            lp_certified_gap = lp_solution.certificate.gap

    payload = {
        "n": n,
        "algorithm": report.algorithm,
        "backend": report.backend,
        "formulation": "sparse-csr" if isinstance(certify_on, BulkGraph) else "dense",
        "dominating_set_size": report.size,
        "primal_feasible": bool(primal_ok),
        "max_primal_violation": primal_violation,
        "dual_feasible": bool(dual_ok),
        "max_dual_violation": dual_violation,
        "certified_lower_bound": dual_bound,
        "weak_duality_gap": gap,
        "certified_ratio": report.size / dual_bound if dual_bound > 0 else None,
        "lp_method": args.lp_method,
        "lp_optimum": lp_optimum,
        "lp_certified_gap": lp_certified_gap,
        "ratio_vs_lp": report.size / lp_optimum
        if lp_optimum and lp_optimum > 0
        else None,
    }
    certified = bool(primal_ok and dual_ok)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            render_table(
                [payload],
                title=f"LP duality certificate: {report.algorithm} ({report.backend})",
            )
        )
        print("certificate:", "VALID" if certified else "INVALID")
    return 0 if certified else 1


def _command_trace(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    spec = get_spec(args.algorithm)
    params = _registry_params(spec, args)
    try:
        report = api_solve(
            spec,
            graph,
            backend=args.backend,
            seed=args.seed,
            collect_trace=True,
            **params,
        )
    except (CapabilityError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    fractional = report.raw.fractional
    observability = trace_report(fractional.trace, fractional.metrics)

    # The weighted variant's cost-scaled x-values don't satisfy the
    # unweighted Lemma 2-7 statements verbatim, so the invariant verdict
    # only applies to the plain pipeline.
    invariants = None
    if spec.name == "kuhn-wattenhofer" and not args.no_invariants:
        variant = params.get("variant", FractionalVariant.UNKNOWN_DELTA)
        if variant is FractionalVariant.KNOWN_DELTA:
            invariants = check_algorithm2_invariants(graph, fractional.trace, fractional.k)
        else:
            invariants = check_algorithm3_invariants(graph, fractional.trace, fractional.k)

    trace_kind = type(fractional.trace).__name__
    if args.json:
        payload = {
            "n": graph.number_of_nodes(),
            "algorithm": report.algorithm,
            "backend": report.backend,
            "k": report.params.get("k"),
            "trace": trace_kind,
            "events": len(fractional.trace),
            "report": observability.to_dict(),
        }
        if invariants is not None:
            payload["invariants"] = {
                "checked": invariants.checked,
                "ok": invariants.ok,
                "violations": [str(violation) for violation in invariants.violations],
            }
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"{report.algorithm} ({report.backend}, k={report.params.get('k')}): "
            f"{len(fractional.trace)} events in a {trace_kind}"
        )
        print(observability.render())
        if invariants is not None:
            verdict = "OK" if invariants.ok else "VIOLATED"
            print(f"invariants (Lemmas over {invariants.checked} checks): {verdict}")
            for violation in invariants.violations:
                print(f"  {violation}")
    return 0 if invariants is None or invariants.ok else 1


def _command_algorithms(args: argparse.Namespace) -> int:
    rows = []
    for spec in iter_specs():
        rows.append(
            {
                "algorithm": spec.name,
                "backends": "+".join(spec.backends),
                "bulk": spec.accepts_bulk,
                "sharded": spec.supports_backend(SHARDED),
                "weighted": spec.weighted,
                "cds": spec.produces_cds,
                "trace": "+".join(spec.trace_backends) if spec.trace_backends else "-",
                "faults": spec.supports_faults,
                "multi_k": spec.supports_multi_k,
                "summary": spec.summary,
            }
        )
    print(render_table(rows, title="Registered algorithms"))
    return 0


def _package_version() -> str:
    """Installed distribution version, else the in-tree ``__version__``.

    The repository is routinely used straight from a source checkout
    (``PYTHONPATH=src``) where no distribution metadata exists, so
    ``importlib.metadata`` lookup falls back to :data:`repro.__version__`.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro-kuhn-wattenhofer")
    except PackageNotFoundError:
        from repro import __version__

        return __version__


def _load_request_lines(path: str) -> list[dict]:
    """Parse one request object per non-empty line (``-`` reads stdin)."""
    if path == "-":
        text = sys.stdin.read()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    requests = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise SystemExit(f"serve: line {number}: invalid JSON ({error})")
        if not isinstance(record, dict):
            raise SystemExit(f"serve: line {number}: expected a JSON object")
        requests.append(record)
    return requests


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import SolveService
    from repro.simulator.fault_schedule import FaultSpec

    records = _load_request_lines(args.requests)
    if not records:
        print("serve: no requests", file=sys.stderr)
        return 1

    # Identical graph descriptions share one graph object, so repeated
    # request lines hash (and coalesce) against the same fingerprint
    # without re-generating or re-digesting the graph.
    graphs: dict = {}

    def build_graph(record: dict, number: int):
        family = record.get("family", GraphFamily.UNIT_DISK.value)
        graph_seed = int(record.get("graph_seed", 0))
        graph_params = dict(record.get("graph_params", {}))
        if "n" in record:
            graph_params.setdefault("n", int(record["n"]))
        identity = (family, graph_seed, tuple(sorted(graph_params.items())))
        if identity not in graphs:
            try:
                graphs[identity] = make_graph(family, seed=graph_seed, **graph_params)
            except (TypeError, ValueError) as error:
                raise SystemExit(f"serve: request {number}: bad graph ({error})")
        return graphs[identity]

    workload = []
    for number, record in enumerate(records, start=1):
        params = dict(record.get("params", {}))
        if "k" in record:
            params.setdefault("k", int(record["k"]))
        if isinstance(params.get("faults"), dict):
            params["faults"] = FaultSpec(**params["faults"])
        workload.append(
            {
                "algorithm": record.get("algorithm", "kuhn-wattenhofer"),
                "graph": build_graph(record, number),
                "backend": record.get("backend", AUTO),
                "seed": record.get("seed"),
                "params": params,
            }
        )

    async def run():
        async with SolveService(
            max_batch=args.max_batch, workers=args.workers
        ) as service:
            reports = await service.solve_many(
                workload, timeout=args.timeout, return_exceptions=True
            )
            return reports, service.stats()

    reports, stats = asyncio.run(run())
    failures = 0
    for request, report in zip(workload, reports):
        if isinstance(report, BaseException):
            failures += 1
            print(
                json.dumps(
                    {
                        "algorithm": request["algorithm"],
                        "error": f"{type(report).__name__}: {report}",
                    }
                )
            )
            continue
        print(
            json.dumps(
                {
                    "algorithm": report.algorithm,
                    "backend": report.backend,
                    "objective": report.objective,
                    "size": len(report.dominating_set),
                    "rounds": report.rounds,
                    "messages": report.messages,
                    "seed": report.seed,
                    "params": {
                        name: getattr(value, "value", value)
                        if not isinstance(value, (int, float, str, bool, type(None)))
                        else value
                        for name, value in report.params.items()
                    },
                }
                , default=repr)
        )
    if args.stats:
        print(json.dumps({"stats": stats}, default=repr))
    return 1 if failures else 0


def _command_loadgen(args: argparse.Namespace) -> int:
    from repro.service import run_load

    report = run_load(
        n=args.n,
        graphs=args.graphs,
        k_values=tuple(range(1, args.max_k + 1)),
        repeats=args.repeats,
        fault_requests=args.fault_requests,
        seed=args.seed,
        workers=args.workers,
        max_batch=args.max_batch,
        passes=args.passes,
        verify=not args.no_verify,
    )
    if args.json:
        print(json.dumps(report, indent=2, default=repr))
    else:
        latency = report["latency"]
        rows = [
            {
                "requests": report["requests"],
                "distinct": report["distinct_requests"],
                "req_per_s": round(report["requests_per_s"], 2),
                "p50_ms": round(latency["p50_s"] * 1e3, 2),
                "p99_ms": round(latency["p99_s"] * 1e3, 2),
                "hit_rate": round(report["cache_hit_rate"], 3),
                "coalescing": round(report["coalescing_factor"], 3),
                "joins": report["inflight_joins"],
                "parity": report.get("objective_match", "skipped"),
            }
        ]
        print(render_table(rows, title="Service load report"))
    if not args.no_verify and not report["objective_match"]:
        print("loadgen: PARITY FAILURE -- service answers diverged", file=sys.stderr)
        return 1
    return 0


def _command_bounds(args: argparse.Namespace) -> int:
    rows = []
    for k in range(1, args.max_k + 1):
        rows.append(
            {
                "k": k,
                "alg2_ratio_bound": algorithm2_approximation_bound(k, args.delta),
                "alg2_rounds": algorithm2_round_bound(k),
                "alg3_ratio_bound": algorithm3_approximation_bound(k, args.delta),
                "alg3_rounds": algorithm3_round_bound(k),
                "rounding_factor": rounding_expectation_bound(1.0, args.delta),
                "pipeline_ratio_bound": pipeline_expected_ratio_bound(k, args.delta),
            }
        )
    print(render_table(rows, title=f"Paper bounds for Δ = {args.delta}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-domset",
        description=(
            "Distributed dominating set approximation "
            "(Kuhn & Wattenhofer, PODC 2003) -- reproduction CLI"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser(
        "solve", help="run one registered algorithm on one graph"
    )
    _add_graph_arguments(solve)
    _add_shards_argument(solve)
    solve.add_argument(
        "--algorithm",
        choices=list(algorithm_names()),
        default="kuhn-wattenhofer",
        help="registered algorithm to run (default: the paper's pipeline)",
    )
    solve.add_argument("--k", type=int, default=None, help="locality parameter")
    solve.add_argument(
        "--variant",
        choices=[variant.value for variant in FractionalVariant],
        default=None,
        help="fractional variant (default: unknown_delta)",
    )
    solve.add_argument("--json", action="store_true", help="print JSON instead of a table")
    solve.add_argument("--show-set", action="store_true", help="print the selected nodes")
    solve.add_argument(
        "--no-lp", action="store_true", help="skip the LP optimum (faster on large graphs)"
    )
    solve.set_defaults(handler=_command_solve)

    compare = subparsers.add_parser("compare", help="compare against all baselines")
    _add_graph_arguments(compare)
    _add_jobs_argument(compare)
    _add_shards_argument(compare)
    compare.add_argument(
        "--algorithm",
        action="append",
        choices=list(algorithm_names()),
        default=None,
        help=(
            "restrict the comparison to this registered algorithm "
            "(repeatable; default: every algorithm the registry marks "
            "for comparison)"
        ),
    )
    compare.add_argument("--k", type=int, default=2)
    compare.add_argument("--trials", type=int, default=3)
    compare.add_argument(
        "--sparse-lp",
        action="store_true",
        help=(
            "solve LP_MDS sparsely for CSR instances so the ratio-vs-LP "
            "column is real instead of NaN (tens of seconds at n = 20000)"
        ),
    )
    _add_lp_method_arguments(compare)
    compare.add_argument("--csv", action="store_true")
    compare.set_defaults(handler=_command_compare)

    certify = subparsers.add_parser(
        "certify",
        help=(
            "run one algorithm and verify an LP duality certificate for "
            "its quality (primal/dual feasibility + weak duality gap)"
        ),
    )
    _add_graph_arguments(certify)
    certify.add_argument(
        "--algorithm",
        choices=list(algorithm_names()),
        default="kuhn-wattenhofer",
        help="registered algorithm to certify (default: the paper's pipeline)",
    )
    certify.add_argument("--k", type=int, default=None, help="locality parameter")
    certify.add_argument(
        "--variant",
        choices=[variant.value for variant in FractionalVariant],
        default=None,
        help="fractional variant (default: unknown_delta)",
    )
    certify.add_argument(
        "--no-lp",
        action="store_true",
        help="skip the LP optimum (the Lemma-1 certificate stays)",
    )
    _add_lp_method_arguments(certify)
    certify.add_argument(
        "--json", action="store_true", help="print JSON instead of a table"
    )
    certify.set_defaults(handler=_command_certify)

    sweep = subparsers.add_parser("sweep", help="sweep the locality parameter k")
    _add_graph_arguments(sweep)
    _add_jobs_argument(sweep)
    _add_shards_argument(sweep)
    sweep.add_argument("--max-k", type=int, default=5)
    sweep.add_argument(
        "--variant",
        choices=[variant.value for variant in FractionalVariant],
        default=FractionalVariant.KNOWN_DELTA.value,
    )
    sweep.add_argument("--csv", action="store_true")
    sweep.set_defaults(handler=_command_sweep)

    tradeoff = subparsers.add_parser(
        "tradeoff",
        help="measured k-vs-quality trade-off against the paper's bound curves",
    )
    _add_graph_arguments(tradeoff)
    _add_jobs_argument(tradeoff)
    _add_shards_argument(tradeoff)
    tradeoff.add_argument("--max-k", type=int, default=6)
    tradeoff.add_argument("--trials", type=int, default=5)
    tradeoff.add_argument(
        "--variant",
        choices=[variant.value for variant in FractionalVariant],
        default=FractionalVariant.UNKNOWN_DELTA.value,
    )
    tradeoff.add_argument(
        "--sparse-lp",
        action="store_true",
        help=(
            "solve LP_MDS sparsely for CSR instances so the ratio-vs-LP "
            "column is real instead of NaN (tens of seconds at n = 20000; "
            "without it, use the always-available ratio-vs-dual column)"
        ),
    )
    _add_lp_method_arguments(tradeoff)
    tradeoff.add_argument("--csv", action="store_true")
    tradeoff.set_defaults(handler=_command_tradeoff)

    cds = subparsers.add_parser(
        "cds", help="compare connected dominating set backbones"
    )
    _add_graph_arguments(cds)
    _add_jobs_argument(cds)
    cds.add_argument("--k", type=int, default=2)
    cds.add_argument("--csv", action="store_true")
    cds.set_defaults(handler=_command_cds)

    faults = subparsers.add_parser(
        "faults",
        help=(
            "sweep fault-injection rates (message loss + crash-stop) over "
            "the pipeline and print the degradation/repair table"
        ),
    )
    _add_graph_arguments(faults)
    _add_jobs_argument(faults)
    _add_shards_argument(faults)
    faults.add_argument("--k", type=int, default=2, help="locality parameter")
    faults.add_argument(
        "--trials",
        type=int,
        default=3,
        help="independent fault draws (and rounding coins) per rate pair",
    )
    faults.add_argument(
        "--rate",
        action="append",
        default=None,
        metavar="LOSS,CRASH",
        help=(
            "one loss,crash probability pair, e.g. 0.2,0.1 (repeatable; "
            "default: a loss-only/crash-only/mixed grid)"
        ),
    )
    faults.add_argument(
        "--variant",
        choices=[variant.value for variant in FractionalVariant],
        default=FractionalVariant.UNKNOWN_DELTA.value,
    )
    faults.add_argument("--csv", action="store_true")
    faults.set_defaults(handler=_command_faults)

    trace = subparsers.add_parser(
        "trace",
        help=(
            "run a trace-capable algorithm with collect_trace=True and "
            "print the per-phase observability report plus the Lemma 2-7 "
            "invariant verdict"
        ),
    )
    _add_graph_arguments(trace)
    trace.add_argument(
        "--algorithm",
        choices=[spec.name for spec in iter_specs() if spec.supports_trace],
        default="kuhn-wattenhofer",
        help="trace-capable algorithm to run (default: the paper's pipeline)",
    )
    trace.add_argument("--k", type=int, default=None, help="locality parameter")
    trace.add_argument(
        "--variant",
        choices=[variant.value for variant in FractionalVariant],
        default=None,
        help="fractional variant (default: unknown_delta)",
    )
    trace.add_argument(
        "--no-invariants",
        action="store_true",
        help="skip the invariant checkers (report only)",
    )
    trace.add_argument(
        "--json", action="store_true", help="print JSON instead of the report"
    )
    trace.set_defaults(handler=_command_trace)

    algorithms = subparsers.add_parser(
        "algorithms", help="list the algorithm registry and its capabilities"
    )
    algorithms.set_defaults(handler=_command_algorithms)

    serve = subparsers.add_parser(
        "serve", help="answer a JSONL request script through the solve service"
    )
    serve.add_argument(
        "--requests",
        default="-",
        help="path to a JSONL request script (default '-': read stdin)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="executor threads (default 2)"
    )
    serve.add_argument(
        "--max-batch", type=int, default=64, help="scheduler batch window (default 64)"
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request timeout in seconds (default: wait forever)",
    )
    serve.add_argument(
        "--stats", action="store_true", help="append a final stats JSON line"
    )
    serve.set_defaults(handler=_command_serve)

    loadgen = subparsers.add_parser(
        "loadgen", help="drive the standard mixed workload through the service"
    )
    loadgen.add_argument("--n", type=int, default=96, help="nodes per generated graph")
    loadgen.add_argument("--graphs", type=int, default=3, help="distinct graphs")
    loadgen.add_argument(
        "--max-k", type=int, default=3, help="issue k = 1..max_k per graph"
    )
    loadgen.add_argument(
        "--repeats", type=int, default=2, help="verbatim re-issues of the distinct block"
    )
    loadgen.add_argument(
        "--fault-requests", type=int, default=2, help="fault scenarios per graph"
    )
    loadgen.add_argument(
        "--passes", type=int, default=2, help="full burst passes (later ones hit the cache)"
    )
    loadgen.add_argument("--seed", type=int, default=0, help="workload seed")
    loadgen.add_argument("--workers", type=int, default=2, help="executor threads")
    loadgen.add_argument("--max-batch", type=int, default=64, help="batch window")
    loadgen.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the bitwise parity check against direct solves",
    )
    loadgen.add_argument("--json", action="store_true", help="print the full JSON report")
    loadgen.set_defaults(handler=_command_loadgen)

    bounds = subparsers.add_parser("bounds", help="print the paper's closed-form bounds")
    bounds.add_argument("--delta", type=int, default=16)
    bounds.add_argument("--max-k", type=int, default=6)
    bounds.set_defaults(handler=_command_bounds)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
