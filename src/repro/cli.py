"""Command-line interface.

Installed as ``repro-domset`` (see ``pyproject.toml``); also runnable as
``python -m repro``.  Sub-commands:

* ``solve``   -- run the Kuhn–Wattenhofer pipeline on one generated graph
  and print the dominating set plus its quality report.
* ``compare`` -- run the pipeline and every baseline on one graph and print
  a comparison table.
* ``sweep``   -- sweep the locality parameter k for the fractional
  algorithms on one graph and print ratio / round tables.
* ``tradeoff`` -- the paper's k-vs-quality trade-off curve: measured ratio
  between the Theorem-6 upper bound and the KMW lower-bound shape, all k
  values evaluated from one fractional snapshot-engine execution.
* ``cds``     -- compare connected dominating set backbones (KW+connect,
  Wu–Li, greedy+connect, Guha–Khuller).
* ``bounds``  -- print the paper's closed-form bounds for given (k, Δ).

``compare``, ``cds`` and ``tradeoff`` accept ``--backend vectorized`` and
``--suite xlarge``, in which case every stage runs on the CSR bulk engine
and graphs with n ≥ 20 000 are routine.

The CLI exists so that the examples in the README are runnable end to end
without writing Python; all heavy lifting is delegated to the library.
"""

from __future__ import annotations

import argparse
import json
import sys
from functools import partial
from typing import Sequence

from repro.analysis.bounds import (
    algorithm2_approximation_bound,
    algorithm2_round_bound,
    algorithm3_approximation_bound,
    algorithm3_round_bound,
    pipeline_expected_ratio_bound,
    rounding_expectation_bound,
)
from repro.analysis.experiment import (
    as_instances,
    compare_algorithms,
    sweep_cds,
    sweep_fractional,
    sweep_tradeoff,
)
from repro.analysis.tables import records_to_csv, render_table
from repro.baselines.bulk_greedy import greedy_dominating_set_bulk
from repro.baselines.bulk_set_cover import greedy_set_cover_dominating_set_bulk
from repro.baselines.greedy import greedy_dominating_set
from repro.baselines.jia_rajaraman_suel import lrg_dominating_set
from repro.baselines.lp_rounding_central import central_lp_rounding_dominating_set
from repro.baselines.trivial import random_dominating_set
from repro.baselines.wu_li import wu_li_dominating_set
from repro.core.kuhn_wattenhofer import (
    FractionalVariant,
    kuhn_wattenhofer_dominating_set,
)
from repro.core.vectorized import BACKENDS, SIMULATED
from repro.domset.quality import quality_report
from repro.graphs.generators import GraphFamily, graph_suite, make_graph


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by every sub-command that generates a graph."""
    parser.add_argument(
        "--family",
        choices=[family.value for family in GraphFamily],
        default=GraphFamily.UNIT_DISK.value,
        help="graph family to generate (default: unit_disk)",
    )
    parser.add_argument("--n", type=int, default=80, help="number of nodes")
    parser.add_argument(
        "--radius", type=float, default=0.18, help="unit disk transmission radius"
    )
    parser.add_argument(
        "--p", type=float, default=0.05, help="edge probability (Erdős–Rényi)"
    )
    parser.add_argument("--degree", type=int, default=6, help="degree (random regular)")
    parser.add_argument("--seed", type=int, default=0, help="randomness seed")
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=SIMULATED,
        help=(
            "execution backend: 'simulated' drives per-node message passing "
            "(traces, message-level fidelity), 'vectorized' uses the "
            "bulk-synchronous array engine (same results, much faster)"
        ),
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "process-pool width for parallelizing across graph instances "
            "(default: 1, no pool)"
        ),
    )
    parser.add_argument(
        "--suite",
        choices=["tiny", "small", "medium", "large", "xlarge"],
        default=None,
        help=(
            "run over a whole graph_suite scale instead of one generated "
            "graph; overrides --family/--n/--radius/--p/--degree "
            "(xlarge instances are CSR-native and require "
            "--backend vectorized)"
        ),
    )


def _build_graph(args: argparse.Namespace):
    return make_graph(
        args.family,
        seed=args.seed,
        n=args.n,
        radius=args.radius,
        p=args.p,
        degree=args.degree,
    )


# The comparison algorithms are module-level callables (not lambdas) so the
# experiment runner can ship them to --jobs worker processes.
def _alg_kuhn_wattenhofer(graph, seed, k=2, backend=SIMULATED):
    return kuhn_wattenhofer_dominating_set(
        graph, k=k, seed=seed, backend=backend
    ).dominating_set


def _alg_greedy(graph, seed):
    return greedy_dominating_set(graph)


def _alg_lrg(graph, seed):
    return lrg_dominating_set(graph, seed=seed).dominating_set


def _alg_wu_li(graph, seed):
    return wu_li_dominating_set(graph, seed=seed).dominating_set


def _alg_central_lp(graph, seed):
    return central_lp_rounding_dominating_set(graph, seed=seed).dominating_set


def _alg_random_fill(graph, seed):
    return random_dominating_set(graph, seed=seed)


def _alg_bulk_greedy(graph, seed):
    return greedy_dominating_set_bulk(graph)


def _alg_bulk_lrg(graph, seed):
    return lrg_dominating_set(graph, seed=seed, backend="vectorized").dominating_set


def _alg_bulk_wu_li(graph, seed):
    return wu_li_dominating_set(graph, backend="vectorized").dominating_set


def _alg_bulk_set_cover(graph, seed):
    return greedy_set_cover_dominating_set_bulk(graph)


def _command_solve(args: argparse.Namespace) -> int:
    graph = _build_graph(args)
    variant = FractionalVariant(args.variant)
    result = kuhn_wattenhofer_dominating_set(
        graph, k=args.k, seed=args.seed, variant=variant, backend=args.backend
    )
    report = quality_report(graph, result.dominating_set, solve_lp=not args.no_lp)
    payload = {
        "n": graph.number_of_nodes(),
        "max_degree": result.max_degree,
        "k": result.k,
        "dominating_set_size": result.size,
        "total_rounds": result.total_rounds,
        "total_messages": result.total_messages,
        "max_message_bits": result.max_message_bits,
        "lp_optimum": report.lp_optimum,
        "ratio_vs_lp": report.ratio_vs_lp,
        "dual_lower_bound": report.dual_lower_bound,
        "ratio_vs_dual": report.ratio_vs_dual,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_table([payload], title="Kuhn-Wattenhofer pipeline"))
        if args.show_set:
            print("dominating set:", sorted(result.dominating_set))
    return 0


#: Printed (before paying the n >= 20000 suite construction) when a CSR
#: suite is requested with a backend that cannot execute it.
_XLARGE_BACKEND_ERROR = (
    "error: --suite xlarge instances are CSR-native and require "
    "--backend vectorized"
)


def _build_instances(args: argparse.Namespace):
    """One generated graph, or a whole suite when ``--suite`` is given."""
    if getattr(args, "suite", None):
        return as_instances(graph_suite(args.suite, seed=args.seed))
    return as_instances({"instance": _build_graph(args)})


def _command_compare(args: argparse.Namespace) -> int:
    if args.suite == "xlarge" and args.backend != "vectorized":
        print(_XLARGE_BACKEND_ERROR, file=sys.stderr)
        return 2
    instances = _build_instances(args)
    if any(instance.is_bulk for instance in instances):
        # CSR (xlarge) instances: the whole comparison stack is
        # bulk-capable -- the vectorized pipeline, the LRG comparator, the
        # Wu–Li marking algorithm and two greedy references.
        algorithms = {
            "kuhn-wattenhofer": partial(
                _alg_kuhn_wattenhofer, k=args.k, backend=args.backend
            ),
            "greedy (bucket queue)": _alg_bulk_greedy,
            "lrg (jia et al.)": _alg_bulk_lrg,
            "wu-li": _alg_bulk_wu_li,
            "set cover greedy": _alg_bulk_set_cover,
        }
    else:
        algorithms = {
            "kuhn-wattenhofer": partial(
                _alg_kuhn_wattenhofer, k=args.k, backend=args.backend
            ),
            "greedy": _alg_greedy,
            "lrg (jia et al.)": _alg_lrg,
            "wu-li": _alg_wu_li,
            "central LP + rounding": _alg_central_lp,
            "random fill": _alg_random_fill,
        }
    records = compare_algorithms(
        instances, algorithms, trials=args.trials, seed=args.seed, jobs=args.jobs
    )
    rows = [record.as_row() for record in records]
    if args.csv:
        print(records_to_csv(rows))
    else:
        print(render_table(rows, title="Algorithm comparison"))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    if args.suite == "xlarge" and args.backend != "vectorized":
        print(_XLARGE_BACKEND_ERROR, file=sys.stderr)
        return 2
    instances = _build_instances(args)
    k_values = list(range(1, args.max_k + 1))
    variant = FractionalVariant(args.variant)
    records = sweep_fractional(
        instances,
        k_values,
        variant=variant,
        seed=args.seed,
        backend=args.backend,
        jobs=args.jobs,
    )
    rows = [record.as_row() for record in records]
    if args.csv:
        print(records_to_csv(rows))
    else:
        print(render_table(rows, title=f"k sweep ({variant.value})"))
    return 0


def _command_tradeoff(args: argparse.Namespace) -> int:
    if args.suite == "xlarge" and args.backend != "vectorized":
        print(_XLARGE_BACKEND_ERROR, file=sys.stderr)
        return 2
    instances = _build_instances(args)
    k_values = list(range(1, args.max_k + 1))
    records = sweep_tradeoff(
        instances,
        k_values,
        trials=args.trials,
        variant=FractionalVariant(args.variant),
        seed=args.seed,
        backend=args.backend,
        jobs=args.jobs,
        sparse_lp=args.sparse_lp,
    )
    rows = [record.as_row() for record in records]
    if args.csv:
        print(records_to_csv(rows))
    else:
        print(
            render_table(
                rows,
                title="k-vs-quality trade-off (measured vs. Thm 6 / KMW shapes)",
            )
        )
    return 0


def _command_cds(args: argparse.Namespace) -> int:
    if args.suite == "xlarge" and args.backend != "vectorized":
        print(_XLARGE_BACKEND_ERROR, file=sys.stderr)
        return 2
    instances = _build_instances(args)
    # CDS experiments are only defined on connected graphs; restrict every
    # instance to its largest component up front.
    connected = []
    for instance in instances:
        graph = instance.graph
        if instance.is_bulk:
            from repro.cds.bulk import bulk_is_connected, bulk_largest_component

            if not bulk_is_connected(graph):
                graph = bulk_largest_component(graph)
        else:
            import networkx as nx

            if not nx.is_connected(graph):
                component = max(nx.connected_components(graph), key=len)
                graph = nx.convert_node_labels_to_integers(
                    graph.subgraph(component).copy()
                )
        connected.append(type(instance)(name=instance.name, graph=graph))
    records = sweep_cds(
        connected, k=args.k, seed=args.seed, backend=args.backend, jobs=args.jobs
    )
    rows = [record.as_row() for record in records]
    if args.csv:
        print(records_to_csv(rows))
    else:
        print(render_table(rows, title="Connected dominating set backbones"))
    return 0


def _command_bounds(args: argparse.Namespace) -> int:
    rows = []
    for k in range(1, args.max_k + 1):
        rows.append(
            {
                "k": k,
                "alg2_ratio_bound": algorithm2_approximation_bound(k, args.delta),
                "alg2_rounds": algorithm2_round_bound(k),
                "alg3_ratio_bound": algorithm3_approximation_bound(k, args.delta),
                "alg3_rounds": algorithm3_round_bound(k),
                "rounding_factor": rounding_expectation_bound(1.0, args.delta),
                "pipeline_ratio_bound": pipeline_expected_ratio_bound(k, args.delta),
            }
        )
    print(render_table(rows, title=f"Paper bounds for Δ = {args.delta}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-domset",
        description=(
            "Distributed dominating set approximation "
            "(Kuhn & Wattenhofer, PODC 2003) -- reproduction CLI"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="run the full pipeline on one graph")
    _add_graph_arguments(solve)
    solve.add_argument("--k", type=int, default=None, help="locality parameter")
    solve.add_argument(
        "--variant",
        choices=[variant.value for variant in FractionalVariant],
        default=FractionalVariant.UNKNOWN_DELTA.value,
    )
    solve.add_argument("--json", action="store_true", help="print JSON instead of a table")
    solve.add_argument("--show-set", action="store_true", help="print the selected nodes")
    solve.add_argument(
        "--no-lp", action="store_true", help="skip the LP optimum (faster on large graphs)"
    )
    solve.set_defaults(handler=_command_solve)

    compare = subparsers.add_parser("compare", help="compare against all baselines")
    _add_graph_arguments(compare)
    _add_jobs_argument(compare)
    compare.add_argument("--k", type=int, default=2)
    compare.add_argument("--trials", type=int, default=3)
    compare.add_argument("--csv", action="store_true")
    compare.set_defaults(handler=_command_compare)

    sweep = subparsers.add_parser("sweep", help="sweep the locality parameter k")
    _add_graph_arguments(sweep)
    _add_jobs_argument(sweep)
    sweep.add_argument("--max-k", type=int, default=5)
    sweep.add_argument(
        "--variant",
        choices=[variant.value for variant in FractionalVariant],
        default=FractionalVariant.KNOWN_DELTA.value,
    )
    sweep.add_argument("--csv", action="store_true")
    sweep.set_defaults(handler=_command_sweep)

    tradeoff = subparsers.add_parser(
        "tradeoff",
        help="measured k-vs-quality trade-off against the paper's bound curves",
    )
    _add_graph_arguments(tradeoff)
    _add_jobs_argument(tradeoff)
    tradeoff.add_argument("--max-k", type=int, default=6)
    tradeoff.add_argument("--trials", type=int, default=5)
    tradeoff.add_argument(
        "--variant",
        choices=[variant.value for variant in FractionalVariant],
        default=FractionalVariant.UNKNOWN_DELTA.value,
    )
    tradeoff.add_argument(
        "--sparse-lp",
        action="store_true",
        help=(
            "solve LP_MDS sparsely for CSR instances so the ratio-vs-LP "
            "column is real instead of NaN (tens of seconds at n = 20000; "
            "without it, use the always-available ratio-vs-dual column)"
        ),
    )
    tradeoff.add_argument("--csv", action="store_true")
    tradeoff.set_defaults(handler=_command_tradeoff)

    cds = subparsers.add_parser(
        "cds", help="compare connected dominating set backbones"
    )
    _add_graph_arguments(cds)
    _add_jobs_argument(cds)
    cds.add_argument("--k", type=int, default=2)
    cds.add_argument("--csv", action="store_true")
    cds.set_defaults(handler=_command_cds)

    bounds = subparsers.add_parser("bounds", help="print the paper's closed-form bounds")
    bounds.add_argument("--delta", type=int, default=16)
    bounds.add_argument("--max-k", type=int, default=6)
    bounds.set_defaults(handler=_command_bounds)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
