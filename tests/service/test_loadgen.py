"""Tests for the shared workload builder and load runner."""

import pytest

from repro.service.loadgen import build_workload, run_load, verify_parity


class TestBuildWorkload:
    def test_deterministic_for_a_seed(self):
        first = build_workload(n=24, graphs=2, k_values=(1, 2), seed=3)
        second = build_workload(n=24, graphs=2, k_values=(1, 2), seed=3)
        assert len(first) == len(second)
        for one, two in zip(first, second):
            assert one["algorithm"] == two["algorithm"]
            assert one["seed"] == two["seed"]
            assert sorted(map(repr, one["params"])) == sorted(map(repr, two["params"]))
            assert sorted(one["graph"].edges()) == sorted(two["graph"].edges())

    def test_size_accounting(self):
        workload = build_workload(
            n=24, graphs=2, k_values=(1, 2), repeats=2, fault_requests=1
        )
        distinct = 2 * (2 + 1)  # per graph: len(k_values) + fault_requests
        assert len(workload) == distinct * (1 + 2)

    def test_graphs_are_shared_objects(self):
        """Repeats reference the same graph object (coalescing depends on it)."""
        workload = build_workload(n=24, graphs=1, k_values=(1, 2), repeats=1)
        identities = {id(request["graph"]) for request in workload}
        assert len(identities) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            build_workload(graphs=0)
        with pytest.raises(ValueError):
            build_workload(repeats=-1)


class TestRunLoad:
    def test_report_fields_and_parity(self):
        report = run_load(
            n=24,
            graphs=2,
            k_values=(1, 2),
            repeats=1,
            fault_requests=1,
            seed=11,
            passes=2,
        )
        assert report["objective_match"] is True
        assert report["parity"]["mismatches"] == []
        # "distinct_requests" is the workload length (repeats included);
        # "requests" multiplies in the passes.
        assert report["requests"] == report["distinct_requests"] * 2
        assert report["requests_per_s"] > 0
        assert report["latency"]["count"] == report["requests"]
        assert report["latency"]["p50_s"] <= report["latency"]["p99_s"]
        assert report["cache_hit_rate"] > 0  # pass 2 repeats pass 1
        assert report["coalescing_factor"] > 1.0  # the multi-k sweeps
        assert report["scheduler"]["failures"] == 0

    def test_verify_can_be_skipped(self):
        report = run_load(
            n=24, graphs=1, k_values=(1,), repeats=0, fault_requests=0, verify=False
        )
        assert "parity" not in report

    def test_workload_and_kwargs_are_exclusive(self):
        workload = build_workload(n=24, graphs=1, k_values=(1,))
        with pytest.raises(TypeError):
            run_load(workload=workload, n=24)

    def test_passes_validated(self):
        with pytest.raises(ValueError):
            run_load(passes=0)


class TestVerifyParity:
    def test_detects_divergence(self):
        workload = build_workload(
            n=24, graphs=1, k_values=(1, 2), repeats=0, fault_requests=0, seed=5
        )
        report = run_load(workload=workload, verify=True)
        assert report["objective_match"] is True
        # Cross-wire the answers: parity must now fail.
        reports = run_load(workload=workload, verify=False)
        from repro.api import solve as direct_solve

        answers = [
            direct_solve(
                request["algorithm"],
                request["graph"],
                seed=request.get("seed"),
                **request["params"],
            )
            for request in workload
        ]
        swapped = [answers[1], answers[0]]
        verdict = verify_parity(workload, swapped)
        assert verdict["objective_match"] is False
        assert verdict["mismatches"]
