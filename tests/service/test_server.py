"""Integration tests for the SolveService facade."""

import asyncio

import pytest

from repro.api import solve
from repro.graphs.generators import erdos_renyi_graph
from repro.service import ServiceClosedError, SolveService
from repro.simulator.fault_schedule import FaultSpec


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(28, 0.18, seed=2)


class TestSolve:
    def test_matches_direct_solve(self, graph):
        async def run():
            async with SolveService() as service:
                return await service.solve("kuhn-wattenhofer", graph, seed=1, k=2)

        report = asyncio.run(run())
        direct = solve("kuhn-wattenhofer", graph, seed=1, k=2)
        assert report.dominating_set == direct.dominating_set
        assert report.objective == direct.objective
        assert report.rounds == direct.rounds

    def test_repeat_served_from_cache(self, graph):
        async def run():
            async with SolveService() as service:
                first = await service.solve("kuhn-wattenhofer", graph, seed=1, k=2)
                second = await service.solve("kuhn-wattenhofer", graph, seed=1, k=2)
                return first, second, service.stats()

        first, second, stats = asyncio.run(run())
        assert second is first  # the literal cached object
        assert stats["cache"]["hits"] == 1
        assert stats["scheduler"]["engine_executions"] == 1

    def test_equivalent_spellings_share_cache_entries(self, graph):
        async def run():
            async with SolveService() as service:
                await service.solve("kuhn-wattenhofer", graph, seed=1, k=2)
                await service.solve(
                    "kuhn-wattenhofer",
                    graph,
                    seed=1,
                    k=2,
                    variant="unknown_delta",  # the default, spelled out
                )
                return service.stats()

        stats = asyncio.run(run())
        assert stats["cache"]["hits"] == 1

    def test_concurrent_identical_requests_join_in_flight(self, graph):
        async def run():
            async with SolveService() as service:
                reports = await service.solve_many(
                    [
                        {
                            "algorithm": "kuhn-wattenhofer",
                            "graph": graph,
                            "seed": 1,
                            "params": {"k": 2},
                        }
                    ]
                    * 3
                )
                return reports, service.stats()

        reports, stats = asyncio.run(run())
        assert stats["inflight_joins"] == 2
        assert stats["scheduler"]["engine_executions"] == 1
        assert len({id(report) for report in reports}) == 1

    def test_multi_k_burst_coalesces_and_matches(self, graph):
        async def run():
            async with SolveService() as service:
                reports = await service.solve_many(
                    [
                        {
                            "algorithm": "kuhn-wattenhofer",
                            "graph": graph,
                            "seed": 4,
                            "params": {"k": k},
                        }
                        for k in (1, 2, 3)
                    ]
                )
                return reports, service.stats()

        reports, stats = asyncio.run(run())
        assert stats["scheduler"]["coalesced_requests"] == 3
        assert stats["scheduler"]["engine_executions"] == 1
        for k, report in zip((1, 2, 3), reports):
            direct = solve("kuhn-wattenhofer", graph, seed=4, k=k)
            assert report.dominating_set == direct.dominating_set
            assert report.objective == direct.objective

    def test_fault_scenario_passthrough(self, graph):
        faults = FaultSpec(loss_probability=0.1, crash_probability=0.05, seed=3)

        async def run():
            async with SolveService() as service:
                return await service.solve(
                    "kuhn-wattenhofer",
                    graph,
                    seed=1,
                    k=2,
                    faults=faults,
                    repair=True,
                )

        report = asyncio.run(run())
        direct = solve(
            "kuhn-wattenhofer", graph, seed=1, k=2, faults=faults, repair=True
        )
        assert report.dominating_set == direct.dominating_set
        assert report.objective == direct.objective

    def test_faulty_and_clean_runs_never_share_entries(self, graph):
        async def run():
            async with SolveService() as service:
                clean = await service.solve("kuhn-wattenhofer", graph, seed=1, k=2)
                faulty = await service.solve(
                    "kuhn-wattenhofer",
                    graph,
                    seed=1,
                    k=2,
                    faults=FaultSpec(loss_probability=0.3, seed=0),
                    repair=True,
                )
                return clean, faulty, service.stats()

        clean, faulty, stats = asyncio.run(run())
        assert stats["cache"]["hits"] == 0
        assert stats["cache"]["entries"] == 2

    def test_error_propagates_and_is_not_cached(self, graph):
        async def run():
            async with SolveService() as service:
                with pytest.raises(ValueError):
                    await service.solve("kuhn-wattenhofer", graph, k=0)
                stats = service.stats()
                return stats

        stats = asyncio.run(run())
        assert stats["failed"] == 1
        assert stats["cache"]["entries"] == 0

    def test_unknown_algorithm_rejected_at_submission(self, graph):
        async def run():
            async with SolveService() as service:
                with pytest.raises(KeyError):
                    await service.solve("no-such-algorithm", graph)

        asyncio.run(run())


class TestTimeouts:
    def test_timeout_raises_but_result_still_cached(self, graph):
        async def run():
            async with SolveService() as service:
                with pytest.raises(asyncio.TimeoutError):
                    await service.solve(
                        "kuhn-wattenhofer", graph, seed=9, k=2, timeout=1e-9
                    )
                await service.drain()
                stats = service.stats()
                # The computation outlived the impatient waiter: a repeat
                # of the same request is now a cache hit.
                report = await service.solve("kuhn-wattenhofer", graph, seed=9, k=2)
                return stats, report, service.stats()

        stats, report, final_stats = asyncio.run(run())
        assert stats["timeouts"] == 1
        assert final_stats["cache"]["hits"] == 1
        direct = solve("kuhn-wattenhofer", graph, seed=9, k=2)
        assert report.dominating_set == direct.dominating_set


class TestLifecycle:
    def test_solve_after_close_rejected(self, graph):
        async def run():
            service = SolveService()
            await service.start()
            await service.close()
            with pytest.raises(ServiceClosedError):
                await service.solve("kuhn-wattenhofer", graph, k=1)

        asyncio.run(run())

    def test_close_drains_submitted_work(self, graph):
        async def run():
            service = SolveService()
            await service.start()
            outcome = await service._begin(
                "kuhn-wattenhofer", graph, "auto", 1, {"k": 2}
            )
            await service.close()
            _, request, _ = outcome
            return request.future.done() and not request.future.cancelled()

        assert asyncio.run(run())

    def test_stats_shape_when_idle(self):
        async def run():
            async with SolveService() as service:
                return service.stats()

        stats = asyncio.run(run())
        assert stats["requests"] == 0
        assert stats["latency"]["count"] == 0
        assert stats["latency"]["p99_s"] is None
        assert stats["cache"]["hit_rate"] == 0.0
        assert stats["scheduler"]["coalescing_factor"] == 1.0
