"""Unit tests for the batching scheduler and its coalesced execution path."""

import asyncio

import pytest

from repro.api import solve
from repro.graphs.generators import erdos_renyi_graph
from repro.service.keys import cache_key, coalesce_key
from repro.service.scheduler import (
    BatchScheduler,
    ServiceClosedError,
    ServiceRequest,
)


def _request(graph, k, seed=0, algorithm="kuhn-wattenhofer", backend="auto"):
    params = {"k": k}
    return ServiceRequest(
        algorithm=algorithm,
        graph=graph,
        backend=backend,
        seed=seed,
        params=params,
        key=cache_key(algorithm, graph, seed=seed, params=params),
        coalesce_key=coalesce_key(
            algorithm, graph, seed=seed, params=params, backend=backend
        ),
        future=asyncio.get_running_loop().create_future(),
    )


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(32, 0.15, seed=5)


class TestLifecycle:
    def test_submit_before_start_rejected(self, graph):
        async def run():
            scheduler = BatchScheduler()
            with pytest.raises(ServiceClosedError):
                await scheduler.submit(_request(graph, 1))

        asyncio.run(run())

    def test_submit_after_close_rejected(self, graph):
        async def run():
            scheduler = BatchScheduler()
            await scheduler.start()
            await scheduler.close()
            with pytest.raises(ServiceClosedError):
                await scheduler.submit(_request(graph, 1))

        asyncio.run(run())

    def test_close_is_idempotent(self):
        async def run():
            scheduler = BatchScheduler()
            await scheduler.start()
            await scheduler.close()
            await scheduler.close()

        asyncio.run(run())

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BatchScheduler(max_pending=0)
        with pytest.raises(ValueError):
            BatchScheduler(max_batch=0)
        with pytest.raises(ValueError):
            BatchScheduler(workers=0)


class TestExecution:
    def test_solo_request_matches_direct_solve(self, graph):
        async def run():
            scheduler = BatchScheduler()
            await scheduler.start()
            request = _request(graph, 2, seed=3)
            await scheduler.submit(request)
            report = await request.future
            await scheduler.close()
            return report

        report = asyncio.run(run())
        direct = solve("kuhn-wattenhofer", graph, seed=3, k=2)
        assert report.dominating_set == direct.dominating_set
        assert report.objective == direct.objective
        assert report.rounds == direct.rounds
        assert report.messages == direct.messages

    def test_coalesced_group_bitwise_equal_to_independent_runs(self, graph):
        """The tentpole invariant: one engine run serves N requests exactly."""

        async def run():
            scheduler = BatchScheduler()
            await scheduler.start()
            requests = [_request(graph, k, seed=7) for k in (1, 2, 3)]
            for request in requests:
                await scheduler.submit(request)
            reports = await asyncio.gather(*(r.future for r in requests))
            stats = scheduler.stats
            await scheduler.close()
            return reports, stats

        reports, stats = asyncio.run(run())
        assert stats.coalesced_batches == 1
        assert stats.coalesced_requests == 3
        assert stats.solo_requests == 0
        assert stats.coalescing_factor == pytest.approx(3.0)
        for k, report in zip((1, 2, 3), reports):
            direct = solve("kuhn-wattenhofer", graph, seed=7, k=k)
            assert report.dominating_set == direct.dominating_set
            assert report.objective == direct.objective
            assert report.rounds == direct.rounds
            assert report.messages == direct.messages
            assert report.max_message_bits == direct.max_message_bits
            assert report.params["k"] == k

    def test_mixed_batch_coalesces_only_matching_groups(self, graph):
        other = erdos_renyi_graph(32, 0.15, seed=6)

        async def run():
            scheduler = BatchScheduler()
            await scheduler.start()
            requests = [
                _request(graph, 1, seed=7),
                _request(graph, 2, seed=7),
                _request(other, 1, seed=7),  # different graph: its own group
                _request(graph, 1, seed=8),  # different seed: its own group
            ]
            for request in requests:
                await scheduler.submit(request)
            await asyncio.gather(*(r.future for r in requests))
            stats = scheduler.stats
            await scheduler.close()
            return stats

        stats = asyncio.run(run())
        assert stats.coalesced_batches == 1
        assert stats.coalesced_requests == 2
        assert stats.solo_requests == 2

    def test_failure_lands_on_the_future(self, graph):
        async def run():
            scheduler = BatchScheduler()
            await scheduler.start()
            request = _request(graph, 0)  # k must be >= 1
            await scheduler.submit(request)
            with pytest.raises(ValueError):
                await request.future
            stats = scheduler.stats
            await scheduler.close()
            return stats

        stats = asyncio.run(run())
        assert stats.failures == 1

    def test_abandoned_request_skipped(self, graph):
        async def run():
            scheduler = BatchScheduler()
            request = _request(graph, 2)
            request.waiters = 0  # every waiter gave up before dispatch
            await scheduler.start()
            await scheduler.submit(request)
            await scheduler.drain()
            stats = scheduler.stats
            cancelled = request.future.cancelled()
            await scheduler.close()
            return stats, cancelled

        stats, cancelled = asyncio.run(run())
        assert stats.skipped == 1
        assert stats.solo_requests == 0
        assert cancelled

    def test_drain_completes_everything(self, graph):
        async def run():
            scheduler = BatchScheduler()
            await scheduler.start()
            requests = [_request(graph, k, seed=1) for k in (1, 2)]
            for request in requests:
                await scheduler.submit(request)
            await scheduler.drain()
            done = all(request.future.done() for request in requests)
            assert scheduler.pending == 0
            await scheduler.close()
            return done

        assert asyncio.run(run())


class TestStats:
    def test_idle_factor_is_one(self):
        assert BatchScheduler().stats.coalescing_factor == 1.0

    def test_as_dict_fields(self):
        payload = BatchScheduler().stats.as_dict()
        for field in (
            "batches",
            "solo_requests",
            "coalesced_batches",
            "coalesced_requests",
            "engine_executions",
            "coalescing_factor",
            "failures",
            "skipped",
        ):
            assert field in payload
