"""Unit tests for canonical content hashing of solve requests."""

import networkx as nx
import numpy as np
import pytest

from repro.core.kuhn_wattenhofer import FractionalVariant, RoundingRule
from repro.service.keys import (
    cache_key,
    canonical_token,
    coalesce_key,
    graph_fingerprint,
    params_token,
)
from repro.simulator.bulk import BulkGraph
from repro.simulator.fault_schedule import FaultSpec


def _sample_graph(seed: int = 0, n: int = 24) -> nx.Graph:
    return nx.gnp_random_graph(n, 0.2, seed=seed)


class TestGraphFingerprint:
    def test_equal_graphs_equal_fingerprints(self):
        assert graph_fingerprint(_sample_graph(3)) == graph_fingerprint(
            _sample_graph(3)
        )

    def test_different_graphs_differ(self):
        assert graph_fingerprint(_sample_graph(3)) != graph_fingerprint(
            _sample_graph(4)
        )

    def test_constructor_independence(self):
        """nx, from_graph and from_edges spellings of one graph coincide."""
        graph = _sample_graph(7)
        bulk = BulkGraph.from_graph(graph)
        edges = np.array(sorted(graph.edges()), dtype=np.int64)
        from_edges = BulkGraph.from_edges(
            graph.number_of_nodes(), edges[:, 0], edges[:, 1]
        )
        assert (
            graph_fingerprint(graph)
            == graph_fingerprint(bulk)
            == graph_fingerprint(from_edges)
        )

    def test_edge_order_independence(self):
        graph = _sample_graph(9)
        edges = np.array(sorted(graph.edges()), dtype=np.int64)
        shuffled = np.random.default_rng(0).permutation(len(edges))
        forward = BulkGraph.from_edges(
            graph.number_of_nodes(), edges[:, 0], edges[:, 1]
        )
        scrambled = BulkGraph.from_edges(
            graph.number_of_nodes(),
            edges[shuffled, 1],  # also flip endpoint order
            edges[shuffled, 0],
        )
        assert graph_fingerprint(forward) == graph_fingerprint(scrambled)

    def test_node_labels_participate(self):
        plain = nx.Graph([(0, 1), (1, 2)])
        relabelled = nx.Graph([("a", "b"), ("b", "c")])
        assert graph_fingerprint(plain) != graph_fingerprint(relabelled)


class TestCanonicalToken:
    def test_enum_and_string_coincide(self):
        assert canonical_token(FractionalVariant.KNOWN_DELTA) != canonical_token(
            "known_delta"
        )  # raw enum vs raw string differ; normalization happens in params

    def test_integer_float_collapses(self):
        assert canonical_token(2.0) == canonical_token(2)

    def test_mapping_key_order_independent(self):
        assert canonical_token({"a": 1, "b": 2}) == canonical_token({"b": 2, "a": 1})

    def test_fault_spec_tokens(self):
        one = FaultSpec(loss_probability=0.1, seed=1)
        same = FaultSpec(loss_probability=0.1, seed=1)
        other = FaultSpec(loss_probability=0.1, seed=2)
        assert canonical_token(one) == canonical_token(same)
        assert canonical_token(one) != canonical_token(other)


class TestParamsToken:
    def test_defaults_vs_explicit(self):
        implicit = params_token("kuhn-wattenhofer", {"k": 2})
        explicit = params_token(
            "kuhn-wattenhofer",
            {
                "k": 2,
                "variant": FractionalVariant.UNKNOWN_DELTA,
                "rounding_rule": RoundingRule.LOG,
            },
        )
        assert implicit == explicit

    def test_enum_spelling_vs_string(self):
        assert params_token(
            "kuhn-wattenhofer", {"k": 2, "variant": "known_delta"}
        ) == params_token(
            "kuhn-wattenhofer", {"k": 2, "variant": FractionalVariant.KNOWN_DELTA}
        )

    def test_different_k_differ(self):
        assert params_token("kuhn-wattenhofer", {"k": 2}) != params_token(
            "kuhn-wattenhofer", {"k": 3}
        )

    def test_unknown_param_rejected(self):
        with pytest.raises(TypeError):
            params_token("kuhn-wattenhofer", {"k": 2, "bogus": 1})


class TestCacheKey:
    def test_stable_across_graph_constructors(self):
        graph = _sample_graph(11)
        bulk = BulkGraph.from_graph(graph)
        assert cache_key("kuhn-wattenhofer", graph, seed=5, params={"k": 2}) == (
            cache_key("kuhn-wattenhofer", bulk, seed=5, params={"k": 2})
        )

    def test_no_false_sharing_between_seeds(self):
        graph = _sample_graph(11)
        assert cache_key("kuhn-wattenhofer", graph, seed=1, params={"k": 2}) != (
            cache_key("kuhn-wattenhofer", graph, seed=2, params={"k": 2})
        )

    def test_no_false_sharing_between_params(self):
        graph = _sample_graph(11)
        base = cache_key("kuhn-wattenhofer", graph, seed=1, params={"k": 2})
        assert base != cache_key("kuhn-wattenhofer", graph, seed=1, params={"k": 3})
        assert base != cache_key(
            "kuhn-wattenhofer",
            graph,
            seed=1,
            params={"k": 2, "faults": FaultSpec(loss_probability=0.1, seed=0)},
        )

    def test_no_false_sharing_between_algorithms(self):
        graph = _sample_graph(11)
        assert cache_key("kuhn-wattenhofer", graph, seed=1, params={"k": 2}) != (
            cache_key("greedy", graph, seed=1)
        )

    def test_default_params_share_with_explicit(self):
        graph = _sample_graph(11)
        assert cache_key(
            "kuhn-wattenhofer", graph, seed=1, params={"k": 2}
        ) == cache_key(
            "kuhn-wattenhofer",
            graph,
            seed=1,
            params={"k": 2, "variant": "unknown_delta", "repair": True},
        )

    def test_precomputed_graph_hash_shortcut(self):
        graph = _sample_graph(13)
        fingerprint = graph_fingerprint(graph)
        assert cache_key(
            "kuhn-wattenhofer", graph, seed=0, params={"k": 1}
        ) == cache_key(
            "kuhn-wattenhofer",
            graph,
            seed=0,
            params={"k": 1},
            graph_hash=fingerprint,
        )


class TestCoalesceKey:
    def test_same_group_differs_only_in_k(self):
        graph = _sample_graph(17)
        keys = {
            coalesce_key("kuhn-wattenhofer", graph, seed=4, params={"k": k})
            for k in (1, 2, 3)
        }
        assert len(keys) == 1 and None not in keys

    def test_cache_keys_still_differ_within_group(self):
        graph = _sample_graph(17)
        keys = {
            cache_key("kuhn-wattenhofer", graph, seed=4, params={"k": k})
            for k in (1, 2, 3)
        }
        assert len(keys) == 3

    def test_seed_splits_groups(self):
        graph = _sample_graph(17)
        assert coalesce_key(
            "kuhn-wattenhofer", graph, seed=1, params={"k": 1}
        ) != coalesce_key("kuhn-wattenhofer", graph, seed=2, params={"k": 1})

    def test_graph_splits_groups(self):
        assert coalesce_key(
            "kuhn-wattenhofer", _sample_graph(1), seed=1, params={"k": 1}
        ) != coalesce_key(
            "kuhn-wattenhofer", _sample_graph(2), seed=1, params={"k": 1}
        )

    def test_non_multi_k_algorithm_not_coalescible(self):
        assert coalesce_key("greedy", _sample_graph(17)) is None

    def test_default_k_not_coalescible(self):
        assert (
            coalesce_key("kuhn-wattenhofer", _sample_graph(17), params={}) is None
        )

    def test_traces_and_faults_not_coalescible(self):
        graph = _sample_graph(17)
        assert (
            coalesce_key(
                "kuhn-wattenhofer", graph, params={"k": 2, "collect_trace": True}
            )
            is None
        )
        assert (
            coalesce_key(
                "kuhn-wattenhofer",
                graph,
                params={"k": 2, "faults": FaultSpec(loss_probability=0.1)},
            )
            is None
        )

    def test_backend_splits_groups(self):
        graph = _sample_graph(17)
        assert coalesce_key(
            "kuhn-wattenhofer", graph, params={"k": 2}, backend="simulated"
        ) != coalesce_key(
            "kuhn-wattenhofer", graph, params={"k": 2}, backend="vectorized"
        )
