"""Unit tests for the content-addressed LRU result cache."""

import pytest

from repro.api import solve
from repro.graphs.generators import erdos_renyi_graph
from repro.service.cache import ResultCache
from repro.service.keys import cache_key
from repro.simulator.bulk import BulkGraph


@pytest.fixture(scope="module")
def report():
    return solve(
        "kuhn-wattenhofer", erdos_renyi_graph(20, 0.2, seed=0), seed=0, k=1
    )


class TestLookup:
    def test_miss_then_hit(self, report):
        cache = ResultCache()
        assert cache.get("key") is None
        cache.put("key", report)
        assert cache.get("key") is report
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_peek_does_not_count(self, report):
        cache = ResultCache()
        cache.put("key", report)
        assert cache.peek("key") is report
        assert cache.peek("other") is None
        assert cache.stats.lookups == 0

    def test_contains_and_len(self, report):
        cache = ResultCache()
        cache.put("key", report)
        assert "key" in cache and "other" not in cache
        assert len(cache) == 1

    def test_clear_keeps_counters(self, report):
        cache = ResultCache()
        cache.put("key", report)
        cache.get("key")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestEviction:
    def test_lru_eviction_order(self, report):
        cache = ResultCache(max_entries=2)
        cache.put("a", report)
        cache.put("b", report)
        cache.get("a")  # refresh "a": "b" is now least recently used
        cache.put("c", report)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self, report):
        cache = ResultCache(max_entries=2)
        cache.put("a", report)
        cache.put("b", report)
        cache.put("a", report)  # refresh, not insert
        cache.put("c", report)
        assert "a" in cache and "b" not in cache

    def test_capacity_one(self, report):
        cache = ResultCache(max_entries=1)
        cache.put("a", report)
        cache.put("b", report)
        assert cache.keys() == ("b",)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestContentAddressing:
    """The cache + keys combination: equal content shares, unequal never."""

    def test_equal_graphs_different_constructors_share_entries(self, report):
        cache = ResultCache()
        graph = erdos_renyi_graph(20, 0.2, seed=0)
        twin = BulkGraph.from_graph(graph)
        key_a = cache_key("kuhn-wattenhofer", graph, seed=0, params={"k": 1})
        key_b = cache_key("kuhn-wattenhofer", twin, seed=0, params={"k": 1})
        cache.put(key_a, report)
        assert cache.get(key_b) is report

    def test_no_false_sharing_between_seeds(self, report):
        cache = ResultCache()
        graph = erdos_renyi_graph(20, 0.2, seed=0)
        cache.put(cache_key("kuhn-wattenhofer", graph, seed=0, params={"k": 1}), report)
        assert (
            cache.get(cache_key("kuhn-wattenhofer", graph, seed=1, params={"k": 1}))
            is None
        )

    def test_no_false_sharing_between_params(self, report):
        cache = ResultCache()
        graph = erdos_renyi_graph(20, 0.2, seed=0)
        cache.put(cache_key("kuhn-wattenhofer", graph, seed=0, params={"k": 1}), report)
        assert (
            cache.get(cache_key("kuhn-wattenhofer", graph, seed=0, params={"k": 2}))
            is None
        )
