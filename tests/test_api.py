"""Tests for the unified algorithm registry and the ``solve()`` façade.

Four contracts are pinned here:

* **Dispatch** -- ``backend="auto"`` resolves per capabilities and input
  (BulkGraph / large n -> vectorized, ``collect_trace`` restricts to the
  spec's declared trace backends),
  and every impossible combination raises the single
  :class:`CapabilityError` naming algorithm, capability and backends.
* **Registry completeness** -- everything reachable from the CLI and from
  ``compare_algorithms`` comes from the registry (no drift), and every
  spec's declared capabilities are honored (declared-bulk specs consume a
  ``BulkGraph`` without conversion, declared-trace specs trace, every
  declared backend executes).
* **RunReport** -- one normalised schema with back-compat accessors.
* **Back-compat** -- the classic public entry points keep their exact
  signatures, and ``solve`` reproduces their outputs bitwise.
"""

import inspect

import networkx as nx
import pytest

from repro import api
from repro.api import (
    AUTO,
    AUTO_VECTORIZE_THRESHOLD,
    AlgorithmSpec,
    CapabilityError,
    RunReport,
    algorithm_names,
    comparison_algorithms,
    get_spec,
    iter_specs,
    resolve_backend,
    solve,
    twin_specs,
)
from repro.core.kuhn_wattenhofer import FractionalVariant
from repro.core.vectorized import SHARDED, SIMULATED, VECTORIZED
from repro.graphs.bulk import bulk_grid_graph, bulk_unit_disk_graph
from repro.simulator.bulk import BulkGraph


@pytest.fixture(scope="module")
def small_graph():
    """A small connected graph every algorithm (incl. CDS specs) accepts."""
    graph = nx.random_geometric_graph(40, 0.3, seed=1)
    assert nx.is_connected(graph)
    return graph


@pytest.fixture(scope="module")
def bulk_graph():
    """A small connected CSR instance."""
    return bulk_grid_graph(5, 6)


class TestRegistry:
    def test_expected_algorithms_registered(self):
        names = set(algorithm_names())
        assert {
            "kuhn-wattenhofer",
            "greedy",
            "set-cover-greedy",
            "lrg",
            "wu-li",
            "central-lp",
            "mis",
            "random-fill",
            "all-nodes",
            "weighted-kuhn-wattenhofer",
            "kw-connect",
            "guha-khuller",
        } <= names

    def test_unknown_algorithm_names_the_registry(self):
        with pytest.raises(KeyError, match="kuhn-wattenhofer"):
            get_spec("does-not-exist")

    def test_specs_pass_through_get_spec(self):
        spec = get_spec("greedy")
        assert get_spec(spec) is spec

    def test_capability_consistency(self):
        for spec in iter_specs():
            assert spec.backends, spec.name
            assert set(spec.backends) <= {SIMULATED, VECTORIZED, SHARDED}, spec.name
            if spec.accepts_bulk:
                assert spec.supports_backend(VECTORIZED), spec.name
            if spec.supports_backend(SHARDED):
                # Sharded workers run the vectorized kernels on CSR slabs,
                # so sharded capability implies the vectorized backend and
                # native BulkGraph support (enforced by register()).
                assert spec.supports_backend(VECTORIZED), spec.name
                assert spec.accepts_bulk, spec.name
            if spec.supports_trace:
                assert set(spec.trace_backends) <= set(spec.backends), spec.name

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            api.register(get_spec("greedy"))

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            api.register(
                AlgorithmSpec(
                    name="bogus",
                    summary="",
                    backends=("quantum",),
                    runner=lambda *a, **k: None,
                    entry_point=len,
                )
            )

    def test_twin_specs_cover_the_ported_stack(self):
        names = {spec.name for spec in twin_specs()}
        assert {
            "kuhn-wattenhofer",
            "weighted-kuhn-wattenhofer",
            "greedy",
            "set-cover-greedy",
            "lrg",
            "wu-li",
            "central-lp",
        } <= names
        # CDS twins gate on their own connected suites.
        assert "kw-connect" not in names


class TestDispatch:
    def test_auto_picks_simulated_for_small_graphs(self, small_graph):
        report = solve("kuhn-wattenhofer", small_graph, seed=0, k=2)
        assert report.backend == SIMULATED

    def test_auto_picks_vectorized_for_bulk_inputs(self, bulk_graph):
        report = solve("kuhn-wattenhofer", bulk_graph, seed=0, k=2)
        assert report.backend == VECTORIZED

    def test_auto_picks_vectorized_for_large_graphs(self):
        graph = nx.path_graph(AUTO_VECTORIZE_THRESHOLD)
        assert resolve_backend("kuhn-wattenhofer", graph) == VECTORIZED
        assert resolve_backend("kuhn-wattenhofer", nx.path_graph(50)) == SIMULATED
        # End to end, on a cheap spec.
        report = solve("greedy", graph)
        assert report.backend == VECTORIZED

    def test_auto_respects_single_backend_specs(self, small_graph):
        graph = nx.path_graph(AUTO_VECTORIZE_THRESHOLD)
        # random-fill has no vectorized engine; auto stays simulated even
        # above the threshold.
        assert resolve_backend("random-fill", graph) == SIMULATED

    def test_collect_trace_dispatches_to_simulated(self, small_graph):
        report = solve("kuhn-wattenhofer", small_graph, seed=0, k=2, collect_trace=True)
        assert report.backend == SIMULATED
        assert len(report.raw.fractional.trace) > 0

    def test_collect_trace_on_vectorized_returns_columnar(self, small_graph):
        from repro.simulator.columnar import ColumnarTrace

        report = solve(
            "kuhn-wattenhofer",
            small_graph,
            seed=0,
            k=2,
            backend=VECTORIZED,
            collect_trace=True,
        )
        assert report.backend == VECTORIZED
        trace = report.raw.fractional.trace
        assert isinstance(trace, ColumnarTrace)
        assert len(trace) > 0

    def test_auto_trace_above_threshold_goes_vectorized(self):
        from repro.simulator.columnar import ColumnarTrace

        graph = nx.path_graph(AUTO_VECTORIZE_THRESHOLD + 50)
        report = solve("kuhn-wattenhofer", graph, seed=0, k=2, collect_trace=True)
        assert report.backend == VECTORIZED
        assert isinstance(report.raw.fractional.trace, ColumnarTrace)

    def test_collect_trace_on_traceless_spec_rejected(self, small_graph):
        with pytest.raises(CapabilityError, match="greedy"):
            solve("greedy", small_graph, collect_trace=True)

    def test_bulk_input_on_simulated_rejected(self, bulk_graph):
        with pytest.raises(CapabilityError, match="BulkGraph"):
            solve("kuhn-wattenhofer", bulk_graph, backend=SIMULATED)

    def test_bulk_input_on_simulated_only_spec_rejected(self, bulk_graph):
        with pytest.raises(CapabilityError, match="random-fill"):
            solve("random-fill", bulk_graph)

    def test_bulk_input_with_trace_goes_columnar(self, bulk_graph):
        from repro.simulator.columnar import ColumnarTrace

        report = solve("kuhn-wattenhofer", bulk_graph, seed=0, k=2, collect_trace=True)
        assert report.backend == VECTORIZED
        assert isinstance(report.raw.fractional.trace, ColumnarTrace)

    def test_unsupported_backend_rejected(self, small_graph):
        with pytest.raises(CapabilityError, match="vectorized"):
            solve("random-fill", small_graph, backend=VECTORIZED)

    def test_unknown_backend_rejected(self, small_graph):
        with pytest.raises(ValueError, match="auto"):
            solve("greedy", small_graph, backend="warp-drive")

    def test_capability_error_names_everything(self, small_graph):
        with pytest.raises(CapabilityError) as excinfo:
            solve("greedy", small_graph, collect_trace=True)
        message = str(excinfo.value)
        assert "greedy" in message
        assert "collect_trace" in message
        assert "no backend supports it" in message

    def test_capability_error_is_a_value_error(self):
        assert issubclass(CapabilityError, ValueError)


class TestRunReport:
    def test_schema(self, small_graph):
        report = solve("kuhn-wattenhofer", small_graph, seed=3, k=2)
        assert isinstance(report, RunReport)
        assert report.algorithm == "kuhn-wattenhofer"
        assert report.backend in (SIMULATED, VECTORIZED)
        assert isinstance(report.dominating_set, frozenset)
        assert report.objective == float(report.size)
        assert report.rounds > 0
        assert report.messages > 0
        assert report.max_message_bits > 0
        assert report.seed == 3
        assert report.params["k"] == 2
        assert report.elapsed_s >= 0.0

    def test_backcompat_accessors(self, small_graph):
        report = solve("kuhn-wattenhofer", small_graph, seed=0, k=2)
        assert report.size == len(report.dominating_set)
        assert report.total_rounds == report.rounds
        assert report.total_messages == report.messages

    def test_as_row_flattens(self, small_graph):
        row = solve("greedy", small_graph).as_row()
        assert row["algorithm"] == "greedy"
        assert row["size"] > 0
        assert row["rounds"] is None

    def test_centralized_specs_report_none_rounds(self, small_graph):
        report = solve("mis", small_graph, seed=0)
        assert report.rounds is None
        assert report.messages is None

    def test_weighted_objective_is_cost(self, small_graph):
        weights = {node: 2.0 for node in small_graph}
        report = solve(
            "weighted-kuhn-wattenhofer", small_graph, seed=0, k=2, weights=weights
        )
        assert report.objective == 2.0 * report.size
        # Unit weights by default: objective == size.
        unit = solve("weighted-kuhn-wattenhofer", small_graph, seed=0, k=2)
        assert unit.objective == float(unit.size)


class TestCapabilitiesHonored:
    """Every declared capability is exercised, not just declared."""

    @pytest.mark.parametrize(
        "name", [spec.name for spec in iter_specs() if spec.accepts_bulk]
    )
    def test_bulk_specs_consume_csr_without_conversion(self, name, monkeypatch):
        bulk = bulk_grid_graph(4, 5)

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError(
                f"{name} converted a BulkGraph through BulkGraph.from_graph"
            )

        monkeypatch.setattr(BulkGraph, "from_graph", forbidden)
        report = solve(name, bulk, seed=0)
        assert report.backend == VECTORIZED
        assert report.size > 0

    @pytest.mark.parametrize(
        "name", [spec.name for spec in iter_specs() if spec.supports_trace]
    )
    def test_trace_specs_produce_events(self, name, small_graph):
        report = solve(name, small_graph, seed=0, k=2, collect_trace=True)
        assert report.backend == SIMULATED
        raw = report.raw
        trace = raw.fractional.trace if hasattr(raw, "fractional") else raw.trace
        assert len(trace) > 0

    @pytest.mark.parametrize(
        "name,backend",
        [
            (spec.name, backend)
            for spec in iter_specs()
            for backend in spec.backends
        ],
    )
    def test_every_declared_backend_executes(self, name, backend, small_graph):
        report = solve(name, small_graph, backend=backend, seed=0)
        assert report.backend == backend
        assert report.size > 0


class TestRegistryCompleteness:
    """No drift: CLI and compare_algorithms enumerate the registry."""

    def test_cli_has_no_handwired_algorithm_wrappers(self):
        import repro.cli as cli

        wrappers = [name for name in vars(cli) if name.startswith("_alg_")]
        assert wrappers == []

    def test_cli_algorithm_choices_come_from_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        observed = set()
        for action in parser._subparsers._group_actions[0].choices.values():
            for sub_action in action._actions:
                if "--algorithm" in getattr(sub_action, "option_strings", ()):
                    observed.add(tuple(sub_action.choices))
        # Every sub-command enumerates the registry; ``trace`` narrows to
        # the registry's traceable specs (still registry-derived, no drift).
        traceable = tuple(
            spec.name for spec in iter_specs() if spec.supports_trace
        )
        assert observed == {tuple(algorithm_names()), traceable}

    def test_compare_algorithms_defaults_come_from_registry(self, small_graph):
        from repro.analysis.experiment import as_instances, compare_algorithms

        instances = as_instances({"g": small_graph})
        records = compare_algorithms(instances, trials=1, seed=0)
        observed = {record.algorithm for record in records}
        expected = {spec.name for spec in iter_specs(comparison=True)}
        assert observed == expected

    def test_bulk_comparison_keeps_only_bulk_capable_specs(self):
        from repro.analysis.experiment import as_instances, compare_algorithms

        bulk = bulk_unit_disk_graph(60, radius=0.25, seed=0)
        records = compare_algorithms(
            as_instances({"csr": bulk}), trials=1, seed=0
        )
        observed = {record.algorithm for record in records}
        expected = {
            spec.name
            for spec in iter_specs(backend=VECTORIZED, comparison=True)
            if spec.in_bulk_comparison
        }
        assert observed == expected
        assert "central-lp" not in observed
        assert "random-fill" not in observed

    def test_explicit_bulk_incapable_request_errors(self):
        bulk = bulk_unit_disk_graph(40, radius=0.3, seed=0)
        with pytest.raises(CapabilityError, match="random-fill"):
            comparison_algorithms(bulk=True, names=["random-fill"])

    def test_comparison_callables_are_picklable(self):
        import pickle

        algorithms = comparison_algorithms(overrides={"kuhn-wattenhofer": {"k": 3}})
        for name, algorithm in algorithms.items():
            pickle.dumps(algorithm), name


ENTRY_POINT_SIGNATURES = {
    "kuhn_wattenhofer_dominating_set": [
        "graph", "k", "seed", "variant", "rounding_rule", "collect_trace",
        "backend", "shards", "faults", "repair", "_bulk",
    ],
    "lrg_dominating_set": ["graph", "seed", "max_phases", "backend", "_bulk"],
    "wu_li_dominating_set": [
        "graph", "apply_pruning", "ensure_domination", "seed", "backend", "_bulk",
    ],
    "greedy_dominating_set": ["graph"],
    "central_lp_rounding_dominating_set": [
        "graph", "seed", "rule", "backend", "lp_method", "lp_tol",
    ],
    "random_dominating_set": ["graph", "seed"],
    "weighted_kuhn_wattenhofer_dominating_set": [
        "graph", "weights", "k", "seed", "rounding_rule", "collect_trace",
        "backend", "shards", "_bulk",
    ],
    "approximate_weighted_fractional_mds": [
        "graph", "weights", "k", "seed", "collect_trace", "backend", "shards",
        "_bulk", "_executor",
    ],
}


class TestBackCompat:
    """The classic entry points stay unchanged; solve() matches them bitwise."""

    @pytest.mark.parametrize("name", sorted(ENTRY_POINT_SIGNATURES))
    def test_entry_point_signatures_pinned(self, name):
        import repro
        from repro.baselines.greedy import greedy_dominating_set
        from repro.baselines.jia_rajaraman_suel import lrg_dominating_set
        from repro.baselines.lp_rounding_central import (
            central_lp_rounding_dominating_set,
        )
        from repro.baselines.trivial import random_dominating_set
        from repro.baselines.wu_li import wu_li_dominating_set

        functions = {
            "kuhn_wattenhofer_dominating_set": repro.kuhn_wattenhofer_dominating_set,
            "lrg_dominating_set": lrg_dominating_set,
            "wu_li_dominating_set": wu_li_dominating_set,
            "greedy_dominating_set": greedy_dominating_set,
            "central_lp_rounding_dominating_set": central_lp_rounding_dominating_set,
            "random_dominating_set": random_dominating_set,
            "weighted_kuhn_wattenhofer_dominating_set": (
                repro.weighted_kuhn_wattenhofer_dominating_set
            ),
            "approximate_weighted_fractional_mds": (
                repro.approximate_weighted_fractional_mds
            ),
        }
        parameters = list(inspect.signature(functions[name]).parameters)
        assert parameters == ENTRY_POINT_SIGNATURES[name]

    @pytest.mark.parametrize("backend", [SIMULATED, VECTORIZED])
    def test_solve_matches_pipeline_entry_point_bitwise(self, small_graph, backend):
        import repro

        direct = repro.kuhn_wattenhofer_dominating_set(
            small_graph, k=2, seed=7, backend=backend
        )
        report = solve("kuhn-wattenhofer", small_graph, backend=backend, seed=7, k=2)
        assert report.dominating_set == direct.dominating_set
        assert report.rounds == direct.total_rounds
        assert report.messages == direct.total_messages
        assert report.max_message_bits == direct.max_message_bits
        assert report.raw.fractional.x == direct.fractional.x

    def test_solve_matches_baseline_entry_points(self, small_graph):
        from repro.baselines.greedy import greedy_dominating_set
        from repro.baselines.jia_rajaraman_suel import lrg_dominating_set
        from repro.baselines.trivial import random_dominating_set
        from repro.baselines.wu_li import wu_li_dominating_set

        assert solve("greedy", small_graph).dominating_set == greedy_dominating_set(
            small_graph
        )
        assert (
            solve("lrg", small_graph, backend=SIMULATED, seed=5).dominating_set
            == lrg_dominating_set(small_graph, seed=5).dominating_set
        )
        assert (
            solve("wu-li", small_graph, backend=SIMULATED).dominating_set
            == wu_li_dominating_set(small_graph).dominating_set
        )
        assert solve(
            "random-fill", small_graph, seed=11
        ).dominating_set == random_dominating_set(small_graph, seed=11)

    def test_solve_matches_weighted_entry_point(self, small_graph):
        import repro

        weights = {node: 1.0 + (node % 3) for node in small_graph}
        direct = repro.weighted_kuhn_wattenhofer_dominating_set(
            small_graph, weights, k=2, seed=3
        )
        report = solve(
            "weighted-kuhn-wattenhofer",
            small_graph,
            backend=SIMULATED,
            seed=3,
            k=2,
            weights=weights,
        )
        assert report.dominating_set == direct.dominating_set
        assert report.objective == direct.cost


class TestExplicitBackendComparisons:
    """Regressions: explicit concrete backends on mixed comparison sets."""

    def test_enumerated_comparison_skips_backend_incapable_specs(self):
        algorithms = comparison_algorithms(backend=VECTORIZED)
        assert "kuhn-wattenhofer" in algorithms and "lrg" in algorithms
        # Simulated-only specs are skipped, not raised on.
        assert "mis" not in algorithms
        assert "random-fill" not in algorithms

    def test_named_backend_incapable_spec_raises_up_front(self):
        with pytest.raises(CapabilityError, match="mis"):
            comparison_algorithms(backend=VECTORIZED, names=["mis"])

    def test_unknown_backend_rejected_up_front(self):
        with pytest.raises(ValueError, match="auto"):
            comparison_algorithms(backend="warp-drive")

    def test_compare_with_explicit_vectorized_backend_runs(self, small_graph):
        from repro.analysis.experiment import as_instances, compare_algorithms

        records = compare_algorithms(
            as_instances({"g": small_graph}),
            trials=1,
            seed=0,
            backend=VECTORIZED,
        )
        observed = {record.algorithm for record in records}
        assert "kuhn-wattenhofer" in observed
        assert "mis" not in observed

    def test_unsupported_backend_message_is_not_garbled(self, small_graph):
        with pytest.raises(CapabilityError) as excinfo:
            solve("mis", small_graph, backend=VECTORIZED)
        message = str(excinfo.value)
        assert message.count("vectorized") == 1
        assert "execution" in message
        assert "'simulated'" in message


class TestCliParamDeclarations:
    def test_k_accepting_specs_declare_it(self):
        declared = {
            spec.name for spec in iter_specs() if "k" in spec.cli_params
        }
        assert declared == {
            "kuhn-wattenhofer",
            "weighted-kuhn-wattenhofer",
            "kw-connect",
        }


class TestReviewRegressions:
    def test_capability_error_survives_pickling(self):
        import pickle

        error = CapabilityError("lrg", "collect_trace", "vectorized", ("simulated",))
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == str(error)
        assert clone.algorithm == "lrg" and clone.supported == ("simulated",)

    def test_capability_error_crosses_process_pool(self):
        from repro.analysis.experiment import as_instances, sweep_fractional

        bulk = [
            bulk_unit_disk_graph(30, radius=0.3, seed=s) for s in (0, 1)
        ]
        instances = as_instances({"a": bulk[0], "b": bulk[1]})
        with pytest.raises(CapabilityError, match="vectorized"):
            sweep_fractional(instances, k_values=[1], backend="simulated", jobs=2)

    def test_falsy_collect_trace_ignored_by_traceless_specs(self, small_graph):
        report = solve("greedy", small_graph, collect_trace=False)
        assert report.size > 0

    def test_requires_connected_enforced(self):
        disconnected = nx.Graph()
        disconnected.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="connected graph"):
            solve("guha-khuller", disconnected)
        with pytest.raises(ValueError, match="kw-connect"):
            solve("kw-connect", disconnected, k=1, seed=0)

    def test_bulk_named_sim_only_spec_message_is_accurate(self):
        with pytest.raises(CapabilityError) as excinfo:
            comparison_algorithms(bulk=True, names=["mis"])
        message = str(excinfo.value)
        assert "no backend supports it" in message
        # Must not point the user at a backend that cannot help.
        assert "'vectorized'" not in message

    def test_runners_report_resolved_k(self, small_graph):
        # Default k = Θ(log Δ) is surfaced through RunReport.params, so no
        # caller has to introspect algorithm-specific result shapes.
        report = solve("kuhn-wattenhofer", small_graph, seed=0)
        assert report.params["k"] == report.raw.k >= 1
        weighted = solve("weighted-kuhn-wattenhofer", small_graph, seed=0)
        assert weighted.params["k"] == weighted.raw.fractional.k == 2
        connect = solve("kw-connect", small_graph, seed=0)
        assert connect.params["k"] == connect.raw[1].k >= 1

    def test_registry_comparisons_skip_redundant_deterministic_trials(
        self, small_graph, monkeypatch
    ):
        from collections import Counter

        from repro.analysis.experiment import as_instances, compare_algorithms

        calls = Counter()
        real = api.run_algorithm

        def counting(graph, seed, algorithm="kuhn-wattenhofer", **kwargs):
            calls[algorithm] += 1
            return real(graph, seed, algorithm=algorithm, **kwargs)

        monkeypatch.setattr(api, "run_algorithm", counting)
        compare_algorithms(
            as_instances({"g": small_graph}),
            algorithms=["greedy", "lrg"],
            trials=3,
            seed=0,
        )
        assert calls["greedy"] == 1  # deterministic: one trial suffices
        assert calls["lrg"] == 3

    def test_vectorized_without_bulk_native_entry_point_is_gated(self):
        # A spec may support the vectorized engine yet not consume CSR
        # inputs natively; dispatch must refuse the BulkGraph rather than
        # hand it to an entry point that needs networkx.
        spec = AlgorithmSpec(
            name="hypothetical",
            summary="",
            backends=(SIMULATED, VECTORIZED),
            runner=lambda *a, **k: None,
            entry_point=len,
            accepts_bulk=False,
        )
        bulk = bulk_grid_graph(3, 3)
        with pytest.raises(CapabilityError, match="BulkGraph"):
            resolve_backend(spec, bulk)

    def test_import_repro_does_not_load_the_registry(self):
        import subprocess
        import sys

        code = (
            "import sys, repro; "
            "assert 'repro.api' not in sys.modules; "
            "repro.solve; "
            "assert 'repro.api' in sys.modules"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr


class TestCDSTwins:
    """The CDS twin pairs gated by bench_lp_speedup are auto-enumerated."""

    def test_cds_twins_enumerated(self):
        cds = {
            spec.name
            for spec in twin_specs(exclude_cds=False)
            if spec.produces_cds
        }
        assert {"kw-connect", "guha-khuller"} <= cds

    def test_guha_khuller_backend_twins(self, small_graph):
        import networkx as nx

        component = max(nx.connected_components(small_graph), key=len)
        graph = nx.convert_node_labels_to_integers(
            small_graph.subgraph(component).copy()
        )
        simulated = solve("guha-khuller", graph, backend="simulated", seed=0)
        vectorized = solve("guha-khuller", graph, backend="vectorized", seed=0)
        assert simulated.dominating_set == vectorized.dominating_set
        assert simulated.objective == vectorized.objective


class TestFaultCapability:
    """``faults=`` / ``repair=`` flow through the registry capability."""

    def test_pipeline_declares_fault_support(self):
        assert get_spec("kuhn-wattenhofer").supports_faults
        for name in ("greedy", "lrg", "wu-li", "central-lp"):
            assert not get_spec(name).supports_faults

    def test_faults_on_unsupporting_spec_rejected(self, small_graph):
        from repro.simulator.fault_schedule import FaultSpec

        with pytest.raises(CapabilityError, match="fault injection"):
            solve("greedy", small_graph, faults=FaultSpec(loss_probability=0.1))

    def test_falsy_faults_ignored_by_unsupporting_specs(self, small_graph):
        report = solve("greedy", small_graph, faults=None, repair=True)
        assert report.size > 0

    def test_faulted_solve_surfaces_repair_and_summaries(self, small_graph):
        from repro.simulator.fault_schedule import FaultSpec

        spec = FaultSpec(loss_probability=0.2, crash_probability=0.2, seed=3)
        report = solve("kuhn-wattenhofer", small_graph, k=2, seed=0, faults=spec)
        assert report.repair is not None
        assert report.repair.feasible_after
        assert set(report.fault_summaries) == {"fractional", "rounding"}
        assert report.fault_summaries["fractional"].spec == spec

    def test_faultfree_solve_reports_no_repair(self, small_graph):
        report = solve("kuhn-wattenhofer", small_graph, k=2, seed=0)
        assert report.repair is None
        assert report.fault_summaries == {}

    def test_faulted_solve_backend_parity(self, small_graph):
        from repro.simulator.fault_schedule import FaultSpec

        spec = FaultSpec(loss_probability=0.25, crash_probability=0.25, seed=7)
        reports = {
            backend: solve(
                "kuhn-wattenhofer",
                small_graph,
                k=2,
                seed=1,
                backend=backend,
                faults=spec,
            )
            for backend in (SIMULATED, VECTORIZED)
        }
        assert (
            reports[SIMULATED].dominating_set == reports[VECTORIZED].dominating_set
        )
        assert reports[SIMULATED].repair == reports[VECTORIZED].repair


class TestNormalizedParams:
    """Pinning tests for solve()'s canonical parameter normalization.

    The service layer's content-addressed cache keys hash through
    ``normalized_params``: two spellings of the same request MUST
    normalize identically, and distinct requests must never collapse.
    """

    def test_kwargs_order_is_irrelevant(self):
        first = api.normalized_params(
            "kuhn-wattenhofer", {"k": 2, "variant": "known_delta"}
        )
        second = api.normalized_params(
            "kuhn-wattenhofer", {"variant": "known_delta", "k": 2}
        )
        assert first == second
        assert list(first) == list(second)  # key order is canonical too

    def test_defaults_fill_in(self):
        implicit = api.normalized_params("kuhn-wattenhofer", {"k": 2})
        explicit = api.normalized_params(
            "kuhn-wattenhofer",
            {
                "k": 2,
                "variant": FractionalVariant.UNKNOWN_DELTA,
                "rounding_rule": "log",
                "repair": True,
            },
        )
        assert implicit == explicit

    def test_enum_values_collapse_to_strings(self):
        params = api.normalized_params(
            "kuhn-wattenhofer", {"k": 2, "variant": FractionalVariant.KNOWN_DELTA}
        )
        assert params["variant"] == "known_delta"

    def test_unknown_param_raises_when_strict(self):
        with pytest.raises(TypeError, match="bogus"):
            api.normalized_params("kuhn-wattenhofer", {"bogus": 1})

    def test_unknown_param_tolerated_when_lenient(self):
        params = api.normalized_params(
            "kuhn-wattenhofer", {"k": 2, "bogus": 1}, strict=False
        )
        assert "bogus" not in params

    def test_distinct_requests_stay_distinct(self):
        assert api.normalized_params(
            "kuhn-wattenhofer", {"k": 2}
        ) != api.normalized_params("kuhn-wattenhofer", {"k": 3})

    def test_runner_context_excluded(self):
        params = api.normalized_params("kuhn-wattenhofer", {"k": 2})
        for context in ("graph", "seed", "backend"):
            assert context not in params

    def test_report_params_match_across_spellings(self, small_graph):
        """solve() reports identical params for equivalent invocations."""
        implicit = solve("kuhn-wattenhofer", small_graph, seed=0, k=2)
        explicit = solve(
            "kuhn-wattenhofer",
            small_graph,
            seed=0,
            k=2,
            variant=FractionalVariant.UNKNOWN_DELTA,
            rounding_rule="log",
        )
        assert implicit.params == explicit.params
        assert list(implicit.params) == list(explicit.params)

    def test_canonical_param_value_shapes(self):
        assert api.canonical_param_value(FractionalVariant.KNOWN_DELTA) == (
            "known_delta"
        )
        assert api.canonical_param_value([1, 2]) == (1, 2)
        assert api.canonical_param_value({"b": 1, "a": 2}) == {"a": 2, "b": 1}
