"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.family == "unit_disk"
        assert args.n == 80

    def test_bounds_defaults(self):
        args = build_parser().parse_args(["bounds"])
        assert args.delta == 16


class TestSolveCommand:
    def test_solve_prints_table(self, capsys):
        exit_code = main(
            ["solve", "--family", "erdos_renyi", "--n", "30", "--p", "0.15", "--k", "2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "dominating_set_size" in captured.out

    def test_solve_json_output(self, capsys):
        exit_code = main(
            [
                "solve",
                "--family",
                "star",
                "--k",
                "1",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["dominating_set_size"] >= 1
        assert payload["total_rounds"] > 0

    def test_solve_show_set(self, capsys):
        exit_code = main(["solve", "--family", "path", "--n", "12", "--k", "1", "--show-set"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "dominating set:" in captured.out

    def test_solve_no_lp_flag(self, capsys):
        exit_code = main(["solve", "--family", "grid", "--k", "1", "--no-lp", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["lp_optimum"] is None


class TestCompareCommand:
    def test_compare_prints_all_algorithms(self, capsys):
        exit_code = main(
            [
                "compare",
                "--family",
                "erdos_renyi",
                "--n",
                "25",
                "--p",
                "0.15",
                "--k",
                "1",
                "--trials",
                "1",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ("kuhn-wattenhofer", "greedy", "wu-li"):
            assert name in captured.out

    def test_compare_csv(self, capsys):
        exit_code = main(
            ["compare", "--family", "star", "--k", "1", "--trials", "1", "--csv"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.splitlines()[0].startswith("instance,")


class TestSweepCommand:
    def test_sweep_outputs_rows_per_k(self, capsys):
        exit_code = main(
            ["sweep", "--family", "grid", "--max-k", "2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ratio" in captured.out


class TestBoundsCommand:
    def test_bounds_table(self, capsys):
        exit_code = main(["bounds", "--delta", "8", "--max-k", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "alg2_ratio_bound" in captured.out
        assert "pipeline_ratio_bound" in captured.out


class TestScalingFlags:
    def test_jobs_and_suite_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.suite is None

    def test_sweep_over_suite_with_jobs(self, capsys):
        exit_code = main(
            ["sweep", "--suite", "tiny", "--max-k", "2", "--jobs", "2", "--csv"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        lines = captured.out.splitlines()
        # One row per (instance, k): 6 tiny instances × 2 k-values + header.
        assert len(lines) == 1 + 6 * 2
        assert any(line.startswith("star_12,") for line in lines)

    def test_compare_with_jobs(self, capsys):
        exit_code = main(
            ["compare", "--family", "star", "--n", "12", "--jobs", "2", "--trials", "1"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "greedy" in captured.out

    def test_sweep_suite_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--suite", "galactic"])

    def test_sweep_xlarge_rejects_simulated_backend(self, capsys):
        # The default --backend auto resolves CSR suites to the vectorized
        # engine; only an *explicit* simulated request is impossible.
        exit_code = main(["sweep", "--suite", "xlarge", "--backend", "simulated"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "vectorized" in captured.err

    def test_compare_xlarge_rejects_simulated_backend(self, capsys):
        exit_code = main(["compare", "--suite", "xlarge", "--backend", "simulated"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "vectorized" in captured.err

    def test_compare_bulk_suite_uses_bulk_algorithms(self, capsys, monkeypatch):
        # CSR suites keep only the bulk-capable registry specs (pipeline,
        # LRG, Wu–Li, both greedy references); patch the suite to a small
        # CSR instance to keep the test fast.  The default backend (auto)
        # resolves the CSR instance to the vectorized engine.
        import repro.cli as cli_module
        from repro.graphs.bulk import bulk_unit_disk_graph

        monkeypatch.setattr(
            cli_module,
            "graph_suite",
            lambda scale, seed=0: {
                "unit_disk_csr": bulk_unit_disk_graph(60, radius=0.2, seed=seed)
            },
        )
        exit_code = main(
            ["compare", "--suite", "xlarge", "--trials", "1", "--csv"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ("kuhn-wattenhofer", "greedy", "lrg", "wu-li", "set-cover-greedy"):
            assert name in captured.out
        # The dense-LP reference opts out of bulk-scale comparisons, and
        # the simulated-only specs cannot run on CSR instances.
        assert "central-lp" not in captured.out
        assert "random-fill" not in captured.out


class TestRegistryDrivenCli:
    def test_backend_defaults_to_auto(self):
        args = build_parser().parse_args(["solve"])
        assert args.backend == "auto"

    def test_solve_accepts_any_registered_algorithm(self, capsys):
        exit_code = main(
            ["solve", "--family", "grid", "--algorithm", "greedy", "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["algorithm"] == "greedy"
        assert payload["total_rounds"] is None
        assert payload["dominating_set_size"] >= 1

    def test_solve_reports_resolved_backend(self, capsys):
        exit_code = main(["solve", "--family", "star", "--k", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        # n = 80 star sits below the auto threshold -> simulated.
        assert payload["backend"] == "simulated"

    def test_compare_restricted_to_named_algorithms(self, capsys):
        exit_code = main(
            [
                "compare", "--family", "star", "--n", "14", "--trials", "1",
                "--algorithm", "greedy", "--algorithm", "wu-li", "--csv",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        body = captured.out.splitlines()[1:]
        observed = {line.split(",")[1] for line in body}
        assert observed == {"greedy", "wu-li"}

    def test_algorithms_subcommand_lists_registry(self, capsys):
        from repro.api import algorithm_names

        exit_code = main(["algorithms"])
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in algorithm_names():
            assert name in captured.out

    def test_solve_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--algorithm", "quantum-annealer"])

    def test_compare_explicit_vectorized_backend_skips_simulated_only(self, capsys):
        exit_code = main(
            [
                "compare", "--family", "star", "--n", "14", "--trials", "1",
                "--backend", "vectorized", "--csv",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        body = captured.out.splitlines()[1:]
        observed = {line.split(",")[1] for line in body}
        assert "kuhn-wattenhofer" in observed
        assert "mis" not in observed and "random-fill" not in observed

    def test_compare_named_incompatible_algorithm_is_a_cli_error(self, capsys):
        exit_code = main(
            [
                "compare", "--family", "star", "--n", "14", "--trials", "1",
                "--backend", "vectorized", "--algorithm", "mis",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err and "mis" in captured.err

    def test_solve_notes_ignored_k(self, capsys):
        exit_code = main(
            ["solve", "--family", "grid", "--algorithm", "greedy", "--k", "5", "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "--k is not used" in captured.err

    def test_solve_reports_resolved_default_k(self, capsys):
        # Without --k the pipeline picks k = Θ(log Δ); the payload shows
        # the resolved value, not null.
        exit_code = main(["solve", "--family", "grid", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["k"] >= 1

    def test_solve_named_incompatible_backend_is_a_cli_error(self, capsys):
        exit_code = main(
            ["solve", "--family", "star", "--algorithm", "mis",
             "--backend", "vectorized"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err and "mis" in captured.err

    def test_solve_disconnected_cds_algorithm_is_a_cli_error(self, capsys):
        exit_code = main(
            ["solve", "--family", "erdos_renyi", "--n", "40", "--p", "0.03",
             "--algorithm", "kw-connect", "--no-lp"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err and "connected" in captured.err

    def test_solve_notes_ignored_variant(self, capsys):
        exit_code = main(
            ["solve", "--family", "grid", "--algorithm", "greedy",
             "--variant", "known_delta", "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "--variant is not used" in captured.err

    def test_solve_weighted_reports_default_k(self, capsys):
        exit_code = main(
            ["solve", "--family", "grid",
             "--algorithm", "weighted-kuhn-wattenhofer", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        # The runner default (k=2) is reported, not null.
        assert payload["k"] == 2


class TestCertifyCommand:
    def test_certify_defaults(self):
        args = build_parser().parse_args(["certify"])
        assert args.algorithm == "kuhn-wattenhofer"
        assert args.backend == "auto"
        assert not args.no_lp

    def test_certify_valid_certificate(self, capsys):
        exit_code = main(
            [
                "certify",
                "--family",
                "erdos_renyi",
                "--n",
                "40",
                "--p",
                "0.15",
                "--seed",
                "1",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["primal_feasible"] is True
        assert payload["dual_feasible"] is True
        assert payload["weak_duality_gap"] >= 0.0
        assert payload["certified_ratio"] >= 1.0
        assert payload["certified_lower_bound"] > 0.0
        assert payload["ratio_vs_lp"] >= 1.0
        assert payload["formulation"] == "dense"

    def test_certify_no_lp_keeps_lemma1_certificate(self, capsys):
        exit_code = main(
            ["certify", "--family", "star", "--n", "12", "--no-lp", "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["lp_optimum"] is None
        assert payload["ratio_vs_lp"] is None
        assert payload["dual_feasible"] is True

    def test_certify_table_output_reports_validity(self, capsys):
        exit_code = main(
            ["certify", "--family", "grid", "--n", "25", "--algorithm", "greedy"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "certificate: VALID" in captured.out

    def test_certify_uses_sparse_formulation_at_scale(self, capsys, monkeypatch):
        import repro.api

        monkeypatch.setattr(repro.api, "AUTO_VECTORIZE_THRESHOLD", 16)
        exit_code = main(
            [
                "certify",
                "--family",
                "erdos_renyi",
                "--n",
                "30",
                "--p",
                "0.2",
                "--seed",
                "3",
                "--algorithm",
                "greedy",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["formulation"] == "sparse-csr"
        assert payload["dual_feasible"] is True
        assert payload["ratio_vs_lp"] >= 1.0

    def test_certify_forwards_registry_params(self, capsys):
        exit_code = main(
            [
                "certify",
                "--family",
                "unit_disk",
                "--n",
                "30",
                "--k",
                "2",
                "--algorithm",
                "kuhn-wattenhofer",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert json.loads(captured.out)["dominating_set_size"] > 0

    def test_certify_lp_method_defaults(self):
        args = build_parser().parse_args(["certify"])
        assert args.lp_method == "highs"
        assert args.lp_tol == pytest.approx(1e-3)

    def test_certify_rejects_unknown_lp_method(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["certify", "--lp-method", "simplex"])
        assert "invalid choice" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "lp_method,lp_tol", [("pdhg", "1e-3"), ("mwu", "0.05")]
    )
    def test_certify_first_order_reports_certificate(
        self, capsys, lp_method, lp_tol
    ):
        exit_code = main(
            [
                "certify",
                "--family",
                "erdos_renyi",
                "--n",
                "40",
                "--p",
                "0.15",
                "--seed",
                "1",
                "--lp-method",
                lp_method,
                "--lp-tol",
                lp_tol,
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["lp_method"] == lp_method
        assert payload["lp_certified_gap"] is not None
        assert 0.0 <= payload["lp_certified_gap"] <= float(lp_tol)
        assert payload["primal_feasible"] is True
        assert payload["dual_feasible"] is True
        assert payload["certified_ratio"] >= 1.0

    def test_certify_highs_reports_no_first_order_gap(self, capsys):
        exit_code = main(
            ["certify", "--family", "grid", "--n", "25", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["lp_method"] == "highs"
        assert payload["lp_certified_gap"] is None

    def test_compare_accepts_lp_method(self, capsys):
        exit_code = main(
            [
                "compare",
                "--family",
                "erdos_renyi",
                "--n",
                "30",
                "--p",
                "0.15",
                "--seed",
                "1",
                "--trials",
                "1",
                "--algorithm",
                "greedy",
                "--lp-method",
                "pdhg",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "greedy" in captured.out

    def test_certify_disconnected_cds_algorithm_is_a_cli_error(self, capsys):
        exit_code = main(
            [
                "certify",
                "--family",
                "erdos_renyi",
                "--n",
                "40",
                "--p",
                "0.01",
                "--seed",
                "0",
                "--algorithm",
                "kw-connect",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err


class TestTraceCommand:
    def test_trace_prints_report_and_invariant_verdict(self, capsys):
        exit_code = main(
            [
                "trace",
                "--family",
                "erdos_renyi",
                "--n",
                "30",
                "--p",
                "0.15",
                "--k",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "events in a" in captured.out
        assert "gray%" in captured.out
        assert "invariants" in captured.out
        assert "OK" in captured.out

    def test_trace_json_payload(self, capsys):
        exit_code = main(
            [
                "trace",
                "--family",
                "star",
                "--n",
                "20",
                "--k",
                "1",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["trace"] == "ExecutionTrace"
        assert payload["events"] > 0
        assert payload["report"]["phases"]
        assert payload["invariants"]["ok"] is True

    def test_trace_vectorized_backend_is_columnar(self, capsys):
        exit_code = main(
            [
                "trace",
                "--family",
                "erdos_renyi",
                "--n",
                "40",
                "--p",
                "0.1",
                "--k",
                "2",
                "--backend",
                "vectorized",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["trace"] == "ColumnarTrace"
        assert payload["backend"] == "vectorized"
        assert payload["invariants"]["ok"] is True

    def test_trace_no_invariants_flag(self, capsys):
        exit_code = main(
            ["trace", "--family", "path", "--n", "12", "--k", "1", "--no-invariants"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "invariants" not in captured.out

    def test_trace_weighted_variant_skips_invariants(self, capsys):
        exit_code = main(
            [
                "trace",
                "--family",
                "unit_disk",
                "--n",
                "30",
                "--algorithm",
                "weighted-kuhn-wattenhofer",
                "--k",
                "2",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert "invariants" not in payload

    def test_trace_rejects_traceless_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--algorithm", "greedy"])

    def test_algorithms_table_shows_trace_backends(self, capsys):
        exit_code = main(["algorithms"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "simulated+vectorized" in captured.out


class TestFaultsCommand:
    def test_faults_prints_degradation_table(self, capsys):
        exit_code = main(
            [
                "faults",
                "--n",
                "40",
                "--radius",
                "0.25",
                "--trials",
                "1",
                "--rate",
                "0.2,0.2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "mean_repaired_size" in captured.out
        assert "mean_coverage_deficit" in captured.out

    def test_faults_csv(self, capsys):
        exit_code = main(
            [
                "faults",
                "--n",
                "30",
                "--radius",
                "0.3",
                "--trials",
                "1",
                "--rate",
                "0.0,0.3",
                "--csv",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "baseline_size" in captured.out.splitlines()[0]

    def test_faults_rejects_malformed_rate(self, capsys):
        exit_code = main(["faults", "--n", "20", "--rate", "0.5"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "LOSS,CRASH" in captured.err

    def test_faults_rejects_out_of_range_rate(self, capsys):
        exit_code = main(["faults", "--n", "20", "--rate", "1.5,0.0"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "probabilities" in captured.err

    def test_algorithms_table_has_faults_column(self, capsys):
        exit_code = main(["algorithms"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "faults" in captured.out


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        captured = capsys.readouterr()
        assert excinfo.value.code == 0
        assert "repro-domset" in captured.out
        # Works from a bare source checkout: falls back to repro.__version__.
        import repro

        assert repro.__version__ in captured.out


class TestLoadgenCommand:
    def test_loadgen_table(self, capsys):
        exit_code = main(
            [
                "loadgen",
                "--n",
                "24",
                "--graphs",
                "1",
                "--max-k",
                "2",
                "--repeats",
                "1",
                "--fault-requests",
                "0",
                "--passes",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "req_per_s" in captured.out
        assert "parity" in captured.out

    def test_loadgen_json(self, capsys):
        exit_code = main(
            [
                "loadgen",
                "--n",
                "24",
                "--graphs",
                "1",
                "--max-k",
                "2",
                "--repeats",
                "0",
                "--fault-requests",
                "0",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["objective_match"] is True
        assert payload["latency"]["p99_s"] is not None
        assert payload["coalescing_factor"] > 1.0


class TestServeCommand:
    def test_serve_answers_request_script(self, capsys, tmp_path, monkeypatch):
        script = tmp_path / "requests.jsonl"
        script.write_text(
            "\n".join(
                [
                    '{"algorithm": "kuhn-wattenhofer", "family": "star",'
                    ' "graph_params": {"leaves": 8}, "seed": 0, "k": 1}',
                    "# comments and blank lines are skipped",
                    "",
                    '{"algorithm": "kuhn-wattenhofer", "family": "star",'
                    ' "graph_params": {"leaves": 8}, "seed": 0, "k": 2}',
                ]
            )
            + "\n",
            encoding="utf-8",
        )
        exit_code = main(["serve", "--requests", str(script), "--stats"])
        captured = capsys.readouterr()
        assert exit_code == 0
        lines = [line for line in captured.out.splitlines() if line.strip()]
        assert len(lines) == 3  # two answers + the stats line
        first = json.loads(lines[0])
        assert first["algorithm"] == "kuhn-wattenhofer"
        assert first["size"] >= 1
        stats = json.loads(lines[-1])["stats"]
        assert stats["completed"] == 2

    def test_serve_reads_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(
                '{"algorithm": "greedy", "family": "path", "graph_params":'
                ' {"n": 10}}\n'
            ),
        )
        exit_code = main(["serve"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert json.loads(captured.out.splitlines()[0])["algorithm"] == "greedy"

    def test_serve_fault_request(self, capsys, tmp_path):
        script = tmp_path / "requests.jsonl"
        script.write_text(
            '{"algorithm": "kuhn-wattenhofer", "family": "erdos_renyi",'
            ' "graph_params": {"n": 20, "p": 0.2}, "seed": 1, "params":'
            ' {"k": 2, "faults": {"loss_probability": 0.1, "seed": 4},'
            ' "repair": true}}\n',
            encoding="utf-8",
        )
        exit_code = main(["serve", "--requests", str(script)])
        captured = capsys.readouterr()
        assert exit_code == 0
        answer = json.loads(captured.out.splitlines()[0])
        assert answer["size"] >= 1

    def test_serve_rejects_invalid_json(self, tmp_path, capsys):
        script = tmp_path / "requests.jsonl"
        script.write_text("not json\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["serve", "--requests", str(script)])

    def test_serve_empty_script_fails(self, tmp_path, capsys):
        script = tmp_path / "requests.jsonl"
        script.write_text("\n", encoding="utf-8")
        exit_code = main(["serve", "--requests", str(script)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "no requests" in captured.err

    def test_serve_error_request_reported(self, tmp_path, capsys):
        script = tmp_path / "requests.jsonl"
        script.write_text(
            '{"algorithm": "kuhn-wattenhofer", "family": "path",'
            ' "graph_params": {"n": 10}, "k": 0}\n',  # k must be >= 1
            encoding="utf-8",
        )
        exit_code = main(["serve", "--requests", str(script)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error" in json.loads(captured.out.splitlines()[0])
