"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.family == "unit_disk"
        assert args.n == 80

    def test_bounds_defaults(self):
        args = build_parser().parse_args(["bounds"])
        assert args.delta == 16


class TestSolveCommand:
    def test_solve_prints_table(self, capsys):
        exit_code = main(
            ["solve", "--family", "erdos_renyi", "--n", "30", "--p", "0.15", "--k", "2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "dominating_set_size" in captured.out

    def test_solve_json_output(self, capsys):
        exit_code = main(
            [
                "solve",
                "--family",
                "star",
                "--k",
                "1",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["dominating_set_size"] >= 1
        assert payload["total_rounds"] > 0

    def test_solve_show_set(self, capsys):
        exit_code = main(["solve", "--family", "path", "--n", "12", "--k", "1", "--show-set"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "dominating set:" in captured.out

    def test_solve_no_lp_flag(self, capsys):
        exit_code = main(["solve", "--family", "grid", "--k", "1", "--no-lp", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["lp_optimum"] is None


class TestCompareCommand:
    def test_compare_prints_all_algorithms(self, capsys):
        exit_code = main(
            [
                "compare",
                "--family",
                "erdos_renyi",
                "--n",
                "25",
                "--p",
                "0.15",
                "--k",
                "1",
                "--trials",
                "1",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        for name in ("kuhn-wattenhofer", "greedy", "wu-li"):
            assert name in captured.out

    def test_compare_csv(self, capsys):
        exit_code = main(
            ["compare", "--family", "star", "--k", "1", "--trials", "1", "--csv"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.splitlines()[0].startswith("instance,")


class TestSweepCommand:
    def test_sweep_outputs_rows_per_k(self, capsys):
        exit_code = main(
            ["sweep", "--family", "grid", "--max-k", "2"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ratio" in captured.out


class TestBoundsCommand:
    def test_bounds_table(self, capsys):
        exit_code = main(["bounds", "--delta", "8", "--max-k", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "alg2_ratio_bound" in captured.out
        assert "pipeline_ratio_bound" in captured.out


class TestScalingFlags:
    def test_jobs_and_suite_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.suite is None

    def test_sweep_over_suite_with_jobs(self, capsys):
        exit_code = main(
            ["sweep", "--suite", "tiny", "--max-k", "2", "--jobs", "2", "--csv"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        lines = captured.out.splitlines()
        # One row per (instance, k): 6 tiny instances × 2 k-values + header.
        assert len(lines) == 1 + 6 * 2
        assert any(line.startswith("star_12,") for line in lines)

    def test_compare_with_jobs(self, capsys):
        exit_code = main(
            ["compare", "--family", "star", "--n", "12", "--jobs", "2", "--trials", "1"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "greedy" in captured.out

    def test_sweep_suite_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--suite", "galactic"])

    def test_sweep_xlarge_requires_vectorized_backend(self, capsys):
        exit_code = main(["sweep", "--suite", "xlarge"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "vectorized" in captured.err

    def test_compare_xlarge_requires_vectorized_backend(self, capsys):
        exit_code = main(["compare", "--suite", "xlarge"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "vectorized" in captured.err

    def test_compare_bulk_suite_uses_bulk_algorithms(self, capsys, monkeypatch):
        # CSR suites run the bulk-capable comparison stack (pipeline, LRG,
        # Wu–Li, both greedy references); patch the suite to a small CSR
        # instance to keep the test fast.
        import repro.cli as cli_module
        from repro.graphs.bulk import bulk_unit_disk_graph

        monkeypatch.setattr(
            cli_module,
            "graph_suite",
            lambda scale, seed=0: {
                "unit_disk_csr": bulk_unit_disk_graph(60, radius=0.2, seed=seed)
            },
        )
        exit_code = main(
            ["compare", "--suite", "xlarge", "--backend", "vectorized",
             "--trials", "1", "--csv"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "bucket queue" in captured.out
        assert "lrg (jia et al.)" in captured.out
        assert "wu-li" in captured.out
        assert "set cover greedy" in captured.out
        # The dense-LP baseline stays off the CSR path.
        assert "central LP" not in captured.out
