"""Tests for the public API surface.

A downstream user relies on ``from repro import ...`` and the documented
subpackage exports; these tests pin that surface so accidental removals or
renames are caught.
"""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("name", sorted(set(repro.__all__) - {"__version__"}))
    def test_all_exports_resolve(self, name):
        assert getattr(repro, name) is not None

    def test_main_entry_point_importable(self):
        module = importlib.import_module("repro.__main__")
        assert hasattr(module, "main")

    def test_primary_function_signature(self):
        import inspect

        signature = inspect.signature(repro.kuhn_wattenhofer_dominating_set)
        assert list(signature.parameters)[:2] == ["graph", "k"]


SUBPACKAGES = [
    "repro.simulator",
    "repro.graphs",
    "repro.lp",
    "repro.domset",
    "repro.core",
    "repro.baselines",
    "repro.analysis",
    "repro.cds",
]


class TestSubpackageExports:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__") and module.__all__
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module_name}.{name} missing"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_is_sorted(self, module_name):
        module = importlib.import_module(module_name)
        assert list(module.__all__) == sorted(module.__all__)

    def test_every_public_module_has_docstring(self):
        import pkgutil

        package = importlib.import_module("repro")
        for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} is missing a module docstring"


class TestDocstrings:
    @pytest.mark.parametrize(
        "function",
        [
            repro.kuhn_wattenhofer_dominating_set,
            repro.approximate_fractional_mds,
            repro.approximate_fractional_mds_unknown_delta,
            repro.approximate_weighted_fractional_mds,
            repro.round_fractional_solution,
            repro.is_dominating_set,
            repro.quality_report,
            repro.log_delta_parameter,
        ],
    )
    def test_public_functions_documented(self, function):
        assert function.__doc__ and len(function.__doc__.strip()) > 20
