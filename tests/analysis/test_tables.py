"""Unit tests for table / CSV rendering."""

from repro.analysis.tables import format_value, records_to_csv, render_series, render_table


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(3.14159, precision=2) == "3.14"

    def test_bool_rendering(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_none_rendering(self):
        assert format_value(None) == "-"

    def test_nan_rendering(self):
        assert format_value(float("nan")) == "nan"

    def test_int_and_str(self):
        assert format_value(7) == "7"
        assert format_value("abc") == "abc"


class TestRenderTable:
    def test_contains_header_and_rows(self):
        rows = [{"k": 1, "ratio": 2.5}, {"k": 2, "ratio": 1.75}]
        table = render_table(rows)
        assert "k" in table and "ratio" in table
        assert "2.500" in table and "1.750" in table

    def test_title_included(self):
        table = render_table([{"a": 1}], title="Experiment E1")
        assert table.startswith("Experiment E1")

    def test_empty_rows(self):
        assert render_table([], title="Nothing") == "Nothing"
        assert render_table([]) == "(no rows)"

    def test_custom_column_order(self):
        rows = [{"a": 1, "b": 2}]
        table = render_table(rows, columns=["b", "a"])
        header = table.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_column_rendered_as_dash(self):
        table = render_table([{"a": 1}], columns=["a", "b"])
        assert "-" in table.splitlines()[-1]

    def test_column_widths_aligned(self):
        rows = [{"name": "x", "v": 1}, {"name": "longer-name", "v": 22}]
        lines = render_table(rows).splitlines()
        assert len(lines[0]) == len(lines[2]) == len(lines[3])


class TestRenderSeries:
    def test_series_rows(self):
        text = render_series({1: 2.0, 2: 4.0}, label="ratio")
        assert "ratio" in text
        assert "4.000" in text


class TestRecordsToCSV:
    def test_header_and_rows(self):
        csv_text = records_to_csv([{"a": 1, "b": 2.5}])
        lines = csv_text.splitlines()
        assert lines[0] == "a,b"
        assert lines[1].startswith("1,")

    def test_empty_records(self):
        assert records_to_csv([]) == ""

    def test_column_subset(self):
        csv_text = records_to_csv([{"a": 1, "b": 2}], columns=["b"])
        assert csv_text.splitlines()[0] == "b"
