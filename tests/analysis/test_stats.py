"""Unit tests for trial statistics."""

import pytest

from repro.analysis.stats import (
    confidence_interval,
    latency_summary,
    percentile,
    mean,
    ratio_of_means,
    sample_std,
    summarize,
)


class TestMean:
    def test_simple_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert mean([5.0]) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])


class TestSampleStd:
    def test_known_value(self):
        assert sample_std([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.138, abs=1e-3
        )

    def test_single_value_is_zero(self):
        assert sample_std([3.0]) == 0.0

    def test_constant_sample_is_zero(self):
        assert sample_std([2.0, 2.0, 2.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sample_std([])


class TestConfidenceInterval:
    def test_contains_mean(self):
        low, high = confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert low <= 2.5 <= high

    def test_single_value_degenerate(self):
        assert confidence_interval([7.0]) == (7.0, 7.0)

    def test_width_shrinks_with_more_samples(self):
        small = confidence_interval([1.0, 3.0] * 5)
        large = confidence_interval([1.0, 3.0] * 50)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_custom_z(self):
        narrow = confidence_interval([1.0, 2.0, 3.0], z=1.0)
        wide = confidence_interval([1.0, 2.0, 3.0], z=3.0)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_accepts_iterables(self):
        summary = summarize(range(5))
        assert summary.count == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestRatioOfMeans:
    def test_simple_ratio(self):
        assert ratio_of_means([2.0, 4.0], [1.0, 1.0]) == pytest.approx(3.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ratio_of_means([1.0], [1.0, 2.0])

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            ratio_of_means([1.0], [0.0])


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_median_interpolates_even_sample(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_endpoints(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_matches_numpy_linear_method(self):
        import numpy as np

        values = [0.4, 1.9, 0.1, 7.2, 3.3, 2.8, 0.05]
        for q in (1, 25, 50, 75, 99):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_single_value(self):
        assert percentile([4.2], 99) == 4.2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencySummary:
    def test_digest_fields(self):
        digest = latency_summary([0.1, 0.2, 0.3, 0.4])
        assert digest["count"] == 4
        assert digest["mean_s"] == pytest.approx(0.25)
        assert digest["p50_s"] == pytest.approx(0.25)
        assert digest["p50_s"] <= digest["p99_s"] <= digest["max_s"]
        assert digest["max_s"] == 0.4

    def test_empty_sample_yields_none_entries(self):
        digest = latency_summary([])
        assert digest == {
            "count": 0,
            "mean_s": None,
            "p50_s": None,
            "p99_s": None,
            "max_s": None,
        }
