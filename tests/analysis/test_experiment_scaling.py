"""Scaling features of the experiment runner: jobs=N and CSR instances.

The process pool must be a pure wall-clock optimisation (identical records
in identical order), the pipeline sweep must match the old per-trial
pipeline semantics exactly, and bulk (CSR) instances must sweep with the
vectorized backend while skipping the centralized LP columns.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.experiment import (
    as_instances,
    compare_algorithms,
    sweep_fractional,
    sweep_pipeline,
)
from repro.baselines.bulk_greedy import greedy_dominating_set_bulk
from repro.core.kuhn_wattenhofer import (
    FractionalVariant,
    kuhn_wattenhofer_dominating_set,
)
from repro.graphs.bulk import bulk_graph_suite, bulk_unit_disk_graph
from repro.graphs.generators import graph_suite


@pytest.fixture(scope="module")
def instances():
    suite = graph_suite("tiny", seed=2)
    selected = {name: suite[name] for name in ("star_12", "grid_4x5", "path_15")}
    return as_instances(selected)


def _greedy_algorithm(graph, seed):
    # Module-level (picklable) algorithm for process-pool comparison runs.
    return greedy_dominating_set_bulk(graph)


class TestProcessPool:
    def test_sweep_fractional_jobs_identical(self, instances):
        serial = sweep_fractional(instances, k_values=[1, 2])
        pooled = sweep_fractional(instances, k_values=[1, 2], jobs=3)
        assert [r.as_row() for r in serial] == [r.as_row() for r in pooled]

    def test_sweep_pipeline_jobs_identical(self, instances):
        serial = sweep_pipeline(instances, k_values=[2], trials=3, seed=1)
        pooled = sweep_pipeline(instances, k_values=[2], trials=3, seed=1, jobs=2)
        assert [r.as_row() for r in serial] == [r.as_row() for r in pooled]

    def test_compare_algorithms_jobs_identical(self, instances):
        algorithms = {"greedy": _greedy_algorithm}
        serial = compare_algorithms(instances, algorithms, trials=2)
        pooled = compare_algorithms(instances, algorithms, trials=2, jobs=2)
        assert [r.as_row() for r in serial] == [r.as_row() for r in pooled]

    def test_jobs_must_be_positive(self, instances):
        with pytest.raises(ValueError, match="jobs"):
            sweep_fractional(instances, k_values=[1], jobs=0)


class TestHoistedPipelineSweep:
    def test_matches_per_trial_pipeline_runs(self, instances):
        """The hoisted fractional phase changes nothing about the records."""
        trials, seed = 4, 5
        for variant in FractionalVariant:
            records = sweep_pipeline(
                instances[:1], k_values=[2], trials=trials, seed=seed, variant=variant
            )
            sizes = [
                float(
                    kuhn_wattenhofer_dominating_set(
                        instances[0].graph, k=2, seed=seed + trial, variant=variant
                    ).size
                )
                for trial in range(trials)
            ]
            assert records[0].measurements["mean_size"] == sum(sizes) / trials

    def test_backends_produce_identical_sweeps(self, instances):
        simulated = sweep_pipeline(instances, k_values=[2], trials=3, seed=0)
        vectorized = sweep_pipeline(
            instances, k_values=[2], trials=3, seed=0, backend="vectorized"
        )
        assert [r.as_row() for r in simulated] == [r.as_row() for r in vectorized]


class TestBulkInstances:
    @pytest.fixture(scope="class")
    def bulk_instances(self):
        return as_instances(
            {"unit_disk_csr": bulk_unit_disk_graph(300, radius=0.1, seed=0)}
        )

    def test_fractional_sweep_skips_lp(self, bulk_instances):
        records = sweep_fractional(
            bulk_instances, k_values=[1, 2], backend="vectorized"
        )
        assert len(records) == 2
        for record in records:
            assert math.isnan(record.measurements["lp_optimum"])
            assert record.measurements["objective"] > 0

    def test_pipeline_sweep_runs(self, bulk_instances):
        records = sweep_pipeline(
            bulk_instances, k_values=[2], trials=3, backend="vectorized"
        )
        assert records[0].measurements["mean_size"] > 0
        # The Lemma-1 dual bound is cheap on the CSR, so bulk instances get
        # the real value (only the dense LP reference column is skipped).
        assert records[0].measurements["dual_lower_bound"] > 0
        assert (
            records[0].measurements["mean_size"]
            >= records[0].measurements["dual_lower_bound"]
        )

    def test_bulk_matches_networkx_instance(self, bulk_instances):
        bulk_records = sweep_fractional(
            bulk_instances, k_values=[2], backend="vectorized"
        )
        nx_instances = as_instances(
            {"unit_disk_csr": bulk_instances[0].graph.to_networkx()}
        )
        nx_records = sweep_fractional(nx_instances, k_values=[2], backend="vectorized")
        assert (
            bulk_records[0].measurements["objective"]
            == nx_records[0].measurements["objective"]
        )
        assert (
            bulk_records[0].measurements["rounds"]
            == nx_records[0].measurements["rounds"]
        )

    def test_simulated_backend_rejected(self, bulk_instances):
        # An *explicit* simulated request on a CSR instance is the
        # impossible combination; the default backend="auto" resolves it.
        with pytest.raises(ValueError, match="vectorized"):
            sweep_fractional(bulk_instances, k_values=[1], backend="simulated")

    def test_auto_backend_resolves_bulk_instances(self, bulk_instances):
        auto = sweep_fractional(bulk_instances, k_values=[1])
        explicit = sweep_fractional(bulk_instances, k_values=[1], backend="vectorized")
        for auto_record, explicit_record in zip(auto, explicit):
            assert auto_record.measurements["objective"] == (
                explicit_record.measurements["objective"]
            )
            assert auto_record.measurements["rounds"] == (
                explicit_record.measurements["rounds"]
            )
            # The dense LP reference stays skipped on CSR instances.
            assert math.isnan(auto_record.measurements["lp_optimum"])

    def test_instance_properties(self):
        suite = bulk_graph_suite("large", seed=0)
        instance = as_instances(suite)[0]
        assert instance.is_bulk
        assert instance.node_count == instance.graph.n
        assert instance.max_degree == instance.graph.max_degree
