"""Unit tests for the per-phase trace observability report."""

import networkx as nx
import pytest

from repro.analysis.trace_report import TraceReport, trace_report
from repro.core.fractional import Algorithm2Program, approximate_fractional_mds
from repro.graphs.generators import erdos_renyi_graph
from repro.simulator.columnar import ColumnarTrace
from repro.simulator.faults import MessageLossFaults
from repro.simulator.network import Network
from repro.simulator.runtime import SynchronousRunner


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(40, 0.12, seed=3)


class TestPhaseAggregation:
    def test_phases_follow_execution_order(self, graph):
        k = 3
        result = approximate_fractional_mds(graph, k=k, collect_trace=True)
        report = trace_report(result.trace, result.metrics)
        assert [phase.ell for phase in report.phases] == list(range(k - 1, -1, -1))
        for phase in report.phases:
            assert phase.nodes == graph.number_of_nodes()
            assert phase.white_at_start + phase.gray_at_start == phase.nodes
            assert len(phase.active_counts) == k
            assert len(phase.newly_gray) == k
            assert phase.dynamic_degree_max >= phase.dynamic_degree_p99
            assert phase.dynamic_degree_p99 >= phase.dynamic_degree_p95

    def test_coverage_growth_is_monotone(self, graph):
        result = approximate_fractional_mds(graph, k=3, collect_trace=True)
        report = trace_report(result.trace)
        growth = list(report.coverage_growth)
        assert growth == sorted(growth)
        assert all(0.0 <= fraction <= 1.0 for fraction in growth)

    def test_x_mass_matches_final_objective(self, graph):
        result = approximate_fractional_mds(graph, k=2, collect_trace=True)
        report = trace_report(result.trace)
        assert report.phases[-1].x_mass_end == pytest.approx(result.objective)

    def test_both_backends_report_identically(self, graph):
        simulated = approximate_fractional_mds(graph, k=2, collect_trace=True)
        vectorized = approximate_fractional_mds(
            graph, k=2, collect_trace=True, backend="vectorized"
        )
        assert (
            trace_report(simulated.trace).to_dict()
            == trace_report(vectorized.trace).to_dict()
        )

    def test_round_messages_come_from_metrics(self, graph):
        result = approximate_fractional_mds(graph, k=2, collect_trace=True)
        with_metrics = trace_report(result.trace, result.metrics)
        without = trace_report(result.trace)
        assert sum(with_metrics.round_messages) == result.metrics.total_messages
        assert without.round_messages == ()

    def test_empty_trace_yields_empty_report(self):
        report = trace_report(ColumnarTrace())
        assert isinstance(report, TraceReport)
        assert report.phases == ()
        assert report.coverage_growth == ()
        assert report.total_dropped == 0


class TestRendering:
    def test_render_lists_every_phase(self, graph):
        result = approximate_fractional_mds(graph, k=3, collect_trace=True)
        report = trace_report(result.trace, result.metrics)
        text = report.render()
        assert "ell" in text and "gray%" in text
        for phase in report.phases:
            assert f"\n{phase.ell:>4} " in "\n" + text
        assert "messages:" in text
        assert "faults:" not in text  # fault-free run

    def test_to_dict_round_trips_through_json(self, graph):
        import json

        result = approximate_fractional_mds(graph, k=2, collect_trace=True)
        payload = trace_report(result.trace, result.metrics).to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestFaultReporting:
    def test_drop_counters_surface_in_the_report(self, graph):
        delta = max(degree for _, degree in graph.degree())
        network = Network(
            graph, lambda n, net: Algorithm2Program(k=2, delta=delta), seed=0
        )
        runner = SynchronousRunner(
            network,
            fault_model=MessageLossFaults(loss_probability=0.1, seed=11),
            trace=ColumnarTrace(),
            max_rounds=50,
        )
        execution = runner.run()
        report = trace_report(execution.trace, execution.metrics)
        assert report.round_drops  # one (dropped, delivered) pair per round
        assert report.total_dropped > 0
        assert "faults:" in report.render()
        delivered = sum(count for _, count in report.round_drops)
        assert report.total_dropped + delivered == sum(
            dropped + kept for dropped, kept in report.round_drops
        )
