"""Unit tests for the closed-form theorem bounds."""

import math

import pytest

from repro.analysis.bounds import (
    algorithm2_approximation_bound,
    algorithm2_round_bound,
    algorithm3_approximation_bound,
    algorithm3_round_bound,
    kmw_lower_bound,
    log_squared_delta_bound,
    message_size_bound_bits,
    messages_per_node_bound,
    pipeline_expected_ratio_bound,
    pipeline_round_bound,
    rounding_expectation_bound,
    rounding_expectation_bound_alternative,
    weighted_approximation_bound,
)


class TestApproximationBounds:
    def test_algorithm2_formula(self):
        assert algorithm2_approximation_bound(2, 15) == pytest.approx(2 * 16.0)
        assert algorithm2_approximation_bound(1, 15) == pytest.approx(256.0)

    def test_algorithm2_decreases_then_flattens_in_k(self):
        values = [algorithm2_approximation_bound(k, 63) for k in range(1, 12)]
        assert values[0] > values[3] > values[6]

    def test_algorithm3_geq_algorithm2(self):
        for k in (1, 2, 4, 8):
            for delta in (3, 15, 255):
                assert algorithm3_approximation_bound(k, delta) >= (
                    algorithm2_approximation_bound(k, delta)
                )

    def test_algorithm3_formula(self):
        assert algorithm3_approximation_bound(2, 15) == pytest.approx(2 * (4.0 + 16.0))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            algorithm2_approximation_bound(0, 5)
        with pytest.raises(ValueError):
            algorithm3_approximation_bound(2, -1)


class TestRoundBounds:
    def test_algorithm2_rounds(self):
        assert algorithm2_round_bound(1) == 2
        assert algorithm2_round_bound(3) == 18

    def test_algorithm3_rounds(self):
        assert algorithm3_round_bound(1) == 9
        assert algorithm3_round_bound(2) == 23

    def test_pipeline_adds_constant(self):
        assert pipeline_round_bound(2) == algorithm3_round_bound(2) + 4

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            algorithm2_round_bound(0)
        with pytest.raises(ValueError):
            algorithm3_round_bound(0)


class TestRoundingBounds:
    def test_rounding_expectation_formula(self):
        assert rounding_expectation_bound(1.0, 15) == pytest.approx(1.0 + math.log(16.0))

    def test_alpha_scales_linearly(self):
        assert rounding_expectation_bound(3.0, 15) == pytest.approx(
            1.0 + 3.0 * math.log(16.0)
        )

    def test_alternative_bound_behaviour(self):
        # For large Δ the alternative bound 2α(lnΔ − ln lnΔ) is smaller than
        # 2α·lnΔ, and for tiny Δ it degenerates gracefully to ≥ 1.
        assert rounding_expectation_bound_alternative(1.0, 1000) < 2 * math.log(1001)
        assert rounding_expectation_bound_alternative(1.0, 1) >= 1.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            rounding_expectation_bound(0.5, 10)

    def test_pipeline_ratio_composition(self):
        k, delta = 2, 15
        alpha = algorithm3_approximation_bound(k, delta)
        assert pipeline_expected_ratio_bound(k, delta) == pytest.approx(
            1.0 + alpha * math.log(delta + 1.0)
        )


class TestOtherBounds:
    def test_weighted_bound_formula(self):
        assert weighted_approximation_bound(2, 15, 4.0) == pytest.approx(
            2 * 4.0 * math.sqrt(64.0)
        )

    def test_weighted_bound_reduces_when_cmax_one(self):
        assert weighted_approximation_bound(3, 7, 1.0) == pytest.approx(
            algorithm2_approximation_bound(3, 7)
        )

    def test_messages_per_node(self):
        assert messages_per_node_bound(2, 10) == algorithm3_round_bound(2) * 10

    def test_message_size_logarithmic(self):
        assert message_size_bound_bits(1) <= message_size_bound_bits(1 << 20)
        # ⌈log₂(Δ+2)⌉ + 1 sign/flag bit = ⌈log₂(1025)⌉ + 1 = 12.
        assert message_size_bound_bits(1023, float_bits=0) == 12

    def test_kmw_lower_bound_shape(self):
        # For fixed Δ the lower bound decreases in k.
        assert kmw_lower_bound(1, 256) > kmw_lower_bound(2, 256) > kmw_lower_bound(8, 256)

    def test_kmw_lower_bound_validation(self):
        with pytest.raises(ValueError):
            kmw_lower_bound(2, 16, constant=0.0)

    def test_log_squared_delta_grows_slowly(self):
        small = log_squared_delta_bound(16)
        large = log_squared_delta_bound(16**4)
        assert large <= 16 * small  # log² growth: quadrupling the exponent ×16

    def test_log_squared_delta_validation(self):
        with pytest.raises(ValueError):
            log_squared_delta_bound(-1)
