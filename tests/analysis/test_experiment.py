"""Unit tests for the experiment sweep machinery."""

import pytest

from repro.analysis.experiment import (
    ExperimentRecord,
    GraphInstance,
    as_instances,
    compare_algorithms,
    sweep_fractional,
    sweep_pipeline,
)
from repro.baselines.greedy import greedy_dominating_set
from repro.core.kuhn_wattenhofer import FractionalVariant
from repro.graphs.generators import graph_suite


@pytest.fixture(scope="module")
def instances():
    suite = graph_suite("tiny", seed=2)
    # Keep the sweep quick: two structurally different instances.
    selected = {name: suite[name] for name in ("star_12", "grid_4x5")}
    return as_instances(selected)


class TestGraphInstance:
    def test_wrapping(self, instances):
        assert all(isinstance(instance, GraphInstance) for instance in instances)
        assert {instance.name for instance in instances} == {"star_12", "grid_4x5"}

    def test_properties(self, instances):
        star = next(i for i in instances if i.name == "star_12")
        assert star.node_count == 13
        assert star.max_degree == 12


class TestSweepFractional:
    def test_record_per_instance_and_k(self, instances):
        records = sweep_fractional(instances, k_values=[1, 2])
        assert len(records) == len(instances) * 2

    def test_measured_ratio_within_bound(self, instances):
        for record in sweep_fractional(instances, k_values=[1, 2, 3]):
            assert record.measurements["ratio"] <= record.measurements["bound"] + 1e-9

    def test_unknown_delta_variant(self, instances):
        records = sweep_fractional(
            instances, k_values=[2], variant=FractionalVariant.UNKNOWN_DELTA
        )
        assert all("unknown" in record.algorithm for record in records)
        for record in records:
            assert record.measurements["ratio"] <= record.measurements["bound"] + 1e-9

    def test_as_row_flattens(self, instances):
        record = sweep_fractional(instances, k_values=[1])[0]
        row = record.as_row()
        assert "instance" in row and "k" in row and "ratio" in row


class TestSweepPipeline:
    def test_records_and_ratios(self, instances):
        records = sweep_pipeline(instances, k_values=[1], trials=2, seed=0)
        assert len(records) == len(instances)
        for record in records:
            assert record.measurements["mean_size"] > 0
            assert record.measurements["mean_ratio_vs_lp"] >= 1.0 - 1e-9

    def test_trials_recorded(self, instances):
        record = sweep_pipeline(instances, k_values=[1], trials=3, seed=0)[0]
        assert record.measurements["trials"] == 3.0


class TestCompareAlgorithms:
    def test_comparison_rows(self, instances):
        algorithms = {
            "greedy": lambda graph, seed: greedy_dominating_set(graph),
            "all-nodes": lambda graph, seed: set(graph.nodes()),
        }
        records = compare_algorithms(instances, algorithms, trials=1)
        assert len(records) == len(instances) * 2
        by_algorithm = {record.algorithm: record for record in records if record.instance == "star_12"}
        assert by_algorithm["greedy"].measurements["mean_size"] <= (
            by_algorithm["all-nodes"].measurements["mean_size"]
        )

    def test_non_dominating_algorithm_rejected(self, instances):
        algorithms = {"broken": lambda graph, seed: set()}
        with pytest.raises(RuntimeError, match="non-dominating"):
            compare_algorithms(instances, algorithms, trials=1)

    def test_experiment_record_dataclass(self):
        record = ExperimentRecord(instance="g", algorithm="a")
        assert record.as_row() == {"instance": "g", "algorithm": "a"}
