"""CSR connectification: equivalence with the reference and components."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.baselines.greedy import greedy_dominating_set
from repro.cds.bulk import (
    bulk_connected_components,
    bulk_is_connected,
    bulk_largest_component,
    connect_dominating_set_bulk,
    is_connected_dominating_set_bulk,
)
from repro.cds.connectify import connect_dominating_set, kw_connected_dominating_set
from repro.cds.validation import is_connected_dominating_set
from repro.graphs.bulk import bulk_unit_disk_graph
from repro.graphs.generators import graph_suite
from repro.simulator.bulk import BulkGraph


def connected_instances(scale, seed):
    """(name, graph) pairs restricted to their largest component."""
    for name, graph in sorted(graph_suite(scale, seed=seed).items()):
        if not nx.is_connected(graph):
            component = max(nx.connected_components(graph), key=len)
            graph = nx.convert_node_labels_to_integers(graph.subgraph(component).copy())
        yield name, graph


def flags_for(bulk, members):
    flags = np.zeros(bulk.n, dtype=bool)
    flags[bulk.index_of(members)] = True
    return flags


class TestConnectifyEquivalence:
    @pytest.mark.parametrize("scale", ["tiny", "small", "medium"])
    def test_reference_and_bulk_select_the_same_cds(self, scale):
        for name, graph in connected_instances(scale, seed=13):
            dominating = greedy_dominating_set(graph)
            reference = connect_dominating_set(graph, dominating)
            bulk = BulkGraph.from_graph(graph)
            result = connect_dominating_set_bulk(bulk, flags_for(bulk, dominating))
            selected = frozenset(
                node for node, flag in zip(bulk.nodes, result) if flag
            )
            assert selected == reference, name
            assert len(reference) <= 3 * len(dominating), name
            assert is_connected_dominating_set(graph, reference), name

    def test_sparse_dominators_need_connectors(self):
        graph = nx.path_graph(9)
        bulk = BulkGraph.from_graph(graph)
        result = connect_dominating_set_bulk(bulk, flags_for(bulk, {1, 4, 7}))
        selected = frozenset(node for node, flag in zip(bulk.nodes, result) if flag)
        assert selected == connect_dominating_set(graph, {1, 4, 7})
        assert {1, 4, 7} <= selected
        assert is_connected_dominating_set_bulk(bulk, result)

    def test_rejects_non_dominating_input(self):
        bulk = BulkGraph.from_graph(nx.path_graph(6))
        with pytest.raises(ValueError, match="not a dominating set"):
            connect_dominating_set_bulk(bulk, flags_for(bulk, {0}))

    def test_rejects_disconnected_graph(self):
        graph = nx.disjoint_union(nx.path_graph(3), nx.path_graph(3))
        bulk = BulkGraph.from_graph(graph)
        with pytest.raises(ValueError, match="disconnected"):
            connect_dominating_set_bulk(bulk, flags_for(bulk, set(graph.nodes())))

    def test_single_member_unchanged(self):
        bulk = BulkGraph.from_graph(nx.star_graph(5))
        result = connect_dominating_set_bulk(bulk, flags_for(bulk, {0}))
        assert list(np.flatnonzero(result)) == [0]


class TestBulkComponents:
    def test_labels_match_networkx(self):
        graph = nx.disjoint_union(nx.path_graph(4), nx.cycle_graph(3))
        bulk = BulkGraph.from_graph(graph)
        labels = bulk_connected_components(bulk)
        assert labels.tolist() == [0, 0, 0, 0, 1, 1, 1]
        assert not bulk_is_connected(bulk)

    def test_subset_restriction(self):
        bulk = BulkGraph.from_graph(nx.path_graph(5))
        subset = np.array([True, True, False, True, True])
        labels = bulk_connected_components(bulk, subset)
        assert labels[2] == -1
        assert labels[0] == labels[1] != labels[3]
        assert labels[3] == labels[4]

    def test_largest_component_extraction(self):
        graph = nx.disjoint_union(nx.path_graph(3), nx.cycle_graph(5))
        bulk = BulkGraph.from_graph(graph)
        largest = bulk_largest_component(bulk)
        assert largest.n == 5
        assert bulk_is_connected(largest)
        assert largest.number_of_edges == 5

    def test_single_node_graph(self):
        single = nx.Graph()
        single.add_node(0)
        bulk = BulkGraph.from_graph(single)
        assert bulk_is_connected(bulk)
        assert bulk_largest_component(bulk).n == 1


class TestConnectedValidationDispatch:
    def test_is_connected_dominating_set_accepts_bulk(self):
        bulk = bulk_unit_disk_graph(120, radius=0.2, seed=3)
        graph = bulk.to_networkx()
        if not nx.is_connected(graph):
            pytest.skip("sampled graph disconnected; the dispatch test needs a CDS")
        cds = connect_dominating_set(graph, greedy_dominating_set(graph))
        assert is_connected_dominating_set(bulk, cds)
        assert not is_connected_dominating_set(bulk, set())
        with pytest.raises(ValueError, match="not in the graph"):
            is_connected_dominating_set(bulk, {10**9})


class TestBulkKWPipeline:
    def test_end_to_end_on_csr(self):
        bulk = bulk_unit_disk_graph(500, radius=0.09, seed=12)
        if not bulk_is_connected(bulk):
            bulk = bulk_largest_component(bulk)
        cds, pipeline = kw_connected_dominating_set(
            bulk, k=2, seed=5, backend="vectorized"
        )
        assert pipeline.dominating_set <= cds
        assert is_connected_dominating_set(bulk, cds)

    def test_matches_networkx_route(self):
        bulk = bulk_unit_disk_graph(200, radius=0.15, seed=8)
        if not bulk_is_connected(bulk):
            bulk = bulk_largest_component(bulk)
        via_bulk, _ = kw_connected_dominating_set(
            bulk, k=2, seed=5, backend="vectorized"
        )
        via_nx, _ = kw_connected_dominating_set(
            bulk.to_networkx(), k=2, seed=5, backend="vectorized"
        )
        assert via_bulk == via_nx
