"""Unit tests for connected dominating set validation and backbone stats."""

import networkx as nx
import pytest

from repro.cds.validation import backbone_statistics, is_connected_dominating_set


class TestIsConnectedDominatingSet:
    def test_hub_of_star_is_cds(self, star):
        assert is_connected_dominating_set(star, {0})

    def test_disconnected_candidate_rejected(self):
        graph = nx.path_graph(7)
        # {0, 6} dominates nothing in the middle and is not connected anyway.
        assert not is_connected_dominating_set(graph, {0, 6})

    def test_dominating_but_disconnected_candidate(self):
        graph = nx.path_graph(7)
        # {1, 4} ∪ {6}? Use {1, 4, 6}: dominates 0..6? 1 covers 0,1,2; 4 covers
        # 3,4,5; 6 covers 5,6 -> dominating, but induced subgraph has no edges.
        assert not is_connected_dominating_set(graph, {1, 4, 6})

    def test_path_interior_is_cds(self):
        graph = nx.path_graph(5)
        assert is_connected_dominating_set(graph, {1, 2, 3})

    def test_empty_set_is_not_cds(self, path):
        assert not is_connected_dominating_set(path, set())

    def test_whole_vertex_set_of_connected_graph(self, grid):
        assert is_connected_dominating_set(grid, set(grid.nodes()))

    def test_disconnected_graph_has_no_cds(self):
        graph = nx.disjoint_union(nx.path_graph(3), nx.path_graph(3))
        assert not is_connected_dominating_set(graph, set(graph.nodes()))

    def test_non_dominating_connected_set(self):
        graph = nx.path_graph(6)
        assert not is_connected_dominating_set(graph, {0, 1})


class TestBackboneStatistics:
    def test_star_hub_backbone(self, star):
        stats = backbone_statistics(star, {0})
        assert stats.size == 1
        assert stats.is_dominating
        assert stats.is_connected
        assert stats.diameter == 0
        assert stats.stretch is not None and stats.stretch >= 1.0

    def test_path_backbone_diameter(self):
        graph = nx.path_graph(7)
        stats = backbone_statistics(graph, {1, 2, 3, 4, 5})
        assert stats.is_connected
        assert stats.diameter == 4

    def test_disconnected_backbone_reports_none(self):
        graph = nx.path_graph(7)
        stats = backbone_statistics(graph, {1, 4, 6})
        assert not stats.is_connected
        assert stats.diameter is None
        assert stats.stretch is None

    def test_stretch_at_least_one(self, grid):
        from repro.cds.guha_khuller import guha_khuller_connected_dominating_set

        cds = guha_khuller_connected_dominating_set(grid)
        stats = backbone_statistics(grid, cds, sample_pairs=30, seed=1)
        assert stats.stretch >= 1.0

    def test_mean_degree_of_clique_backbone(self, clique):
        stats = backbone_statistics(clique, set(clique.nodes()))
        assert stats.mean_backbone_degree == pytest.approx(5.0)


class TestBackboneStatisticsBulk:
    """CSR backbone statistics equal the networkx path, value for value."""

    def _pairs(self):
        from repro.graphs.generators import graph_suite
        from repro.simulator.bulk import BulkGraph

        for name, graph in sorted(graph_suite("tiny", seed=11).items()):
            if not nx.is_connected(graph):
                component = max(nx.connected_components(graph), key=len)
                graph = nx.convert_node_labels_to_integers(
                    graph.subgraph(component).copy()
                )
            yield name, graph, BulkGraph.from_graph(graph)

    def test_cds_backbones_match(self):
        from repro.cds.guha_khuller import guha_khuller_connected_dominating_set

        for name, graph, bulk in self._pairs():
            cds = guha_khuller_connected_dominating_set(graph)
            dense = backbone_statistics(graph, cds, sample_pairs=25, seed=4)
            sparse = backbone_statistics(bulk, cds, sample_pairs=25, seed=4)
            assert dense == sparse, name

    def test_degenerate_backbones_match(self):
        for name, graph, bulk in self._pairs():
            single = {sorted(graph.nodes())[0]}
            assert backbone_statistics(graph, single, sample_pairs=10, seed=2) == (
                backbone_statistics(bulk, single, sample_pairs=10, seed=2)
            ), name
            everything = set(graph.nodes())
            assert backbone_statistics(graph, everything, sample_pairs=10, seed=1) == (
                backbone_statistics(bulk, everything, sample_pairs=10, seed=1)
            ), name

    def test_disconnected_backbone_on_bulk(self):
        from repro.simulator.bulk import BulkGraph

        graph = nx.path_graph(7)
        stats = backbone_statistics(BulkGraph.from_graph(graph), {1, 4, 6})
        assert not stats.is_connected
        assert stats.diameter is None and stats.stretch is None

    def test_path_backbone_diameter_on_bulk(self):
        from repro.simulator.bulk import BulkGraph

        graph = nx.path_graph(7)
        stats = backbone_statistics(BulkGraph.from_graph(graph), {1, 2, 3, 4, 5})
        assert stats.is_connected and stats.diameter == 4
