"""Unit tests for connected dominating set validation and backbone stats."""

import networkx as nx
import pytest

from repro.cds.validation import backbone_statistics, is_connected_dominating_set


class TestIsConnectedDominatingSet:
    def test_hub_of_star_is_cds(self, star):
        assert is_connected_dominating_set(star, {0})

    def test_disconnected_candidate_rejected(self):
        graph = nx.path_graph(7)
        # {0, 6} dominates nothing in the middle and is not connected anyway.
        assert not is_connected_dominating_set(graph, {0, 6})

    def test_dominating_but_disconnected_candidate(self):
        graph = nx.path_graph(7)
        # {1, 4} ∪ {6}? Use {1, 4, 6}: dominates 0..6? 1 covers 0,1,2; 4 covers
        # 3,4,5; 6 covers 5,6 -> dominating, but induced subgraph has no edges.
        assert not is_connected_dominating_set(graph, {1, 4, 6})

    def test_path_interior_is_cds(self):
        graph = nx.path_graph(5)
        assert is_connected_dominating_set(graph, {1, 2, 3})

    def test_empty_set_is_not_cds(self, path):
        assert not is_connected_dominating_set(path, set())

    def test_whole_vertex_set_of_connected_graph(self, grid):
        assert is_connected_dominating_set(grid, set(grid.nodes()))

    def test_disconnected_graph_has_no_cds(self):
        graph = nx.disjoint_union(nx.path_graph(3), nx.path_graph(3))
        assert not is_connected_dominating_set(graph, set(graph.nodes()))

    def test_non_dominating_connected_set(self):
        graph = nx.path_graph(6)
        assert not is_connected_dominating_set(graph, {0, 1})


class TestBackboneStatistics:
    def test_star_hub_backbone(self, star):
        stats = backbone_statistics(star, {0})
        assert stats.size == 1
        assert stats.is_dominating
        assert stats.is_connected
        assert stats.diameter == 0
        assert stats.stretch is not None and stats.stretch >= 1.0

    def test_path_backbone_diameter(self):
        graph = nx.path_graph(7)
        stats = backbone_statistics(graph, {1, 2, 3, 4, 5})
        assert stats.is_connected
        assert stats.diameter == 4

    def test_disconnected_backbone_reports_none(self):
        graph = nx.path_graph(7)
        stats = backbone_statistics(graph, {1, 4, 6})
        assert not stats.is_connected
        assert stats.diameter is None
        assert stats.stretch is None

    def test_stretch_at_least_one(self, grid):
        from repro.cds.guha_khuller import guha_khuller_connected_dominating_set

        cds = guha_khuller_connected_dominating_set(grid)
        stats = backbone_statistics(grid, cds, sample_pairs=30, seed=1)
        assert stats.stretch >= 1.0

    def test_mean_degree_of_clique_backbone(self, clique):
        stats = backbone_statistics(clique, set(clique.nodes()))
        assert stats.mean_backbone_degree == pytest.approx(5.0)
