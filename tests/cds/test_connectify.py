"""Unit tests for dominating set connectification."""

import networkx as nx
import pytest

from repro.baselines.greedy import greedy_dominating_set
from repro.cds.connectify import connect_dominating_set, kw_connected_dominating_set
from repro.cds.validation import is_connected_dominating_set
from repro.graphs.generators import erdos_renyi_graph, grid_graph
from repro.graphs.unit_disk import random_unit_disk_graph


def connected_random_graph(n, p, seed):
    """A connected G(n, p)-style graph (resample until connected)."""
    for attempt in range(50):
        graph = erdos_renyi_graph(n, p, seed=seed + attempt)
        if nx.is_connected(graph):
            return graph
    raise RuntimeError("could not generate a connected graph")


class TestConnectDominatingSet:
    def test_already_connected_set_unchanged(self, star):
        assert connect_dominating_set(star, {0}) == frozenset({0})

    def test_path_dominators_get_connected(self):
        graph = nx.path_graph(9)
        cds = connect_dominating_set(graph, {1, 4, 7})
        assert is_connected_dominating_set(graph, cds)
        assert {1, 4, 7} <= cds

    def test_size_at_most_three_times_input(self):
        graph = connected_random_graph(40, 0.12, seed=3)
        dominating = greedy_dominating_set(graph)
        cds = connect_dominating_set(graph, dominating)
        assert is_connected_dominating_set(graph, cds)
        assert len(cds) <= 3 * len(dominating)

    def test_grid_greedy_connectified(self):
        graph = grid_graph(6, 6)
        cds = connect_dominating_set(graph, greedy_dominating_set(graph))
        assert is_connected_dominating_set(graph, cds)

    def test_rejects_non_dominating_input(self):
        graph = nx.path_graph(6)
        with pytest.raises(ValueError, match="not a dominating set"):
            connect_dominating_set(graph, {0})

    def test_rejects_disconnected_graph(self):
        graph = nx.disjoint_union(nx.path_graph(3), nx.path_graph(3))
        with pytest.raises(ValueError, match="disconnected"):
            connect_dominating_set(graph, set(graph.nodes()))

    def test_single_node_graph(self):
        graph = nx.Graph()
        graph.add_node(0)
        assert connect_dominating_set(graph, {0}) == frozenset({0})


class TestKWConnectedDominatingSet:
    def test_unit_disk_backbone(self):
        graph = random_unit_disk_graph(60, radius=0.25, seed=5)
        if not nx.is_connected(graph):
            graph = graph.subgraph(max(nx.connected_components(graph), key=len)).copy()
            graph = nx.convert_node_labels_to_integers(graph)
        cds, pipeline = kw_connected_dominating_set(graph, k=2, seed=1)
        assert is_connected_dominating_set(graph, cds)
        assert pipeline.dominating_set <= cds

    def test_connected_random_graph(self):
        graph = connected_random_graph(35, 0.15, seed=9)
        cds, pipeline = kw_connected_dominating_set(graph, k=2, seed=0)
        assert is_connected_dominating_set(graph, cds)
        assert len(cds) >= pipeline.size
